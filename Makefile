# Developer entry points.  The python toolchain is assumed to be on PATH;
# nothing here installs packages.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test golden-test goldens bench

## Tier-1 test suite (what CI runs on every push).
test:
	$(PYTHON) -m pytest -x -q

## Only the scenario golden-run regression tests.
golden-test:
	$(PYTHON) -m pytest -q -m golden

## Intentionally regenerate the scenario golden fingerprints
## (tests/goldens/*.json); commit the resulting diff.
goldens:
	$(PYTHON) scripts/refresh_goldens.py

## Benchmark suite + seed-vs-fastpath comparison + scenario battery.
bench:
	$(PYTHON) benchmarks/run_benchmarks.py
