# Developer entry points.  The python toolchain is assumed to be on PATH;
# nothing here installs packages.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

STORE ?= .repro-store

.PHONY: test test-scale golden-test goldens chaos bench bench-service \
	bench-interning bench-replication bench-obs bench-scale \
	bench-workers smoke-scaleout store serve

## Tier-1 test suite (what CI runs on every push).
test:
	$(PYTHON) -m pytest -x -q

## The scale test matrix at paper_bench size (100k-entry corpora):
## store/index/API oracles plus tracemalloc budget ceilings.  Tier-1
## runs the same oracles at the tiny preset; this tier is its own CI job.
test-scale:
	$(PYTHON) -m pytest -q --run-scale -m scale

## Only the scenario golden-run regression tests.
golden-test:
	$(PYTHON) -m pytest -q -m golden

## Intentionally regenerate the scenario golden fingerprints
## (tests/goldens/*.json); commit the resulting diff.
goldens:
	$(PYTHON) scripts/refresh_goldens.py

## Fault-injection, retry and replica-convergence suites under one
## deterministic chaos seed (override: make chaos CHAOS_SEED=7).
CHAOS_SEED ?= 0
chaos:
	REPRO_CHAOS_SEED=$(CHAOS_SEED) $(PYTHON) -m pytest -q \
		tests/test_faults.py tests/test_util_retry.py \
		tests/test_service_replica.py tests/test_service_chaos.py \
		tests/test_obs.py

## Benchmark suite + seed-vs-fastpath comparison + scenario battery
## + serving layer.
bench:
	$(PYTHON) benchmarks/run_benchmarks.py

## Serving-layer benchmarks only (store/index/API) → BENCH_service.json.
bench-service:
	$(PYTHON) benchmarks/run_benchmarks.py --service

## Interned-columnar-vs-string comparison only → BENCH_interning.json
## (asserts identical outputs, >=1.5x speedup and a lower tracemalloc
## peak on the 30-day x 3-provider corpus).
bench-interning:
	$(PYTHON) benchmarks/run_benchmarks.py --interning

## Follower-replication benchmarks only (bootstrap resync, per-day lag,
## dormant fault-point overhead <2%) → BENCH_replication.json.
bench-replication:
	$(PYTHON) benchmarks/run_benchmarks.py --replication

## Observability benchmarks only (hot-path telemetry overhead <2%,
## /v1/metrics scrape cost, byte-stable rendering) → BENCH_obs.json.
bench-obs:
	$(PYTHON) benchmarks/run_benchmarks.py --obs

## Pre-fork worker-pool benchmark (4 read workers vs single process,
## per-request + keep-alive client modes, byte-identity at every store
## version, >=5x cached-throughput assert, plus threaded-vs-event-loop
## readers at 512 keep-alive connections with a >=1.5x event-loop
## assert) → BENCH_workers.json.
bench-workers:
	$(PYTHON) benchmarks/run_benchmarks.py --workers 4

## The CI scale-out smoke: 4-worker pool + follower behind
## repro-serve balance; mixed load, worker SIGKILL, follower
## ejection/re-admission, aggregated-metrics checks — run with both
## reader transports (threaded, then --event-loop).
smoke-scaleout:
	$(PYTHON) scripts/scaleout_smoke.py
	$(PYTHON) scripts/scaleout_smoke.py --event-loop

## Scale-preset benchmarks (paper_bench + full_1m synthetic corpora):
## ingest/query/battery timings with hard time and memory-budget asserts
## → BENCH_scale.json.
bench-scale:
	$(PYTHON) benchmarks/run_benchmarks.py --scale

## Build a demo archive store (paper_realistic scenario) at $(STORE).
store:
	$(PYTHON) -m repro.service.cli init --store $(STORE)

## Serve the /v1 query API from $(STORE) (build it first: make store).
serve:
	$(PYTHON) -m repro.service.cli serve --store $(STORE)
