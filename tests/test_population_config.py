"""Tests for the simulation configuration."""

import datetime as dt

import pytest

from repro.population.config import SimulationConfig


class TestValidation:
    def test_defaults_valid(self):
        SimulationConfig()

    def test_list_must_fit_population(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_domains=100, list_size=5_000, top_k=10)

    def test_top_k_must_fit_list(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_domains=10_000, list_size=1_000, top_k=2_000)

    def test_positive_days(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_days=0)

    def test_invalid_fraction_bounds(self):
        with pytest.raises(ValueError):
            SimulationConfig(invalid_tld_fraction=1.5)
        with pytest.raises(ValueError):
            SimulationConfig(nxdomain_population_share=-0.1)

    def test_window_lengths_positive(self):
        with pytest.raises(ValueError):
            SimulationConfig(alexa_window_days=0)
        with pytest.raises(ValueError):
            SimulationConfig(majestic_window_days=0)

    def test_positive_population(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_domains=0)


class TestCalendar:
    def test_date_of(self):
        config = SimulationConfig(start_date=dt.date(2017, 6, 6))
        assert config.date_of(0) == dt.date(2017, 6, 6)
        assert config.date_of(10) == dt.date(2017, 6, 16)

    def test_weekday_of(self):
        # June 6th 2017 was a Tuesday (weekday 1).
        config = SimulationConfig(start_date=dt.date(2017, 6, 6))
        assert config.weekday_of(0) == 1
        assert config.weekday_of(4) == 5  # Saturday

    def test_is_weekend(self):
        config = SimulationConfig(start_date=dt.date(2017, 6, 6))
        assert not config.is_weekend(0)
        assert config.is_weekend(4)
        assert config.is_weekend(5)
        assert not config.is_weekend(6)

    def test_custom_weekend_days(self):
        config = SimulationConfig(start_date=dt.date(2017, 6, 6), weekend_days=(4,))
        assert config.is_weekend(3)  # Friday
        assert not config.is_weekend(4)  # Saturday

    def test_total_domains(self):
        config = SimulationConfig(n_domains=1_000, new_domains_per_day=10, n_days=5,
                                  list_size=500, top_k=50)
        assert config.total_domains() == 1_050


class TestPresets:
    def test_small_preset(self):
        config = SimulationConfig.small()
        assert config.n_domains < SimulationConfig().n_domains
        assert config.list_size <= config.total_domains()

    def test_benchmark_preset(self):
        config = SimulationConfig.benchmark()
        assert config.alexa_change_day is not None
        assert 0 < config.alexa_change_day < config.n_days

    def test_presets_accept_overrides(self):
        config = SimulationConfig.small(seed=7, n_days=5)
        assert config.seed == 7
        assert config.n_days == 5

    def test_hashable_for_caching(self):
        a = SimulationConfig.small()
        b = SimulationConfig.small()
        assert a == b
        assert hash(a) == hash(b)
        assert a != SimulationConfig.small(seed=1)
