"""RingLog: a bounded drop-oldest list the error/fault traces ride on.

The contract under test: every *list* idiom existing call sites use
(`== []`, truthiness, `list(x)`, slicing, `len`) keeps working, while
appends past capacity silently evict the oldest entries and tally them
in ``dropped``.
"""

import threading

import pytest

from repro.util.ringlog import RingLog


class TestRingLog:
    def test_behaves_like_a_list_under_capacity(self):
        log = RingLog(8)
        assert log == []
        assert not log
        log.append("a")
        log.append("b")
        assert log == ["a", "b"]
        assert list(log) == ["a", "b"]
        assert log[0] == "a"
        assert log[-1:] == ["b"]
        assert len(log) == 2
        assert log.dropped == 0

    def test_drops_oldest_past_capacity(self):
        log = RingLog(3)
        for i in range(7):
            log.append(i)
        assert list(log) == [4, 5, 6]
        assert log.dropped == 4
        assert len(log) == 3

    def test_extend_and_seed_iterable(self):
        log = RingLog(4, "ab")
        log.extend("cdef")
        assert list(log) == ["c", "d", "e", "f"]
        assert log.dropped == 2

    def test_clear_resets_dropped(self):
        log = RingLog(2)
        log.extend(range(5))
        log.clear()
        assert log == []
        assert log.dropped == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RingLog(0)

    def test_concurrent_appends_never_exceed_capacity(self):
        log = RingLog(16)
        per_thread = 500
        threads = [threading.Thread(
            target=lambda: [log.append(object()) for _ in range(per_thread)])
            for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(log) == 16
        assert log.dropped == 4 * per_thread - 16

    def test_repr_names_capacity_and_dropped(self):
        log = RingLog(2)
        log.extend(range(3))
        text = repr(log)
        assert "2" in text and "dropped" in text
