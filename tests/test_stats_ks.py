"""Tests for the two-sample Kolmogorov-Smirnov distance."""

import pytest

from repro.stats.ks import ks_distance

try:
    from scipy import stats as scipy_stats
except ImportError:  # pragma: no cover
    scipy_stats = None


class TestKsDistance:
    def test_identical_samples(self):
        assert ks_distance([1, 2, 3], [1, 2, 3]) == pytest.approx(0.0)

    def test_disjoint_samples_distance_one(self):
        # The paper's interpretation: KS distance 1 means weekend and
        # weekday ranks share no common region.
        assert ks_distance([1, 2, 3], [10, 11, 12]) == pytest.approx(1.0)

    def test_half_overlap(self):
        assert ks_distance([1, 2], [2, 3]) == pytest.approx(0.5)

    def test_symmetry(self):
        a, b = [1, 5, 7, 9], [2, 3, 8]
        assert ks_distance(a, b) == pytest.approx(ks_distance(b, a))

    def test_bounded(self):
        assert 0.0 <= ks_distance([1, 2, 2, 3], [2, 2, 4]) <= 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_distance([], [1])
        with pytest.raises(ValueError):
            ks_distance([1], [])

    def test_single_element_samples(self):
        assert ks_distance([5], [5]) == pytest.approx(0.0)
        assert ks_distance([1], [2]) == pytest.approx(1.0)

    @pytest.mark.skipif(scipy_stats is None, reason="scipy not available")
    def test_matches_scipy(self):
        import numpy as np
        rng = np.random.default_rng(7)
        for _ in range(10):
            a = rng.normal(0, 1, size=40)
            b = rng.normal(0.5, 1.2, size=35)
            expected = scipy_stats.ks_2samp(a, b).statistic
            assert ks_distance(list(a), list(b)) == pytest.approx(expected, abs=1e-9)
