"""Tests for the TLS/HSTS and HTTP/2 measurements (Sections 8.2/8.3)."""

import pytest

from repro.measurement.http2_measure import Http2Measurement
from repro.measurement.tls_measure import TlsMeasurement


class TestTlsMeasurement:
    def test_matches_ground_truth(self, internet):
        measurement = TlsMeasurement(internet)
        tls_domain = next(d for d in internet.domains if d.tls_enabled)
        plain = next(d for d in internet.domains if d.exists and not d.tls_enabled)
        result = measurement.measure([tls_domain.name, plain.name])
        assert result.tls_capable == 1
        assert result.tls_share == pytest.approx(50.0)

    def test_hsts_share_relative_to_tls(self, internet):
        measurement = TlsMeasurement(internet)
        hsts = next(d for d in internet.domains if d.hsts_enabled)
        tls_only = next(d for d in internet.domains if d.tls_enabled and not d.hsts_enabled)
        plain = next(d for d in internet.domains if d.exists and not d.tls_enabled)
        result = measurement.measure([hsts.name, tls_only.name, plain.name])
        assert result.hsts_share_of_tls == pytest.approx(50.0)

    def test_empty(self, internet):
        result = TlsMeasurement(internet).measure([])
        assert result.tls_share == 0.0
        assert result.hsts_share_of_tls == 0.0

    def test_lists_exceed_population(self, internet, small_run):
        measurement = TlsMeasurement(internet)
        top = measurement.measure(list(small_run.alexa[-1].top(100)))
        population = measurement.measure(small_run.zonefile.names)
        assert top.tls_share > population.tls_share


class TestHttp2Measurement:
    def test_matches_ground_truth(self, internet):
        measurement = Http2Measurement(internet)
        h2 = next(d for d in internet.domains if d.http2_enabled)
        h1 = next(d for d in internet.domains if d.tls_enabled and not d.http2_enabled)
        result = measurement.measure([h2.name, h1.name])
        assert result.http2_enabled == 1
        assert result.adoption_share == pytest.approx(50.0)

    def test_empty(self, internet):
        assert Http2Measurement(internet).measure([]).adoption_share == 0.0

    def test_top1k_exceeds_full_list_exceeds_population(self, internet, small_run, harness):
        from repro.measurement.harness import TargetSet
        snapshot = small_run.alexa[-1]
        top = harness.measure_http2(TargetSet.from_snapshot(snapshot, top_n=100))
        full = harness.measure_http2(TargetSet.from_snapshot(snapshot))
        population = harness.measure_http2(TargetSet.from_zonefile(small_run.zonefile))
        assert top.adoption_share > full.adoption_share > population.adoption_share
