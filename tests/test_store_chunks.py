"""Chunk-granularity regressions for the v3 store format.

The chunked record format earns its keep only if every boundary is
exact: a ``load_head`` that lands on a chunk edge, a day whose size is
one off a multiple of the chunk size, a point query for the last entry
of the last chunk.  These tests pin that behaviour with a tiny
monkeypatched chunk size (so boundaries are cheap to hit), prove v2
records written before the chunk directory existed stay readable — and
mixable with v3 appends in one shard — and re-run the PR-5 style
crash-truncation oracle with the cut landing *inside* a record's final
chunk payload.
"""

import datetime as dt
import json
import math
import zlib
from array import array
from pathlib import Path

import pytest

import repro.service.store as store_module
from repro.interning import default_interner
from repro.providers.base import ListSnapshot
from repro.service.store import (_CHUNK_DIR, _HEADER, _MAGIC, _MAGIC_V2,
                                 _decode_chunks, _iter_shard_records,
                                 _pack_ids, ArchiveStore, StoreError)

BASE = dt.date(2018, 5, 1)


def _snapshot(day: int, size: int, provider: str = "alexa") -> ListSnapshot:
    entries = tuple(f"chunk-d{day}-{i:05d}.example" for i in range(size))
    return ListSnapshot(provider=provider, date=BASE + dt.timedelta(days=day),
                        entries=entries)


def _shard_path(root: Path, provider: str = "alexa") -> Path:
    paths = sorted((root / "shards" / provider).glob("*.rls"))
    assert len(paths) == 1
    return paths[0]


def _record_chunk_counts(path: Path) -> list[int]:
    """Number of chunks per record in a shard file, in append order."""
    counts = []
    data = path.read_bytes()
    offset = 0
    while offset < len(data):
        magic, _, _, _, tail_field = _HEADER.unpack_from(data, offset)
        offset += _HEADER.size
        if magic == _MAGIC:
            directory = [_CHUNK_DIR.unpack_from(data, offset + i * _CHUNK_DIR.size)
                         for i in range(tail_field)]
            counts.append(tail_field)
            offset += tail_field * _CHUNK_DIR.size + sum(l for _, l in directory)
        else:
            assert magic == _MAGIC_V2
            counts.append(1)
            offset += tail_field
    return counts


@pytest.fixture
def small_chunks(monkeypatch):
    """Shrink the chunk size so boundary cases cost a handful of entries."""
    monkeypatch.setattr(store_module, "CHUNK_ENTRIES", 4)
    return 4


class TestChunkBoundaries:
    SIZES = [1, 3, 4, 5, 8, 9, 13]

    def test_every_size_round_trips_with_expected_chunking(
            self, tmp_path, small_chunks):
        days = [_snapshot(day, size) for day, size in enumerate(self.SIZES)]
        with ArchiveStore(tmp_path / "store") as store:
            for snapshot in days:
                store.append(snapshot)
            for snapshot, size in zip(days, self.SIZES):
                loaded = store.load_snapshot("alexa", snapshot.date)
                assert loaded.entries == snapshot.entries
        counts = _record_chunk_counts(_shard_path(tmp_path / "store"))
        assert counts == [math.ceil(size / small_chunks) for size in self.SIZES]

    def test_load_head_at_and_across_chunk_edges(self, tmp_path, small_chunks):
        size = 13  # chunks of 4: [4, 4, 4, 1]
        snapshot = _snapshot(0, size)
        with ArchiveStore(tmp_path / "store") as store:
            store.append(snapshot)
            for n in (1, 3, 4, 5, 8, 9, 12, 13, 50):
                head = store.load_head("alexa", snapshot.date, n)
                assert head.entries == snapshot.entries[:n]
            with pytest.raises(ValueError):
                store.load_head("alexa", snapshot.date, 0)

    def test_rank_of_id_in_every_chunk_and_absent(self, tmp_path, small_chunks):
        size = 13
        snapshot = _snapshot(0, size)
        other_day = _snapshot(1, 2)
        interner = default_interner()
        with ArchiveStore(tmp_path / "store") as store:
            store.append(snapshot)
            store.append(other_day)
            for rank, name in enumerate(snapshot.entries, start=1):
                assert store.rank_of_id(
                    "alexa", snapshot.date, interner.intern(name)) == rank
            # Interned but absent from this day (lives on the other day).
            elsewhere = interner.intern(other_day.entries[0])
            assert store.rank_of_id("alexa", snapshot.date, elsewhere) is None
            # Never interned into the store at all.
            foreign = interner.intern("never-stored.example")
            assert store.rank_of_id("alexa", snapshot.date, foreign) is None


def _downgrade_shard_to_v2(path: Path) -> int:
    """Re-encode every record of a shard as the pre-chunking v2 layout."""
    data = path.read_bytes()
    out = bytearray()
    records = 0
    for ordinal, psl_version, chunks, _ in _iter_shard_records(
            data, path, limit=len(data)):
        ids = _decode_chunks(chunks)
        payload = zlib.compress(_pack_ids(ids), 6)
        out += _HEADER.pack(_MAGIC_V2, ordinal, psl_version,
                            len(ids), len(payload)) + payload
        records += 1
    path.write_bytes(bytes(out))
    return records


def _set_manifest_format(root: Path, version: int) -> None:
    manifest_path = root / "manifest.json"
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    manifest["format_version"] = version
    manifest_path.write_text(json.dumps(manifest), encoding="utf-8")


class TestV2Compatibility:
    def test_v2_store_reads_back_identically(self, tmp_path, small_chunks):
        days = [_snapshot(day, size) for day, size in enumerate([5, 9, 3])]
        root = tmp_path / "store"
        with ArchiveStore(root) as store:
            for snapshot in days:
                store.append(snapshot)
        _downgrade_shard_to_v2(_shard_path(root))
        _set_manifest_format(root, 2)
        with ArchiveStore(root) as store:
            for snapshot in days:
                loaded = store.load_snapshot("alexa", snapshot.date)
                assert loaded.entries == snapshot.entries
            assert store.load_head("alexa", days[1].date, 6).entries == \
                days[1].entries[:6]

    def test_appending_to_a_v2_store_mixes_formats_in_one_shard(
            self, tmp_path, small_chunks):
        days = [_snapshot(day, size) for day, size in enumerate([5, 9])]
        root = tmp_path / "store"
        with ArchiveStore(root) as store:
            for snapshot in days:
                store.append(snapshot)
        _downgrade_shard_to_v2(_shard_path(root))
        _set_manifest_format(root, 2)
        fresh = _snapshot(2, 9)
        with ArchiveStore(root) as store:
            store.append(fresh)
        # v2 records survive in place; the new day is chunked v3 and the
        # manifest now advertises the upgraded format.
        assert _record_chunk_counts(_shard_path(root)) == [1, 1, 3]
        manifest = json.loads((root / "manifest.json").read_text(encoding="utf-8"))
        assert manifest["format_version"] == store_module.FORMAT_VERSION
        with ArchiveStore(root) as store:
            for snapshot in days + [fresh]:
                assert store.load_snapshot(
                    "alexa", snapshot.date).entries == snapshot.entries

    def test_unsupported_format_version_is_refused(self, tmp_path):
        root = tmp_path / "store"
        with ArchiveStore(root) as store:
            store.append(_snapshot(0, 3))
        _set_manifest_format(root, 1)
        with pytest.raises(StoreError, match="format"):
            ArchiveStore(root)


class TestCorruptChunkDirectories:
    """The record walker must reject malformed v3 framing loudly."""

    def _v3_record(self, ordinal: int, ids: array, chunk: int = 4) -> bytes:
        directory = bytearray()
        payload = bytearray()
        for start in range(0, len(ids), chunk):
            piece = ids[start:start + chunk]
            compressed = zlib.compress(_pack_ids(piece), 6)
            directory += _CHUNK_DIR.pack(len(piece), len(compressed))
            payload += compressed
        return _HEADER.pack(_MAGIC, ordinal, 1, len(ids),
                            len(directory) // _CHUNK_DIR.size) + \
            bytes(directory) + bytes(payload)

    def test_walker_round_trips_its_own_records(self):
        ids = array("I", range(10))
        record = self._v3_record(700000, ids)
        [(ordinal, _, chunks, end)] = list(
            _iter_shard_records(record, Path("mem"), limit=1))
        assert ordinal == 700000 and end == len(record)
        assert _decode_chunks(chunks) == ids

    def test_truncated_chunk_directory_is_loud(self):
        record = self._v3_record(700000, array("I", range(10)))
        cut = record[:_HEADER.size + _CHUNK_DIR.size]  # 3 chunks declared, 1 present
        with pytest.raises(StoreError, match="truncated chunk directory"):
            list(_iter_shard_records(cut, Path("mem"), limit=1))

    def test_directory_count_mismatch_is_loud(self):
        record = bytearray(self._v3_record(700000, array("I", range(10))))
        # Inflate the first chunk's declared entry count.
        count, length = _CHUNK_DIR.unpack_from(record, _HEADER.size)
        record[_HEADER.size:_HEADER.size + _CHUNK_DIR.size] = \
            _CHUNK_DIR.pack(count + 1, length)
        with pytest.raises(StoreError, match="disagree"):
            list(_iter_shard_records(bytes(record), Path("mem"), limit=1))

    def test_truncated_final_chunk_payload_is_loud(self):
        record = self._v3_record(700000, array("I", range(10)))
        with pytest.raises(StoreError, match="truncated record payload"):
            list(_iter_shard_records(record[:-1], Path("mem"), limit=1))


class TestCrashTruncatedFinalChunk:
    """PR-5 tail-truncation oracle, aimed at the chunked payload.

    An append that dies after writing part of its record leaves an
    orphaned tail the manifest never names.  Recovery on reopen must
    truncate it — wherever inside the chunk structure the cut landed —
    and leave the published days byte-exact and appendable.
    """

    def test_cut_inside_final_chunk_recovers(self, tmp_path, small_chunks):
        published = [_snapshot(day, size) for day, size in enumerate([5, 9])]
        crashed = _snapshot(2, 13)
        root = tmp_path / "store"
        with ArchiveStore(root) as store:
            for snapshot in published:
                store.append(snapshot)
        shard = _shard_path(root)
        durable = shard.stat().st_size

        # Build the crashed day's record out-of-band and cut it at every
        # structurally interesting depth: header-only, inside the chunk
        # directory, at each chunk boundary, and mid-final-chunk.
        sids = array("I", range(13))
        record = TestCorruptChunkDirectories()._v3_record(
            crashed.date.toordinal(), sids)
        boundaries = [4, _HEADER.size, _HEADER.size + _CHUNK_DIR.size + 1,
                      len(record) // 2, len(record) - 3]
        for cut in boundaries:
            with shard.open("r+b") as handle:
                handle.truncate(durable)
                handle.seek(durable)
                handle.write(record[:cut])
            # Reads are bounded by the manifest's record counts, so the
            # orphan bytes past them are invisible whatever they hold.
            with ArchiveStore(root) as store:
                assert store.dates("alexa") == [s.date for s in published]
                for snapshot in published:
                    assert store.load_snapshot(
                        "alexa", snapshot.date).entries == snapshot.entries

            # The next append supersedes the torn tail: the new record
            # lands at the durable offset, never after the garbage.
            with ArchiveStore(root) as store:
                store.append(crashed)
                assert store.load_snapshot(
                    "alexa", crashed.date).entries == crashed.entries
                assert store.load_head(
                    "alexa", crashed.date, 5).entries == crashed.entries[:5]
            assert _record_chunk_counts(shard) == [2, 3, 4]

            # Reset for the next cut position.
            with shard.open("r+b") as handle:
                handle.truncate(durable)
            manifest_path = root / "manifest.json"
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            entry = manifest["providers"]["alexa"]
            entry["dates"] = entry["dates"][:-1]
            entry["shards"] = {month: count - 1
                               for month, count in entry["shards"].items()}
            manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
