"""Crash-recovery property tests for the archive store.

The store's durability contract: the manifest is published *after* the
table/shard tails it names are on disk, so a crash at any byte of an
in-flight append leaves (at worst) orphaned tail bytes past the last
published manifest.  Reopening must recover to exactly the published
version — whatever garbage the tail holds — with the id lane and the
string lane still in parity, and re-appending the lost day must
succeed.

Hypothesis drives the crash point: it picks the archive contents, then
truncates ``interner.tbl`` and the active shard at arbitrary byte
offsets inside the un-published tail (including offsets that cut a
record or a table entry in half), and drops a half-written
``manifest.json.tmp`` on top.
"""

import datetime as dt
import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import archive_base_domain_sets
from repro.interning import default_interner
from repro.providers.base import ListArchive, ListSnapshot
from repro.service.store import ArchiveStore, StoreError

BASE_DATE = dt.date(2018, 3, 1)
POOL = tuple(f"pool-{i:02d}.example.com" for i in range(24)) + (
    "deep.sub.pool-00.example.com", "other.example.org",
    "host.co.uk", "second.host.co.uk")

_day_strategy = st.lists(st.sampled_from(POOL), unique=True,
                         min_size=2, max_size=10)


def _snapshot(day: int, entries) -> ListSnapshot:
    return ListSnapshot(provider="alexa",
                        date=BASE_DATE + dt.timedelta(days=day),
                        entries=tuple(entries))


def _assert_matches(store: ArchiveStore, expected: list[ListSnapshot]) -> None:
    """Dates, string lane, id lane and warm base sets all match."""
    assert store.dates("alexa") == [s.date for s in expected]
    loaded = store.load_archive("alexa")
    interner = default_interner()
    for got, want in zip(loaded, expected):
        # String lane and id lane answer identically (parity intact).
        assert got.entries == want.entries
        assert interner.domains(got.entry_ids()) == want.entries
        assert got.id_set() == want.id_set()
    # The replayed warm start equals a from-scratch delta computation.
    fresh = ListArchive.from_snapshots(
        [ListSnapshot("alexa", s.date, s.entries) for s in expected])
    assert dict(archive_base_domain_sets(loaded)) == \
        dict(archive_base_domain_sets(fresh))


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_truncated_append_tail_recovers_to_published_version(data):
    n_days = data.draw(st.integers(min_value=1, max_value=4), label="days")
    published = [
        _snapshot(day, data.draw(_day_strategy, label=f"day{day}"))
        for day in range(n_days)]
    # The crashed day always carries table growth, so the un-published
    # tail spans both files.
    crash_entries = tuple(data.draw(_day_strategy, label="crash")) + (
        f"crash-only-{n_days}.example.net",)

    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "store"
        store = ArchiveStore(root)
        for snapshot in published:
            store.append(snapshot)
        table_path = root / "interner.tbl"
        shard_dir = root / "shards" / "alexa"
        durable_sizes = {
            path: path.stat().st_size
            for path in [table_path, *shard_dir.iterdir()]
            if path.exists()}

        # The append that "crashes": data written, manifest never flushed.
        store.append(_snapshot(n_days, crash_entries), sync=False)

        # The crash truncates each grown file somewhere inside its
        # un-published tail — possibly mid-record.
        for path, durable in sorted(durable_sizes.items()):
            full = path.stat().st_size
            if full > durable:
                cut = data.draw(st.integers(min_value=durable, max_value=full),
                                label=f"cut:{path.name}")
                with path.open("r+b") as handle:
                    handle.truncate(cut)
        # A half-written manifest tmp from the interrupted publish.
        (root / "manifest.json.tmp").write_bytes(b'{"format_version": 2, "sto')

        reopened = ArchiveStore(root, create=False)
        _assert_matches(reopened, published)
        assert not (root / "manifest.json.tmp").exists()

        # The lost day is re-appendable (not a silent duplicate), and the
        # store is fully intact afterwards — including across one more
        # reopen, proving the truncated tails were cleanly superseded.
        reopened.append(_snapshot(n_days, crash_entries))
        final = published + [_snapshot(n_days, crash_entries)]
        _assert_matches(reopened, final)
        _assert_matches(ArchiveStore(root, create=False), final)


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_fully_lost_tail_files_still_open(data):
    """Truncating the whole tail (crash before any byte landed) recovers."""
    entries = data.draw(_day_strategy)
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp) / "store"
        store = ArchiveStore(root)
        store.append(_snapshot(0, entries))
        sizes = {path: path.stat().st_size
                 for path in [root / "interner.tbl",
                              *(root / "shards" / "alexa").iterdir()]}
        store.append(_snapshot(1, tuple(entries) + ("tail-loss.example",)),
                     sync=False)
        for path, durable in sizes.items():
            with path.open("r+b") as handle:
                handle.truncate(durable)
        _assert_matches(ArchiveStore(root, create=False), [_snapshot(0, entries)])


def test_truncation_inside_published_data_is_loud(tmp_path):
    """Corruption of *published* bytes must raise, never silently heal."""
    store = ArchiveStore(tmp_path / "s")
    store.append(_snapshot(0, POOL[:6]))
    table_path = tmp_path / "s" / "interner.tbl"
    with table_path.open("r+b") as handle:
        handle.truncate(table_path.stat().st_size - 1)
    try:
        ArchiveStore(tmp_path / "s", create=False).load_archive("alexa")
    except StoreError as error:
        assert "truncated" in str(error)
    else:  # pragma: no cover - the assertion documents the contract
        raise AssertionError("published-data truncation went unnoticed")
