"""Smoke tests: every example script runs to completion.

The examples are the library's advertised entry points, so the suite
executes each one (in-process, sharing the simulation cache) and checks
that it prints the sections it promises.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXPECTED_OUTPUT = {
    "quickstart.py": ("Daily churn", "Intersection between the lists",
                      "Measurement bias"),
    "stability_report.py": ("Daily changes per list", "Kendall's tau",
                            "Weekday/weekend KS distance"),
    "measurement_bias_study.py": ("Adoption measured on different target sets",
                                  "significance-flagged comparison"),
    "rank_manipulation.py": ("Umbrella rank injection", "TTL sweep",
                             "Majestic backlink purchasing", "Alexa toolbar telemetry"),
    "analyze_real_lists.py": ("Archive summary", "Structure of the latest snapshot"),
    "serve_archive.py": ("Archive store", "Warm-started reload", "Rank history",
                         "Query API"),
}


def _run_example(name: str) -> str:
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{name.replace('.py', '')}", path)
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    old_argv = sys.argv
    sys.argv = [str(path)]
    try:
        spec.loader.exec_module(module)
        import io
        from contextlib import redirect_stdout

        buffer = io.StringIO()
        with redirect_stdout(buffer):
            module.main()
    finally:
        sys.argv = old_argv
    return buffer.getvalue()


class TestExamples:
    def test_examples_directory_complete(self):
        scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
        assert set(EXPECTED_OUTPUT) <= scripts
        assert len(scripts) >= 3

    @pytest.mark.parametrize("script", sorted(EXPECTED_OUTPUT))
    def test_example_runs_and_reports(self, script):
        output = _run_example(script)
        assert len(output) > 200
        for marker in EXPECTED_OUTPUT[script]:
            assert marker in output, f"{script} output misses {marker!r}"
