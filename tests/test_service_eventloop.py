"""Event-loop server: wire-contract parity, zero-copy path, idle cost.

The parity classes re-run the locked keep-alive and fuzz suites against
:class:`repro.service.eventloop.EventLoopServer` — same fixtures, same
assertions, different transport.  The threaded and event-loop servers
must be indistinguishable on the wire.
"""

import datetime as dt
import json
import socket
import threading
import time

import pytest

from repro.providers.base import ListArchive, ListSnapshot
from repro.service.api import QueryService
from repro.service.eventloop import EventLoopServer
from repro.service.shared_cache import SharedPayloadCache
from repro.service.store import ArchiveStore

# Underscore aliases keep pytest from collecting the originals twice.
from test_service_keepalive import (  # noqa: F401
    _get, _port, _request,
    TestCleanErrorsKeepAlive as _CleanErrorsContract,
    TestIfNoneMatchRFC7232 as _IfNoneMatchContract,
    TestNoDelay as _NoDelayContract,
    TestProtocolFailuresClose as _ProtocolCloseContract,
)
from test_service_fuzz import (  # noqa: F401
    _raw_exchange,
    TestHeaderAndParamFuzz as _HeaderFuzzContract,
    TestIngestBodies as _IngestBodiesContract,
    TestMalformedRequestLines as _MalformedLinesContract,
)


def _serve(server: EventLoopServer) -> threading.Thread:
    thread = threading.Thread(target=server.serve_forever,
                              kwargs={"poll_interval": 0.05}, daemon=True)
    thread.start()
    return thread


@pytest.fixture(scope="module")
def keepalive_server(tmp_path_factory):
    snapshots = [
        ListSnapshot("alexa", dt.date(2018, 5, 1) + dt.timedelta(days=day),
                     ("a.com", "b.org", "c.net"))
        for day in range(3)
    ]
    store = ArchiveStore.from_archives(
        tmp_path_factory.mktemp("elkeepalive"),
        {"alexa": ListArchive.from_snapshots(snapshots)})
    server = EventLoopServer(QueryService(store))
    _serve(server)
    yield server
    assert server.unhandled_errors == [], server.unhandled_errors
    server.shutdown()
    server.server_close()
    store.close()


@pytest.fixture(scope="module")
def fuzz_server(tmp_path_factory):
    root = tmp_path_factory.mktemp("elfuzzstore")
    store = ArchiveStore(root / "s")
    store.append_archive(ListArchive.from_snapshots([
        ListSnapshot("alexa", dt.date(2018, 1, 1) + dt.timedelta(days=day),
                     (f"a{day}.example.com", "b.example.com", "c.example.org"))
        for day in range(3)]))
    service = QueryService(store)
    server = EventLoopServer(service)
    _serve(server)
    yield server
    assert server.unhandled_errors == [], server.unhandled_errors
    server.shutdown()
    server.server_close()


# -- the locked wire contracts, replayed over the event loop --------------
class TestCleanErrorsKeepAliveEventLoop(_CleanErrorsContract):
    pass


class TestProtocolFailuresCloseEventLoop(_ProtocolCloseContract):
    pass


class TestIfNoneMatchEventLoop(_IfNoneMatchContract):
    pass


class TestNoDelayEventLoop(_NoDelayContract):
    pass


class TestMalformedRequestLinesEventLoop(_MalformedLinesContract):
    pass


class TestIngestBodiesEventLoop(_IngestBodiesContract):
    pass


class TestHeaderAndParamFuzzEventLoop(_HeaderFuzzContract):
    pass


# -- event-loop-specific behaviour ----------------------------------------
class TestIdleConnectionCost:
    def test_idle_keepalive_connections_cost_no_threads(self, keepalive_server):
        """The module's reason to exist: parked sockets are just fds."""
        port = _port(keepalive_server)
        before = threading.active_count()
        idle = []
        try:
            for _ in range(64):
                sock = socket.create_connection(("127.0.0.1", port),
                                                timeout=10)
                idle.append(sock)
            # The server never grows a thread for any of them ...
            assert threading.active_count() == before
            # ... and still answers interleaved traffic promptly.
            responses = _request(port, [_get("/v1/meta")] * 3)
            assert [status for status, _, _ in responses] == [200] * 3
            assert threading.active_count() == before
        finally:
            for sock in idle:
                sock.close()

    def test_idle_connections_are_reaped_after_timeout(self, tmp_path):
        snapshots = [ListSnapshot("alexa", dt.date(2018, 5, 1), ("a.com",))]
        store = ArchiveStore.from_archives(
            tmp_path / "s", {"alexa": ListArchive.from_snapshots(snapshots)})
        server = EventLoopServer(QueryService(store))
        server.timeout = 0.3
        _serve(server)
        try:
            with socket.create_connection(
                    ("127.0.0.1", server.server_address[1]), timeout=10) as s:
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    if s.recv(1) == b"":  # server closed the idle socket
                        break
                else:
                    raise AssertionError("idle connection never reaped")
        finally:
            server.shutdown()
            server.server_close()
            store.close()


class TestZeroCopySharedPayloads:
    def test_shared_cache_returns_memoryview(self, tmp_path):
        cache = SharedPayloadCache(tmp_path / "seg.bin")
        assert cache.put(7, "/v1/meta", b"payload-bytes", "w/tag")
        body, etag = cache.get(7, "/v1/meta")
        assert isinstance(body, memoryview)
        assert body == b"payload-bytes" and etag == "w/tag"
        cache.close()

    def test_view_survives_cache_remap_and_close(self, tmp_path):
        cache = SharedPayloadCache(tmp_path / "seg.bin")
        cache.put(1, "/a", b"first-body", "t1")
        body, _ = cache.get(1, "/a")
        # Growing the file forces a remap while the view is exported;
        # closing with a live export must not raise either.
        cache.put(1, "/b", b"x" * 4096, "t2")
        assert cache.get(1, "/b") is not None
        cache.close()
        assert bytes(body) == b"first-body"

    def test_event_loop_serves_shared_hit_zero_copy(self, tmp_path):
        snapshots = [
            ListSnapshot("alexa", dt.date(2018, 5, 1) + dt.timedelta(days=d),
                         ("a.com", "b.org")) for d in range(2)]
        store = ArchiveStore.from_archives(
            tmp_path / "s", {"alexa": ListArchive.from_snapshots(snapshots)})
        segment = tmp_path / "seg.bin"
        renderer = QueryService(store)
        renderer.attach_shared_cache(SharedPayloadCache(segment))
        rendered = renderer.handle_request("/v1/meta", {})
        assert rendered.status == 200

        serving = QueryService(ArchiveStore(tmp_path / "s"))
        shared = SharedPayloadCache(segment)
        serving.attach_shared_cache(shared)
        server = EventLoopServer(serving)
        _serve(server)
        try:
            responses = _request(server.server_address[1],
                                 [_get("/v1/meta")])
            status, headers, body = responses[0]
            assert status == 200
            assert headers["x-repro-cache"] == "shared"
            assert body == bytes(rendered.body)
            assert headers["etag"] == rendered.headers["ETag"]
            assert server.unhandled_errors == []
        finally:
            server.shutdown()
            server.server_close()
