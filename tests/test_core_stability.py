"""Tests for the stability analysis (Section 6.1)."""

import datetime as dt

import pytest

from repro.core.stability import (
    cumulative_unique_domains,
    daily_changes,
    days_in_list,
    days_in_list_cdf,
    intersection_with_reference,
    mean_daily_change,
    new_domains_per_day,
)
from repro.providers.base import ListArchive, ListSnapshot


@pytest.fixture()
def toy_archive() -> ListArchive:
    """Four days with controlled membership changes."""
    archive = ListArchive(provider="toy")
    days = [
        ["a.com", "b.com", "c.com"],
        ["a.com", "b.com", "d.com"],   # c removed, d new
        ["a.com", "c.com", "d.com"],   # b removed, c rejoins
        ["a.com", "c.com", "e.com"],   # d removed, e new
    ]
    for index, entries in enumerate(days):
        archive.add(ListSnapshot(provider="toy", entries=tuple(entries),
                                 date=dt.date(2018, 1, 1) + dt.timedelta(days=index)))
    return archive


class TestDailyChanges:
    def test_counts(self, toy_archive):
        changes = daily_changes(toy_archive)
        assert list(changes.values()) == [1, 1, 1]

    def test_mean(self, toy_archive):
        assert mean_daily_change(toy_archive) == pytest.approx(1.0)

    def test_top_n_restriction(self, toy_archive):
        changes = daily_changes(toy_archive, top_n=1)
        assert list(changes.values()) == [0, 0, 0]

    def test_empty_archive(self):
        archive = ListArchive(provider="toy")
        assert daily_changes(archive) == {}
        assert mean_daily_change(archive) == 0.0


class TestNewDomains:
    def test_new_vs_rejoining(self, toy_archive):
        new = new_domains_per_day(toy_archive)
        # Day 2: d is new. Day 3: c rejoins (not new). Day 4: e is new.
        assert list(new.values()) == [1, 0, 1]

    def test_cumulative_unique(self, toy_archive):
        cumulative = cumulative_unique_domains(toy_archive)
        assert list(cumulative.values()) == [3, 4, 4, 5]

    def test_relationship_between_change_and_new(self, small_run):
        # New domains are a subset of daily changes (20-33% in the paper).
        for archive in small_run.archives.values():
            total_change = sum(daily_changes(archive).values())
            total_new = sum(new_domains_per_day(archive).values())
            assert total_new <= total_change


class TestReferenceDecay:
    def test_monotone_for_toy(self, toy_archive):
        decay = intersection_with_reference(toy_archive, reference_days=[0])
        assert decay[0] == 3.0
        assert decay[3] <= decay[0]

    def test_median_over_multiple_starts(self, toy_archive):
        decay = intersection_with_reference(toy_archive, reference_days=[0, 1])
        assert decay[0] == 3.0
        assert set(decay) == {0, 1, 2, 3}

    def test_out_of_range_starts_ignored(self, toy_archive):
        decay = intersection_with_reference(toy_archive, reference_days=[99])
        assert decay == {}

    def test_majestic_decays_slower_than_umbrella(self, small_run):
        majestic = intersection_with_reference(small_run.majestic, reference_days=[0])
        umbrella = intersection_with_reference(small_run.umbrella, reference_days=[0])
        last = max(majestic)
        assert majestic[last] > umbrella[last]


class TestDaysInList:
    def test_counts(self, toy_archive):
        counts = days_in_list(toy_archive)
        assert counts["a.com"] == 4
        assert counts["c.com"] == 3
        assert counts["e.com"] == 1

    def test_cdf_shape(self, toy_archive):
        cdf = days_in_list_cdf(toy_archive)
        shares = [point[0] for point in cdf]
        probs = [point[1] for point in cdf]
        assert shares == sorted(shares)
        assert probs[-1] == pytest.approx(1.0)
        assert all(0 < share <= 1 for share in shares)

    def test_empty(self):
        assert days_in_list_cdf(ListArchive(provider="toy")) == []

    def test_majestic_domains_stay_longer(self, small_run):
        majestic = days_in_list(small_run.majestic)
        umbrella = days_in_list(small_run.umbrella)
        total_days = small_run.config.n_days
        majestic_full = sum(1 for v in majestic.values() if v == total_days) / len(majestic)
        umbrella_full = sum(1 for v in umbrella.values() if v == total_days) / len(umbrella)
        assert majestic_full > umbrella_full
