"""Property-based round-trip tests (hypothesis) for :mod:`repro.listio`.

For arbitrary domain lists: writing a snapshot and reading it back — as a
plain CSV, as an Alexa-style zip, or through Majestic's 3-column format —
must reproduce the entries, their ranks and the provider exactly.
"""

from __future__ import annotations

import datetime as dt
import pathlib
import string
import tempfile
import zipfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.listio import parse_top_list_csv, read_archive, read_top_list, write_archive, write_top_list
from repro.providers.base import ListArchive, ListSnapshot

# --------------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------------

_label = st.text(alphabet=string.ascii_lowercase + string.digits,
                 min_size=1, max_size=10)
_domain = st.builds(lambda labels, tld: ".".join(labels + [tld]),
                    st.lists(_label, min_size=1, max_size=3),
                    st.sampled_from(["com", "net", "org", "de", "co.uk", "io"]))
_domains = st.lists(_domain, min_size=1, max_size=30, unique=True)
_date = st.dates(min_value=dt.date(2017, 6, 6), max_value=dt.date(2018, 4, 30))
_provider = st.sampled_from(["alexa", "umbrella", "majestic", "prop"])


def _snapshot(provider: str, date: dt.date, entries: list[str]) -> ListSnapshot:
    return ListSnapshot(provider=provider, date=date, entries=tuple(entries))


def _assert_equivalent(loaded: ListSnapshot, original: ListSnapshot) -> None:
    assert loaded.provider == original.provider
    assert loaded.date == original.date
    assert loaded.entries == original.entries
    for rank, domain in enumerate(original.entries, start=1):
        assert loaded.rank_of(domain) == rank


class TestCsvRoundTrip:
    @given(_provider, _date, _domains)
    @settings(max_examples=40)
    def test_write_read_csv(self, provider, date, entries):
        original = _snapshot(provider, date, entries)
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "list.csv"
            write_top_list(original, path)
            loaded = read_top_list(path, provider=provider, date=date)
        _assert_equivalent(loaded, original)

    @given(_date, _domains)
    @settings(max_examples=40)
    def test_filename_carries_the_date(self, date, entries):
        original = _snapshot("alexa", date, entries)
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / f"alexa-{date.isoformat()}.csv"
            write_top_list(original, path)
            loaded = read_top_list(path, provider="alexa")
        _assert_equivalent(loaded, original)

    @given(_provider, _date, _domains)
    @settings(max_examples=40)
    def test_zip_round_trip(self, provider, date, entries):
        # The Alexa distribution format: a zip wrapping top-1m.csv.
        original = _snapshot(provider, date, entries)
        text = "".join(f"{rank},{domain}\r\n"
                       for rank, domain in enumerate(original.entries, start=1))
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "top-1m.csv.zip"
            with zipfile.ZipFile(path, "w") as archive:
                archive.writestr("top-1m.csv", text)
            loaded = read_top_list(path, provider=provider, date=date)
        _assert_equivalent(loaded, original)


class TestMajesticFormat:
    @given(_date, _domains)
    @settings(max_examples=40)
    def test_three_column_round_trip(self, date, entries):
        # Majestic Million rows carry the domain in the third column.
        original = _snapshot("majestic", date, entries)
        text = "GlobalRank,TLD,Domain,RefSubNets\n" + "".join(
            f"{rank},{domain.rsplit('.', 1)[-1]},{domain},{rank * 17}\n"
            for rank, domain in enumerate(original.entries, start=1))
        loaded = parse_top_list_csv(text, provider="majestic", date=date,
                                    domain_column=2)
        _assert_equivalent(loaded, original)

    @given(_date, _domains)
    @settings(max_examples=40)
    def test_parse_is_idempotent(self, date, entries):
        original = _snapshot("majestic", date, entries)
        text = "".join(f"{rank},{domain}\n"
                       for rank, domain in enumerate(original.entries, start=1))
        once = parse_top_list_csv(text, provider="majestic", date=date)
        again = parse_top_list_csv(
            "".join(f"{rank},{domain}\n"
                    for rank, domain in enumerate(once.entries, start=1)),
            provider="majestic", date=date)
        assert again.entries == once.entries == original.entries


class TestArchiveRoundTrip:
    @given(_provider,
           st.lists(st.tuples(_date, _domains), min_size=1, max_size=4,
                    unique_by=lambda pair: pair[0]))
    @settings(max_examples=25)
    def test_write_read_archive(self, provider, days):
        archive = ListArchive(provider=provider)
        for date, entries in days:
            archive.add(_snapshot(provider, date, entries))
        with tempfile.TemporaryDirectory() as tmp:
            directory = pathlib.Path(tmp) / "archive"
            write_archive(archive, directory)
            loaded = read_archive(directory, provider=provider)
        assert loaded.dates() == archive.dates()
        for original in archive:
            _assert_equivalent(loaded[original.date], original)
