"""Tests for the simulated web hosts and registry."""

import pytest

from repro.web.hsts import HstsPolicy
from repro.web.server import HostNotFoundError, HostRegistry, WebHost


class TestWebHost:
    def test_domain_normalised(self):
        host = WebHost(domain="Example.COM.")
        assert host.domain == "example.com"

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            WebHost(domain="   ")

    def test_tls_defaults_version(self):
        host = WebHost(domain="a.com", tls_enabled=True)
        assert host.tls_version == "TLSv1.2"

    def test_hsts_dropped_without_tls(self):
        host = WebHost(domain="a.com", tls_enabled=False,
                       hsts_policy=HstsPolicy(max_age=600))
        assert host.hsts_policy is None
        assert host.hsts_header is None

    def test_hsts_header_rendering(self):
        host = WebHost(domain="a.com", tls_enabled=True,
                       hsts_policy=HstsPolicy(max_age=600))
        assert host.hsts_header == "max-age=600"


class TestHostRegistry:
    @pytest.fixture()
    def registry(self) -> HostRegistry:
        registry = HostRegistry()
        registry.add(WebHost(domain="example.com", tls_enabled=True))
        registry.add(WebHost(domain="plain.org"))
        return registry

    def test_lookup(self, registry):
        assert registry.lookup("example.com").tls_enabled

    def test_lookup_www_alias(self, registry):
        assert registry.lookup("www.example.com").domain == "example.com"

    def test_lookup_missing(self, registry):
        assert registry.lookup("missing.net") is None

    def test_connect_raises_for_missing(self, registry):
        with pytest.raises(HostNotFoundError):
            registry.connect("missing.net")

    def test_add_overwrites(self, registry):
        registry.add(WebHost(domain="example.com", tls_enabled=False))
        assert not registry.lookup("example.com").tls_enabled

    def test_remove(self, registry):
        registry.remove("plain.org")
        assert registry.lookup("plain.org") is None

    def test_len_and_iter(self, registry):
        assert len(registry) == 2
        assert {host.domain for host in registry} == {"example.com", "plain.org"}
