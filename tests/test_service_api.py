"""Parity and protocol tests for the /v1 query API (repro.service.api).

The central assertion: every endpoint's payload is *byte-identical* to
computing the same answer directly with :mod:`repro.core` /
:mod:`repro.scenarios` on the same archives.  The expected documents here
are built independently in the tests from direct library calls — the API
must reproduce them to the byte (same floats, same key order, same JSON
layout).  The golden-marked test closes the loop against the committed
scenario fingerprints.
"""

import datetime as dt
import json
import pathlib
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.intersection import intersection_over_time
from repro.core.stability import (
    cumulative_unique_domains,
    daily_changes,
    days_in_list,
    intersection_with_reference,
    mean_daily_change,
    new_domains_per_day,
)
from repro.providers.base import ListArchive, ListSnapshot
from repro.scenarios.golden import load_golden
from repro.scenarios.profiles import profile_names
from repro.scenarios.runner import ScenarioReport, canonical_float, run_scenario
from repro.service.api import QueryService, create_server, json_bytes
from repro.service.store import ArchiveStore

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"


@pytest.fixture(scope="module")
def api_store(tmp_path_factory, small_run):
    return ArchiveStore.from_archives(tmp_path_factory.mktemp("apistore"),
                                      small_run.archives)


@pytest.fixture(scope="module")
def service(api_store):
    return QueryService(api_store)


def _probe_domains(small_run):
    alexa = small_run.archives["alexa"]
    head = alexa[0].entries[:3]
    tail = alexa[len(alexa) - 1].entries[-2:]
    return list(dict.fromkeys(head + tail)) + ["never-listed.example"]


class TestHistoryParity:
    def _expected(self, small_run, domain, top_k=None):
        sections = {}
        for provider in sorted(small_run.archives):
            archive = small_run.archives[provider]
            observations = [
                (snapshot.date, snapshot.entries.index(domain) + 1)
                for snapshot in archive if domain in snapshot.domain_set()]
            section = {
                "observations": [{"date": date.isoformat(), "rank": rank}
                                 for date, rank in observations],
                "days_listed": len(observations),
                "first_seen": observations[0][0].isoformat() if observations else None,
                "last_seen": observations[-1][0].isoformat() if observations else None,
                "best_rank": min((r for _, r in observations), default=None),
                "worst_rank": max((r for _, r in observations), default=None),
            }
            if top_k is not None:
                section["days_in_top_k"] = sum(
                    1 for _, rank in observations if rank <= top_k)
            sections[provider] = section
        payload = {"domain": domain, "providers": sections}
        if top_k is not None:
            payload["top_k"] = top_k
        return payload

    def test_byte_identical_to_archive_scan(self, service, small_run):
        for domain in _probe_domains(small_run):
            response = service.handle_request(f"/v1/domains/{domain}/history")
            assert response.status == 200
            assert response.body == json_bytes(self._expected(small_run, domain))

    def test_top_k_parameter(self, service, small_run):
        domain = small_run.archives["alexa"][0].entries[0]
        response = service.handle_request(f"/v1/domains/{domain}/history?top_k=10")
        assert response.body == json_bytes(
            self._expected(small_run, domain, top_k=10))

    def test_date_window(self, service, small_run):
        archive = small_run.archives["alexa"]
        dates = archive.dates()
        start, end = dates[2], dates[-3]
        domain = archive[0].entries[0]
        response = service.handle_request(
            f"/v1/domains/{domain}/history?providers=alexa"
            f"&start={start.isoformat()}&end={end.isoformat()}")
        observations = [
            {"date": s.date.isoformat(), "rank": s.entries.index(domain) + 1}
            for s in archive
            if start <= s.date <= end and domain in s.domain_set()]
        payload = response.json()
        assert payload["providers"]["alexa"]["observations"] == observations
        assert payload["start"] == start.isoformat()
        # Longevity stays whole-archive (the window trims observations only).
        full = [s for s in archive if domain in s.domain_set()]
        assert payload["providers"]["alexa"]["days_listed"] == len(full)


class TestStabilityParity:
    @pytest.mark.parametrize("provider", ["alexa", "umbrella", "majestic"])
    @pytest.mark.parametrize("top_n", [None, 100])
    def test_byte_identical_to_core_calls(self, service, small_run, provider, top_n):
        archive = small_run.archives[provider]
        changes = daily_changes(archive, top_n)
        mean_change = mean_daily_change(archive, top_n)
        counts = days_in_list(archive, top_n)
        always = (sum(1 for v in counts.values() if v == len(archive))
                  / len(counts)) if counts else 0.0
        list_size = len(archive[0])
        head = list_size if top_n is None else min(top_n, list_size)
        expected = {
            "provider": provider,
            "top_n": top_n,
            "days": len(archive),
            "list_size": list_size,
            "mean_daily_change": canonical_float(mean_change),
            "churn_fraction": canonical_float(mean_change / max(1, head)),
            "daily_changes": {d.isoformat(): c
                              for d, c in sorted(changes.items())},
            "new_per_day": {d.isoformat(): c for d, c in
                            sorted(new_domains_per_day(archive, top_n).items())},
            "cumulative_unique": {d.isoformat(): c for d, c in
                                  sorted(cumulative_unique_domains(archive, top_n).items())},
            "distinct_domains": len(counts),
            "always_listed_share": canonical_float(always),
            "reference_decay": {
                str(offset): canonical_float(value)
                for offset, value in sorted(intersection_with_reference(
                    archive, reference_days=range(7), top_n=top_n).items())},
        }
        query = "" if top_n is None else f"?top_n={top_n}"
        response = service.handle_request(f"/v1/providers/{provider}/stability{query}")
        assert response.status == 200
        assert response.body == json_bytes(expected)


class TestCompareParity:
    def test_byte_identical_to_intersection_over_time(self, service, small_run):
        names = ["alexa", "majestic", "umbrella"]
        series = intersection_over_time(
            {name: small_run.archives[name] for name in names}, top_n=100)
        per_pair, daily = {}, {}
        for date, matrix in series.items():
            row = {"&".join(pair): count for pair, count in matrix.items()}
            daily[date.isoformat()] = row
            for pair, count in row.items():
                per_pair.setdefault(pair, []).append(count)
        expected = {
            "providers": names,
            "top_n": 100,
            "days": len(series),
            "pairs": {pair: {"mean": canonical_float(sum(c) / len(c)),
                             "min": min(c), "max": max(c)}
                      for pair, c in sorted(per_pair.items())},
            "series": daily,
        }
        response = service.handle_request(
            "/v1/compare?providers=alexa,majestic,umbrella&top_n=100")
        assert response.body == json_bytes(expected)

    def test_needs_two_providers(self, service):
        assert service.handle_request("/v1/compare?providers=alexa").status == 400


class TestScenarioReports:
    def test_served_bytes_equal_direct_report(self, tmp_path, small_run):
        # The stored document is the exact to_json() of the direct call,
        # so the endpoint serves byte-identical scenario numbers.
        report = ScenarioReport(
            profile="api_unit", description="unit fixture",
            config={"n_days": 3}, top_k=10,
            providers={"alexa": {"stability": {"churn_fraction": 0.01}}},
            intersection={"pairs": {}}, recommendations={})
        store = ArchiveStore(tmp_path / "s")
        store.save_report(report)
        response = QueryService(store).handle_request("/v1/scenarios/api_unit/report")
        assert response.status == 200
        assert response.body == report.to_bytes()
        assert ScenarioReport.from_json(
            response.body.decode("utf-8")).to_dict() == report.to_dict()

    def test_unknown_report_404(self, service):
        response = service.handle_request("/v1/scenarios/nosuch/report")
        assert response.status == 404

    def test_path_escaping_profile_is_400_not_crash(self, service):
        for target in ("/v1/scenarios/.hidden/report",
                       "/v1/scenarios/%2e%2e/report"):
            response = service.handle_request(target)
            assert response.status == 400, target
            assert response.json()["error"]["status"] == 400


@pytest.mark.golden
class TestScenarioReportGoldenParity:
    def test_served_reports_match_committed_goldens(self, tmp_path):
        # Store every built-in scenario's report, serve it, reconstruct
        # the fingerprint from the served bytes and compare against the
        # committed goldens: the API path cannot drift from the library.
        store = ArchiveStore(tmp_path / "s")
        service = QueryService(store)
        for name in profile_names():
            report = run_scenario(name)
            store.save_report(report)
            response = service.handle_request(f"/v1/scenarios/{name}/report")
            assert response.status == 200
            assert response.body == report.to_bytes()
            served = ScenarioReport.from_json(response.body.decode("utf-8"))
            assert served.fingerprint() == load_golden(GOLDEN_DIR, name), name


class TestIngestProtocol:
    def _store(self, tmp_path):
        snapshots = [
            ListSnapshot(provider="alexa",
                         date=dt.date(2018, 1, 1) + dt.timedelta(days=day),
                         entries=("a.com", "b.com", f"day{day}.com"))
            for day in range(2)]
        store = ArchiveStore(tmp_path / "ingest-store")
        store.append_archive(ListArchive.from_snapshots(snapshots))
        return store

    def test_json_ingest_round_trip(self, tmp_path):
        service = QueryService(self._store(tmp_path))
        body = json.dumps({"provider": "alexa", "date": "2018-01-03",
                           "entries": ["a.com", " C.COM. ", "sub.b.com"]})
        response = service.handle_request(
            "/v1/ingest", {"Content-Type": "application/json"},
            method="POST", body=body.encode("utf-8"))
        assert response.status == 200
        payload = response.json()
        assert payload["ingested"] == {"provider": "alexa",
                                       "date": "2018-01-03", "entries": 3,
                                       "skipped_rows": 0}
        assert payload["store_version"] == service.store.version
        # The version header was captured under the same lock hold that
        # produced the body (the write-path half of the lock audit).
        assert response.headers["X-Repro-Store-Version"] == \
            str(payload["store_version"])
        # Normalised entries are served back (lowercase, dot-stripped).
        history = service.handle_request("/v1/domains/c.com/history").json()
        assert history["providers"]["alexa"]["observations"] == [
            {"date": "2018-01-03", "rank": 2}]

    def test_csv_ingest_with_query_params(self, tmp_path):
        service = QueryService(self._store(tmp_path))
        # The empty-domain row ("17,") is skipped exactly as the offline
        # parser skips it — the row filter is shared with listio.
        response = service.handle_request(
            "/v1/ingest?provider=alexa&date=2018-01-03",
            {"Content-Type": "text/csv"},
            method="POST", body=b"rank,domain\r\n1,a.com\r\n17,\r\n2,z.com\r\n")
        assert response.status == 200
        assert response.json()["ingested"]["entries"] == 2
        meta = service.handle_request("/v1/meta").json()
        assert meta["providers"]["alexa"]["days"] == 3

    def test_csv_ingest_majestic_domain_column(self, tmp_path):
        # Majestic's rank,tld,domain,... format: the domain is column 2,
        # not the trailing column (which is numeric and would otherwise
        # pass DNS validation and be interned forever).
        service = QueryService(self._store(tmp_path))
        response = service.handle_request(
            "/v1/ingest?provider=majestic&date=2018-01-01&domain_column=2",
            {"Content-Type": "text/csv"},
            method="POST",
            body=b"rank,tld,domain,refsubnets\r\n"
                 b"1,com,a.com,5000\r\n2,org,m.org,4000\r\n")
        assert response.status == 200
        history = service.handle_request("/v1/domains/m.org/history").json()
        assert history["providers"]["majestic"]["observations"] == [
            {"date": "2018-01-01", "rank": 2}]

    def test_csv_ingest_skips_junk_rows_like_the_offline_parser(self, tmp_path):
        # Downloaded lists carry junk rows; the offline parser keeps
        # going past them, so the wire must not reject the whole day —
        # but the junk is dropped *before* interning, never stored.
        service = QueryService(self._store(tmp_path))
        response = service.handle_request(
            "/v1/ingest?provider=alexa&date=2018-01-03",
            {"Content-Type": "text/csv"},
            method="POST",
            body=b"1,a.com\r\n2,bad..label\r\n3," + b"x" * 300 + b".com\r\n4,z.com\r\n")
        assert response.status == 200
        assert response.json()["ingested"] == {
            "provider": "alexa", "date": "2018-01-03",
            "entries": 2, "skipped_rows": 2}
        history = service.handle_request("/v1/domains/z.com/history").json()
        assert history["providers"]["alexa"]["observations"] == [
            {"date": "2018-01-03", "rank": 2}]

    def test_csv_ingest_rejects_headers_and_bare_lines(self, tmp_path):
        # A bare "domain" header line must not be ingested as the rank-1
        # entry (it would pass DNS validation and occupy interner id
        # space forever); ranked rows are required, as in listio.
        service = QueryService(self._store(tmp_path))
        response = service.handle_request(
            "/v1/ingest?provider=alexa&date=2018-01-03",
            {"Content-Type": "text/csv"},
            method="POST", body=b"domain\r\na.com\r\nb.com\r\n")
        assert response.status == 400
        assert "no rank,domain rows" in response.json()["error"]["message"]

    def test_json_ingest_rejects_csv_only_params(self, tmp_path):
        # provider=/date= belong to the CSV branch; on a JSON body they
        # would be silently shadowed by the body's own fields.
        service = QueryService(self._store(tmp_path))
        body = json.dumps({"provider": "alexa", "date": "2018-01-03",
                           "entries": ["a.com"]}).encode()
        response = service.handle_request(
            "/v1/ingest?date=2018-01-04", method="POST", body=body)
        assert response.status == 400
        assert "CSV ingest only" in response.json()["error"]["message"]

    def test_new_provider_via_ingest(self, tmp_path):
        service = QueryService(self._store(tmp_path))
        body = json.dumps({"provider": "fresh", "date": "2018-01-01",
                           "entries": ["a.com", "q.com"]})
        assert service.handle_request(
            "/v1/ingest", method="POST", body=body.encode()).status == 200
        meta = service.handle_request("/v1/meta").json()
        assert sorted(meta["providers"]) == ["alexa", "fresh"]
        assert meta["providers"]["fresh"]["days"] == 1

    def test_out_of_order_day_is_409(self, tmp_path):
        service = QueryService(self._store(tmp_path))
        body = json.dumps({"provider": "alexa", "date": "2018-01-02",
                           "entries": ["a.com"]})
        response = service.handle_request(
            "/v1/ingest", method="POST", body=body.encode())
        assert response.status == 409
        assert "append-only" in response.json()["error"]["message"]
        # Nothing was applied: the served state is unchanged.
        assert service.handle_request("/v1/meta").json()[
            "providers"]["alexa"]["days"] == 2

    def test_validation_errors_are_400(self, tmp_path):
        service = QueryService(self._store(tmp_path))
        bad_bodies = [
            b"",  # empty
            b"not json at all",
            json.dumps({"provider": "alexa", "date": "2018-01-03"}).encode(),
            json.dumps({"provider": "alexa", "date": "nope",
                        "entries": ["a.com"]}).encode(),
            json.dumps({"provider": "alexa", "date": "2018-01-03",
                        "entries": ["bad..label"]}).encode(),
            json.dumps({"provider": "alexa", "date": "2018-01-03",
                        "entries": ["a.com"], "surprise": True}).encode(),
        ]
        for body in bad_bodies:
            response = service.handle_request("/v1/ingest", method="POST",
                                              body=body)
            assert response.status == 400, body[:60]
            assert response.json()["error"]["status"] == 400
        # CSV without provider/date params is also a 400.
        assert service.handle_request(
            "/v1/ingest", {"Content-Type": "text/csv"},
            method="POST", body=b"1,a.com\r\n").status == 400

    def test_get_on_ingest_is_405_with_allow_post(self, tmp_path):
        service = QueryService(self._store(tmp_path))
        response = service.handle_request("/v1/ingest")
        assert response.status == 405
        assert response.headers["Allow"] == "POST"

    def test_ingest_invalidates_etags(self, tmp_path):
        service = QueryService(self._store(tmp_path))
        first = service.handle_request("/v1/meta")
        body = json.dumps({"provider": "alexa", "date": "2018-01-03",
                           "entries": ["a.com"]})
        service.handle_request("/v1/ingest", method="POST", body=body.encode())
        after = service.handle_request(
            "/v1/meta", {"If-None-Match": first.etag})
        assert after.status == 200  # stale ETag no longer matches
        assert after.etag != first.etag


class TestBatchQuery:
    def test_batch_matches_individual_gets(self, service):
        targets = ["/v1/meta", "/v1/providers/alexa/stability?top_n=50",
                   "/v1/compare?providers=alexa,majestic&top_n=50"]
        response = service.handle_request(
            "/v1/query", method="POST",
            body=json.dumps({"requests": targets}).encode())
        assert response.status == 200
        payload = response.json()
        assert payload["requests"] == len(targets)
        for item, target in zip(payload["responses"], targets):
            assert item["target"] == target
            assert item["status"] == 200
            assert item["payload"] == service.handle_request(target).json()

    def test_batch_embeds_per_target_errors(self, service):
        response = service.handle_request(
            "/v1/query", method="POST",
            body=json.dumps({"requests": ["/v1/meta", "/nope",
                                          "/v1/providers/ghost/stability"]}).encode())
        assert response.status == 200
        statuses = [item["status"] for item in response.json()["responses"]]
        assert statuses == [200, 404, 404]
        assert response.json()["responses"][1]["payload"]["error"]["status"] == 404

    def test_batch_validation(self, service):
        cases = [
            (b"[]", 400), (b"{}", 400),
            (json.dumps({"requests": []}).encode(), 400),
            (json.dumps({"requests": ["relative"]}).encode(), 400),
            (json.dumps({"requests": ["/v1/meta"], "x": 1}).encode(), 400),
            (json.dumps({"requests": ["/v1/meta"] * 101}).encode(), 400),
        ]
        for body, expected in cases:
            assert service.handle_request(
                "/v1/query", method="POST", body=body).status == expected, body[:40]

    def test_canonical_key_distinguishes_commas_from_repeats(self, service):
        # '?top_n=5&top_n=10' (valid, last wins) and '?top_n=5,10'
        # (invalid) must not share an LRU slot: warm the former, then the
        # latter must still cold-path to its 400.
        warm = service.handle_request(
            "/v1/providers/alexa/stability?top_n=5&top_n=10")
        assert warm.status == 200
        collided = service.handle_request(
            "/v1/providers/alexa/stability?top_n=5,10")
        assert collided.status == 400

    def test_get_on_query_is_405(self, service):
        response = service.handle_request("/v1/query")
        assert response.status == 405
        assert response.headers["Allow"] == "POST"


class TestProtocol:
    def test_meta(self, service, api_store, small_run):
        payload = service.handle_request("/v1/meta").json()
        assert payload["store_version"] == api_store.version
        assert sorted(payload["providers"]) == sorted(small_run.archives)
        section = payload["providers"]["alexa"]
        archive = small_run.archives["alexa"]
        assert section["days"] == len(archive)
        assert section["first_date"] == archive.dates()[0].isoformat()
        assert section["top_domain"] == archive[len(archive) - 1].entries[0]

    def test_etag_revalidation(self, service):
        first = service.handle_request("/v1/meta")
        revalidated = service.handle_request(
            "/v1/meta", {"If-None-Match": first.etag})
        assert revalidated.status == 304
        assert revalidated.body == b""
        fresh = service.handle_request("/v1/meta", {"If-None-Match": '"stale"'})
        assert fresh.status == 200

    def test_lru_hit_and_append_invalidation(self, tmp_path):
        snapshots = [
            ListSnapshot(provider="alexa",
                         date=dt.date(2018, 1, 1) + dt.timedelta(days=day),
                         entries=("a.com", "b.com", f"day{day}.com"))
            for day in range(3)]
        store = ArchiveStore(tmp_path / "s")
        store.append_archive(ListArchive.from_snapshots(snapshots[:2]))
        service = QueryService(store)
        target = "/v1/domains/a.com/history"
        assert service.handle_request(target).headers["X-Repro-Cache"] == "miss"
        assert service.handle_request(target).headers["X-Repro-Cache"] == "hit"
        store.append(snapshots[2])
        response = service.handle_request(target)
        assert response.headers["X-Repro-Cache"] == "miss"
        assert response.json()["providers"]["alexa"]["days_listed"] == 3

    def test_report_save_does_not_reload_archives(self, tmp_path):
        store = ArchiveStore(tmp_path / "s")
        store.append(ListSnapshot(provider="alexa", date=dt.date(2018, 1, 1),
                                  entries=("a.com",)))
        service = QueryService(store)
        assert service.handle_request("/v1/meta").status == 200
        loaded = service._loaded_version
        report = ScenarioReport(
            profile="late_report", description="", config={}, top_k=1,
            providers={}, intersection={"pairs": {}}, recommendations={})
        store.save_report(report)
        response = service.handle_request("/v1/scenarios/late_report/report")
        assert response.status == 200
        assert service._loaded_version == loaded  # archives stayed warm

    def test_concurrent_requests_with_tiny_lru(self, api_store, small_run):
        # Hammer a 2-slot LRU from several threads: eviction churn must
        # never corrupt the cache or leak an exception to a request.
        service = QueryService(api_store, cache_size=2)
        domains = small_run.archives["alexa"][0].entries[:6]
        targets = [f"/v1/domains/{domain}/history" for domain in domains]
        failures = []

        def hammer(seed):
            try:
                for i in range(40):
                    response = service.handle_request(
                        targets[(seed + i) % len(targets)])
                    assert response.status == 200
            except Exception as error:  # noqa: BLE001 — collected for assert
                failures.append(error)

        threads = [threading.Thread(target=hammer, args=(n,)) for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures

    def test_errors(self, service):
        assert service.handle_request("/v1/providers/nosuch/stability").status == 404
        assert service.handle_request("/nope").status == 404
        assert service.handle_request(
            "/v1/providers/alexa/stability?top_n=zero").status == 400
        assert service.handle_request(
            "/v1/providers/alexa/stability?top_n=-3").status == 400
        assert service.handle_request(
            "/v1/domains/x/history?start=notadate").status == 400
        body = service.handle_request("/v1/providers/nosuch/stability").json()
        assert body["error"]["status"] == 404

    def test_http_server_serves_identical_bytes(self, service):
        server = create_server(service)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            for target in ("/v1/meta", "/v1/providers/alexa/stability?top_n=50"):
                local = service.handle_request(target)
                with urllib.request.urlopen(
                        f"http://127.0.0.1:{port}{target}", timeout=10) as wire:
                    assert wire.status == 200
                    assert wire.read() == local.body
                    assert wire.headers["ETag"] == local.etag
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/v1/meta",
                headers={"If-None-Match":
                         service.handle_request("/v1/meta").etag})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 304
        finally:
            server.shutdown()
            server.server_close()

    def test_write_methods_rejected_with_405_and_allow(self, service):
        # The API is read-only: POST/PUT/DELETE must answer 405 with an
        # Allow header (not http.server's default 501), and the body must
        # be the usual JSON error envelope.
        server = create_server(service)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            for method, data in (("POST", b'{"attempt": "write"}'),
                                 ("PUT", b"x"), ("DELETE", None)):
                request = urllib.request.Request(
                    f"http://127.0.0.1:{port}/v1/meta", data=data, method=method)
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(request, timeout=10)
                error = excinfo.value
                assert error.code == 405, method
                assert error.headers["Allow"] == "GET, HEAD", method
                payload = json.loads(error.read().decode("utf-8"))
                assert payload["error"]["status"] == 405
                assert method in payload["error"]["message"]
            # The connection stays usable for reads after the rejection.
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/v1/meta", timeout=10) as wire:
                assert wire.status == 200
        finally:
            server.shutdown()
            server.server_close()
