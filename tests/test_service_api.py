"""Parity and protocol tests for the /v1 query API (repro.service.api).

The central assertion: every endpoint's payload is *byte-identical* to
computing the same answer directly with :mod:`repro.core` /
:mod:`repro.scenarios` on the same archives.  The expected documents here
are built independently in the tests from direct library calls — the API
must reproduce them to the byte (same floats, same key order, same JSON
layout).  The golden-marked test closes the loop against the committed
scenario fingerprints.
"""

import datetime as dt
import json
import pathlib
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.intersection import intersection_over_time
from repro.core.stability import (
    cumulative_unique_domains,
    daily_changes,
    days_in_list,
    intersection_with_reference,
    mean_daily_change,
    new_domains_per_day,
)
from repro.providers.base import ListArchive, ListSnapshot
from repro.scenarios.golden import load_golden
from repro.scenarios.profiles import profile_names
from repro.scenarios.runner import ScenarioReport, canonical_float, run_scenario
from repro.service.api import QueryService, create_server, json_bytes
from repro.service.store import ArchiveStore

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"


@pytest.fixture(scope="module")
def api_store(tmp_path_factory, small_run):
    return ArchiveStore.from_archives(tmp_path_factory.mktemp("apistore"),
                                      small_run.archives)


@pytest.fixture(scope="module")
def service(api_store):
    return QueryService(api_store)


def _probe_domains(small_run):
    alexa = small_run.archives["alexa"]
    head = alexa[0].entries[:3]
    tail = alexa[len(alexa) - 1].entries[-2:]
    return list(dict.fromkeys(head + tail)) + ["never-listed.example"]


class TestHistoryParity:
    def _expected(self, small_run, domain, top_k=None):
        sections = {}
        for provider in sorted(small_run.archives):
            archive = small_run.archives[provider]
            observations = [
                (snapshot.date, snapshot.entries.index(domain) + 1)
                for snapshot in archive if domain in snapshot.domain_set()]
            section = {
                "observations": [{"date": date.isoformat(), "rank": rank}
                                 for date, rank in observations],
                "days_listed": len(observations),
                "first_seen": observations[0][0].isoformat() if observations else None,
                "last_seen": observations[-1][0].isoformat() if observations else None,
                "best_rank": min((r for _, r in observations), default=None),
                "worst_rank": max((r for _, r in observations), default=None),
            }
            if top_k is not None:
                section["days_in_top_k"] = sum(
                    1 for _, rank in observations if rank <= top_k)
            sections[provider] = section
        payload = {"domain": domain, "providers": sections}
        if top_k is not None:
            payload["top_k"] = top_k
        return payload

    def test_byte_identical_to_archive_scan(self, service, small_run):
        for domain in _probe_domains(small_run):
            response = service.handle_request(f"/v1/domains/{domain}/history")
            assert response.status == 200
            assert response.body == json_bytes(self._expected(small_run, domain))

    def test_top_k_parameter(self, service, small_run):
        domain = small_run.archives["alexa"][0].entries[0]
        response = service.handle_request(f"/v1/domains/{domain}/history?top_k=10")
        assert response.body == json_bytes(
            self._expected(small_run, domain, top_k=10))

    def test_date_window(self, service, small_run):
        archive = small_run.archives["alexa"]
        dates = archive.dates()
        start, end = dates[2], dates[-3]
        domain = archive[0].entries[0]
        response = service.handle_request(
            f"/v1/domains/{domain}/history?providers=alexa"
            f"&start={start.isoformat()}&end={end.isoformat()}")
        observations = [
            {"date": s.date.isoformat(), "rank": s.entries.index(domain) + 1}
            for s in archive
            if start <= s.date <= end and domain in s.domain_set()]
        payload = response.json()
        assert payload["providers"]["alexa"]["observations"] == observations
        assert payload["start"] == start.isoformat()
        # Longevity stays whole-archive (the window trims observations only).
        full = [s for s in archive if domain in s.domain_set()]
        assert payload["providers"]["alexa"]["days_listed"] == len(full)


class TestStabilityParity:
    @pytest.mark.parametrize("provider", ["alexa", "umbrella", "majestic"])
    @pytest.mark.parametrize("top_n", [None, 100])
    def test_byte_identical_to_core_calls(self, service, small_run, provider, top_n):
        archive = small_run.archives[provider]
        changes = daily_changes(archive, top_n)
        mean_change = mean_daily_change(archive, top_n)
        counts = days_in_list(archive, top_n)
        always = (sum(1 for v in counts.values() if v == len(archive))
                  / len(counts)) if counts else 0.0
        list_size = len(archive[0])
        head = list_size if top_n is None else min(top_n, list_size)
        expected = {
            "provider": provider,
            "top_n": top_n,
            "days": len(archive),
            "list_size": list_size,
            "mean_daily_change": canonical_float(mean_change),
            "churn_fraction": canonical_float(mean_change / max(1, head)),
            "daily_changes": {d.isoformat(): c
                              for d, c in sorted(changes.items())},
            "new_per_day": {d.isoformat(): c for d, c in
                            sorted(new_domains_per_day(archive, top_n).items())},
            "cumulative_unique": {d.isoformat(): c for d, c in
                                  sorted(cumulative_unique_domains(archive, top_n).items())},
            "distinct_domains": len(counts),
            "always_listed_share": canonical_float(always),
            "reference_decay": {
                str(offset): canonical_float(value)
                for offset, value in sorted(intersection_with_reference(
                    archive, reference_days=range(7), top_n=top_n).items())},
        }
        query = "" if top_n is None else f"?top_n={top_n}"
        response = service.handle_request(f"/v1/providers/{provider}/stability{query}")
        assert response.status == 200
        assert response.body == json_bytes(expected)


class TestCompareParity:
    def test_byte_identical_to_intersection_over_time(self, service, small_run):
        names = ["alexa", "majestic", "umbrella"]
        series = intersection_over_time(
            {name: small_run.archives[name] for name in names}, top_n=100)
        per_pair, daily = {}, {}
        for date, matrix in series.items():
            row = {"&".join(pair): count for pair, count in matrix.items()}
            daily[date.isoformat()] = row
            for pair, count in row.items():
                per_pair.setdefault(pair, []).append(count)
        expected = {
            "providers": names,
            "top_n": 100,
            "days": len(series),
            "pairs": {pair: {"mean": canonical_float(sum(c) / len(c)),
                             "min": min(c), "max": max(c)}
                      for pair, c in sorted(per_pair.items())},
            "series": daily,
        }
        response = service.handle_request(
            "/v1/compare?providers=alexa,majestic,umbrella&top_n=100")
        assert response.body == json_bytes(expected)

    def test_needs_two_providers(self, service):
        assert service.handle_request("/v1/compare?providers=alexa").status == 400


class TestScenarioReports:
    def test_served_bytes_equal_direct_report(self, tmp_path, small_run):
        # The stored document is the exact to_json() of the direct call,
        # so the endpoint serves byte-identical scenario numbers.
        report = ScenarioReport(
            profile="api_unit", description="unit fixture",
            config={"n_days": 3}, top_k=10,
            providers={"alexa": {"stability": {"churn_fraction": 0.01}}},
            intersection={"pairs": {}}, recommendations={})
        store = ArchiveStore(tmp_path / "s")
        store.save_report(report)
        response = QueryService(store).handle_request("/v1/scenarios/api_unit/report")
        assert response.status == 200
        assert response.body == report.to_bytes()
        assert ScenarioReport.from_json(
            response.body.decode("utf-8")).to_dict() == report.to_dict()

    def test_unknown_report_404(self, service):
        response = service.handle_request("/v1/scenarios/nosuch/report")
        assert response.status == 404

    def test_path_escaping_profile_is_400_not_crash(self, service):
        for target in ("/v1/scenarios/.hidden/report",
                       "/v1/scenarios/%2e%2e/report"):
            response = service.handle_request(target)
            assert response.status == 400, target
            assert response.json()["error"]["status"] == 400


@pytest.mark.golden
class TestScenarioReportGoldenParity:
    def test_served_reports_match_committed_goldens(self, tmp_path):
        # Store every built-in scenario's report, serve it, reconstruct
        # the fingerprint from the served bytes and compare against the
        # committed goldens: the API path cannot drift from the library.
        store = ArchiveStore(tmp_path / "s")
        service = QueryService(store)
        for name in profile_names():
            report = run_scenario(name)
            store.save_report(report)
            response = service.handle_request(f"/v1/scenarios/{name}/report")
            assert response.status == 200
            assert response.body == report.to_bytes()
            served = ScenarioReport.from_json(response.body.decode("utf-8"))
            assert served.fingerprint() == load_golden(GOLDEN_DIR, name), name


class TestProtocol:
    def test_meta(self, service, api_store, small_run):
        payload = service.handle_request("/v1/meta").json()
        assert payload["store_version"] == api_store.version
        assert sorted(payload["providers"]) == sorted(small_run.archives)
        section = payload["providers"]["alexa"]
        archive = small_run.archives["alexa"]
        assert section["days"] == len(archive)
        assert section["first_date"] == archive.dates()[0].isoformat()
        assert section["top_domain"] == archive[len(archive) - 1].entries[0]

    def test_etag_revalidation(self, service):
        first = service.handle_request("/v1/meta")
        revalidated = service.handle_request(
            "/v1/meta", {"If-None-Match": first.etag})
        assert revalidated.status == 304
        assert revalidated.body == b""
        fresh = service.handle_request("/v1/meta", {"If-None-Match": '"stale"'})
        assert fresh.status == 200

    def test_lru_hit_and_append_invalidation(self, tmp_path):
        snapshots = [
            ListSnapshot(provider="alexa",
                         date=dt.date(2018, 1, 1) + dt.timedelta(days=day),
                         entries=("a.com", "b.com", f"day{day}.com"))
            for day in range(3)]
        store = ArchiveStore(tmp_path / "s")
        store.append_archive(ListArchive.from_snapshots(snapshots[:2]))
        service = QueryService(store)
        target = "/v1/domains/a.com/history"
        assert service.handle_request(target).headers["X-Repro-Cache"] == "miss"
        assert service.handle_request(target).headers["X-Repro-Cache"] == "hit"
        store.append(snapshots[2])
        response = service.handle_request(target)
        assert response.headers["X-Repro-Cache"] == "miss"
        assert response.json()["providers"]["alexa"]["days_listed"] == 3

    def test_report_save_does_not_reload_archives(self, tmp_path):
        store = ArchiveStore(tmp_path / "s")
        store.append(ListSnapshot(provider="alexa", date=dt.date(2018, 1, 1),
                                  entries=("a.com",)))
        service = QueryService(store)
        assert service.handle_request("/v1/meta").status == 200
        loaded = service._loaded_version
        report = ScenarioReport(
            profile="late_report", description="", config={}, top_k=1,
            providers={}, intersection={"pairs": {}}, recommendations={})
        store.save_report(report)
        response = service.handle_request("/v1/scenarios/late_report/report")
        assert response.status == 200
        assert service._loaded_version == loaded  # archives stayed warm

    def test_concurrent_requests_with_tiny_lru(self, api_store, small_run):
        # Hammer a 2-slot LRU from several threads: eviction churn must
        # never corrupt the cache or leak an exception to a request.
        service = QueryService(api_store, cache_size=2)
        domains = small_run.archives["alexa"][0].entries[:6]
        targets = [f"/v1/domains/{domain}/history" for domain in domains]
        failures = []

        def hammer(seed):
            try:
                for i in range(40):
                    response = service.handle_request(
                        targets[(seed + i) % len(targets)])
                    assert response.status == 200
            except Exception as error:  # noqa: BLE001 — collected for assert
                failures.append(error)

        threads = [threading.Thread(target=hammer, args=(n,)) for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures

    def test_errors(self, service):
        assert service.handle_request("/v1/providers/nosuch/stability").status == 404
        assert service.handle_request("/nope").status == 404
        assert service.handle_request(
            "/v1/providers/alexa/stability?top_n=zero").status == 400
        assert service.handle_request(
            "/v1/providers/alexa/stability?top_n=-3").status == 400
        assert service.handle_request(
            "/v1/domains/x/history?start=notadate").status == 400
        body = service.handle_request("/v1/providers/nosuch/stability").json()
        assert body["error"]["status"] == 404

    def test_http_server_serves_identical_bytes(self, service):
        server = create_server(service)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            for target in ("/v1/meta", "/v1/providers/alexa/stability?top_n=50"):
                local = service.handle_request(target)
                with urllib.request.urlopen(
                        f"http://127.0.0.1:{port}{target}", timeout=10) as wire:
                    assert wire.status == 200
                    assert wire.read() == local.body
                    assert wire.headers["ETag"] == local.etag
            request = urllib.request.Request(
                f"http://127.0.0.1:{port}/v1/meta",
                headers={"If-None-Match":
                         service.handle_request("/v1/meta").etag})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 304
        finally:
            server.shutdown()
            server.server_close()

    def test_write_methods_rejected_with_405_and_allow(self, service):
        # The API is read-only: POST/PUT/DELETE must answer 405 with an
        # Allow header (not http.server's default 501), and the body must
        # be the usual JSON error envelope.
        server = create_server(service)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            for method, data in (("POST", b'{"attempt": "write"}'),
                                 ("PUT", b"x"), ("DELETE", None)):
                request = urllib.request.Request(
                    f"http://127.0.0.1:{port}/v1/meta", data=data, method=method)
                with pytest.raises(urllib.error.HTTPError) as excinfo:
                    urllib.request.urlopen(request, timeout=10)
                error = excinfo.value
                assert error.code == 405, method
                assert error.headers["Allow"] == "GET, HEAD", method
                payload = json.loads(error.read().decode("utf-8"))
                assert payload["error"]["status"] == 405
                assert method in payload["error"]["message"]
            # The connection stays usable for reads after the rejection.
            with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/v1/meta", timeout=10) as wire:
                assert wire.status == 200
        finally:
            server.shutdown()
            server.server_close()
