"""Property-based tests for the shared retry/backoff/breaker policy.

The replica tailer and the ingest client both lean on these invariants:
delays never exceed the cap, expected delay grows with attempt count,
a seeded policy is fully deterministic, and the deadline budget is a
hard bound — no sleep ends past it (driven with a fake clock, so the
suite never actually sleeps).
"""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.retry import (
    CircuitBreaker,
    CircuitOpenError,
    RetryExhaustedError,
    RetryPolicy,
    backoff_delays,
    call_with_retry,
)


class FakeClock:
    """Virtual time: ``sleep`` advances ``now`` instantly."""

    def __init__(self) -> None:
        self.now = 0.0
        self.sleeps: list[float] = []

    def __call__(self) -> float:
        return self.now

    def sleep(self, seconds: float) -> None:
        assert seconds >= 0
        self.sleeps.append(seconds)
        self.now += seconds


_policies = st.builds(
    RetryPolicy,
    max_attempts=st.integers(min_value=1, max_value=12),
    base_delay=st.floats(min_value=0.0, max_value=0.5,
                         allow_nan=False, allow_infinity=False),
    max_delay=st.floats(min_value=0.5, max_value=10.0,
                        allow_nan=False, allow_infinity=False),
    jitter=st.sampled_from(["decorrelated", "none"]),
)


class TestBackoffProperties:
    @settings(max_examples=60, deadline=None)
    @given(policy=_policies, seed=st.integers(0, 2**32 - 1))
    def test_delays_bounded_by_cap(self, policy, seed):
        delays = itertools.islice(
            backoff_delays(policy, random.Random(seed)), 50)
        for delay in delays:
            assert 0.0 <= delay <= policy.max_delay

    @settings(max_examples=40, deadline=None)
    @given(policy=_policies, seed=st.integers(0, 2**32 - 1))
    def test_deterministic_under_seed(self, policy, seed):
        first = list(itertools.islice(
            backoff_delays(policy, random.Random(seed)), 30))
        second = list(itertools.islice(
            backoff_delays(policy, random.Random(seed)), 30))
        assert first == second

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_monotone_in_expectation(self, seed):
        """Mean delay at attempt k+1 >= mean at attempt k (pre-cap region).

        Decorrelated jitter draws uniform(base, 3*prev); averaged over
        many seeded sequences the per-attempt mean must not shrink while
        the cap is not yet binding.
        """
        policy = RetryPolicy(max_attempts=6, base_delay=0.1, max_delay=1e9)
        rng = random.Random(seed)
        columns = [[] for _ in range(6)]
        for _ in range(300):
            sequence = backoff_delays(policy, rng)
            for k in range(6):
                columns[k].append(next(sequence))
        means = [sum(c) / len(c) for c in columns]
        for earlier, later in zip(means, means[1:]):
            assert later >= earlier * 0.95  # tolerate sampling noise

    def test_no_jitter_is_capped_exponential(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter="none")
        delays = list(itertools.islice(backoff_delays(policy), 6))
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.8, 1.0, 1.0])


class TestDeadline:
    @settings(max_examples=60, deadline=None)
    @given(deadline=st.floats(min_value=0.01, max_value=5.0),
           attempts=st.integers(min_value=1, max_value=10),
           seed=st.integers(0, 2**32 - 1))
    def test_deadline_never_exceeded(self, deadline, attempts, seed):
        clock = FakeClock()
        policy = RetryPolicy(max_attempts=attempts, base_delay=0.05,
                             max_delay=2.0, deadline=deadline)
        calls = []

        def always_fails():
            calls.append(clock.now)
            raise OSError("nope")

        with pytest.raises(RetryExhaustedError):
            call_with_retry(always_fails, policy, rng=random.Random(seed),
                            clock=clock, sleep=clock.sleep)
        # The budget is hard: no sleep ended past it, and no attempt
        # started after it ran out.
        assert clock.now <= deadline + 1e-9
        assert all(start < deadline for start in calls)

    def test_success_needs_no_sleep(self):
        clock = FakeClock()
        result = call_with_retry(lambda: 42, RetryPolicy(),
                                 clock=clock, sleep=clock.sleep)
        assert result == 42
        assert clock.sleeps == []


class TestCallWithRetry:
    def test_retries_then_succeeds(self):
        clock = FakeClock()
        attempts = iter([OSError("a"), OSError("b"), "done"])

        def flaky():
            outcome = next(attempts)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        result = call_with_retry(flaky, RetryPolicy(max_attempts=5),
                                 rng=random.Random(0),
                                 clock=clock, sleep=clock.sleep)
        assert result == "done"
        assert len(clock.sleeps) == 2

    def test_exhaustion_chains_last_error(self):
        clock = FakeClock()
        with pytest.raises(RetryExhaustedError) as excinfo:
            call_with_retry(lambda: (_ for _ in ()).throw(OSError("disk")),
                            RetryPolicy(max_attempts=3),
                            rng=random.Random(0),
                            clock=clock, sleep=clock.sleep)
        assert isinstance(excinfo.value.last_error, OSError)
        assert isinstance(excinfo.value.__cause__, OSError)

    def test_non_retryable_propagates_immediately(self):
        calls = []

        def fails():
            calls.append(1)
            raise KeyError("not retryable")

        with pytest.raises(KeyError):
            call_with_retry(fails, RetryPolicy(max_attempts=5),
                            retry_on=(OSError,), sleep=lambda s: None)
        assert len(calls) == 1

    def test_on_retry_observes_each_backoff(self):
        clock = FakeClock()
        seen = []
        with pytest.raises(RetryExhaustedError):
            call_with_retry(lambda: (_ for _ in ()).throw(OSError()),
                            RetryPolicy(max_attempts=4),
                            rng=random.Random(1), clock=clock,
                            sleep=clock.sleep,
                            on_retry=lambda a, e, d: seen.append((a, d)))
        assert [a for a, _ in seen] == [1, 2, 3]
        assert [d for _, d in seen] == clock.sleeps


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10.0,
                                 clock=clock)
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_half_open_probe_closes_on_success(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0,
                                 clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.now += 5.0
        assert breaker.state == "half-open"
        assert breaker.allow()       # the single probe
        assert not breaker.allow()   # held back while probing
        breaker.record_success()
        assert breaker.state == "closed"

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=5.0,
                                 clock=clock)
        breaker.record_failure()
        clock.now += 5.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_call_with_retry_fails_fast_when_open(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout=100.0,
                                 clock=clock)
        calls = []

        def fails():
            calls.append(1)
            raise OSError("down")

        with pytest.raises(RetryExhaustedError):
            call_with_retry(fails, RetryPolicy(max_attempts=2),
                            rng=random.Random(0), clock=clock,
                            sleep=clock.sleep, breaker=breaker)
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            call_with_retry(fails, RetryPolicy(max_attempts=2),
                            rng=random.Random(0), clock=clock,
                            sleep=clock.sleep, breaker=breaker)
        assert len(calls) == 2  # the open circuit never touched the callee


class TestPolicyValidation:
    def test_rejects_bad_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_rejects_inverted_delays(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=2.0, max_delay=1.0)

    def test_rejects_unknown_jitter(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter="gaussian")
