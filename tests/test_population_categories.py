"""Tests for the domain category profiles."""

import pytest

from repro.population.categories import (
    CATEGORY_PROFILES,
    DomainCategory,
    validate_profiles,
)


class TestProfiles:
    def test_every_category_has_a_profile(self):
        assert set(CATEGORY_PROFILES) == set(DomainCategory)

    def test_shares_sum_to_one(self):
        validate_profiles()
        total = sum(p.share_of_population for p in CATEGORY_PROFILES.values())
        assert total == pytest.approx(1.0)

    def test_trackers_are_dns_heavy_and_web_light(self):
        tracker = CATEGORY_PROFILES[DomainCategory.TRACKER]
        assert tracker.dns_factor > 1.5
        assert tracker.web_factor < 0.1
        assert tracker.blacklisted
        assert tracker.mobile

    def test_leisure_weekend_heavy(self):
        assert CATEGORY_PROFILES[DomainCategory.LEISURE].weekend_factor > 1.2

    def test_office_weekday_heavy(self):
        assert CATEGORY_PROFILES[DomainCategory.OFFICE].weekend_factor < 0.7

    def test_mobile_api_flagged_mobile_not_blacklisted(self):
        profile = CATEGORY_PROFILES[DomainCategory.MOBILE_API]
        assert profile.mobile
        assert not profile.blacklisted

    def test_long_tail_dominates_population(self):
        tail = (CATEGORY_PROFILES[DomainCategory.SMALL_BUSINESS].share_of_population
                + CATEGORY_PROFILES[DomainCategory.PERSONAL].share_of_population)
        assert tail > 0.5

    def test_popular_categories_have_boost(self):
        assert CATEGORY_PROFILES[DomainCategory.PORTAL].popularity_boost > 10
        assert CATEGORY_PROFILES[DomainCategory.SMALL_BUSINESS].popularity_boost == pytest.approx(1.0)

    def test_factors_non_negative(self):
        for profile in CATEGORY_PROFILES.values():
            assert profile.web_factor >= 0
            assert profile.dns_factor >= 0
            assert profile.backlink_factor >= 0
            assert profile.weekend_factor > 0

    def test_category_str(self):
        assert str(DomainCategory.TRACKER) == "tracker"
