"""Tests for the scenario profiles and the scenario runner.

The acceptance bar of the subsystem: ``paper_realistic`` really sits in
the paper's ~1% daily churn regime, every scenario report is
byte-identical across independent runs with the same seed, and the
per-profile simulation cache returns the same run object without staleness
when a profile name is reused with a different configuration.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.population.config import SimulationConfig
from repro.providers.simulation import clear_simulation_cache, run_profile
from repro.scenarios import (
    PROFILES,
    InjectionSpec,
    ScenarioReport,
    ScenarioRunner,
    SimulationProfile,
    get_profile,
    profile_names,
    run_scenario,
)


@pytest.fixture(scope="module")
def paper_report() -> ScenarioReport:
    return run_scenario("paper_realistic")


class TestProfiles:
    def test_registry_contains_the_five_presets(self):
        assert set(profile_names()) == {
            "paper_realistic", "high_churn_stress", "alexa_change_2018",
            "weekend_heavy", "manipulated",
        }

    def test_presets_are_frozen(self):
        profile = get_profile("paper_realistic")
        with pytest.raises(dataclasses.FrozenInstanceError):
            profile.name = "other"  # type: ignore[misc]

    def test_unknown_name_reports_known_profiles(self):
        with pytest.raises(KeyError, match="paper_realistic"):
            get_profile("nope")

    def test_with_config_derives_a_distinct_name(self):
        profile = get_profile("paper_realistic")
        derived = profile.with_config(n_days=7)
        assert derived.name != profile.name
        assert derived.config.n_days == 7
        # The frozen preset is untouched.
        assert get_profile("paper_realistic").config.n_days == profile.config.n_days

    def test_injection_outside_period_rejected(self):
        config = SimulationConfig.small(n_days=7)
        with pytest.raises(ValueError, match="outside"):
            SimulationProfile(name="x", description="", config=config,
                              injections=(InjectionSpec(
                                  fqdn="a.example.org", n_clients=1,
                                  queries_per_client=1.0, day=7),))

    def test_profile_top_k_defaults_to_config(self):
        profile = get_profile("paper_realistic")
        assert profile.top_k == profile.config.top_k
        custom = dataclasses.replace(profile, name="x", analysis_top_k=50)
        assert custom.top_k == 50

    def test_alexa_change_profile_switches_mid_period(self):
        config = get_profile("alexa_change_2018").config
        assert config.alexa_change_day is not None
        assert 0 < config.alexa_change_day < config.n_days


class TestPaperRealisticRegime:
    def test_mean_daily_churn_is_about_one_percent(self, paper_report):
        fractions = [section["stability"]["churn_fraction"]
                     for section in paper_report.providers.values()]
        mean_churn = sum(fractions) / len(fractions)
        assert 0.005 <= mean_churn <= 0.02, fractions

    def test_every_list_is_calm(self, paper_report):
        for name, section in paper_report.providers.items():
            assert section["stability"]["churn_fraction"] <= 0.03, name

    def test_rank_correlation_is_very_strong(self, paper_report):
        for name, section in paper_report.providers.items():
            taus = section["rank_dynamics"]["tau_day_to_day"]
            assert taus["mean"] >= 0.9, name
        # The web/backlink lists are almost perfectly correlated day to
        # day; the resolver list stays the most volatile even when calm.
        for name in ("alexa", "majestic"):
            taus = paper_report.providers[name]["rank_dynamics"]["tau_day_to_day"]
            assert taus["strong_share"] >= 0.9, name

    def test_much_calmer_than_the_stress_profile(self, paper_report):
        stress = run_scenario("high_churn_stress")
        for name in ("alexa", "umbrella"):
            calm = paper_report.providers[name]["stability"]["churn_fraction"]
            wild = stress.providers[name]["stability"]["churn_fraction"]
            assert wild > 5 * calm, (name, calm, wild)


class TestScenarioRegimes:
    def test_alexa_change_splits_the_period(self):
        report = run_scenario("alexa_change_2018")
        changes = report.providers["alexa"]["stability"]["daily_changes"]
        change_day = report.config["alexa_change_day"]
        dates = sorted(changes)
        before = [changes[d] for d in dates[: change_day - 1]]
        after = [changes[d] for d in dates[change_day - 1:]]
        assert sum(after) / len(after) > 5 * (sum(before) / len(before) or 1)

    def test_weekend_heavy_amplifies_weekly_pattern(self):
        heavy = run_scenario("weekend_heavy")
        calm = run_scenario("paper_realistic")
        assert (heavy.providers["alexa"]["weekly"]["ks_mean"]
                > calm.providers["alexa"]["weekly"]["ks_mean"])

    def test_manipulated_reproduces_probes_over_volume(self):
        report = run_scenario("manipulated")
        ranks = {fqdn: outcome["rank"]
                 for fqdn, outcome in report.manipulation.items()}
        many_probes = ranks["rank-injection-a.example-measurement.org"]
        many_queries = ranks["rank-injection-b.example-measurement.org"]
        assert many_probes is not None and many_queries is not None
        # 10k probes at 1 query/day beat 1k probes at 100 queries/day.
        assert many_probes < many_queries


class TestScenarioReport:
    def test_serialisation_round_trip(self, paper_report):
        restored = ScenarioReport.from_json(paper_report.to_json())
        assert restored == paper_report
        assert restored.to_json() == paper_report.to_json()

    def test_byte_identical_across_fresh_runs(self):
        first = ScenarioRunner("paper_realistic", use_cache=False).run()
        clear_simulation_cache()
        second = ScenarioRunner("paper_realistic", use_cache=False).run()
        assert first.to_json() == second.to_json()
        assert first.fingerprint() == second.fingerprint()

    def test_fingerprint_is_json_clean_and_compact(self, paper_report):
        import json

        fingerprint = paper_report.fingerprint()
        text = json.dumps(fingerprint, sort_keys=True)
        assert json.loads(text) == fingerprint
        assert len(text) < 10_000

    def test_report_covers_the_full_battery(self, paper_report):
        for section in paper_report.providers.values():
            assert {"stability", "rank_dynamics", "weekly", "head_sample"} <= set(section)
        assert paper_report.intersection["pairs"]
        assert set(paper_report.recommendations) == set(paper_report.providers)

    def test_recommendations_flag_the_volatile_regimes(self):
        stress = run_scenario("high_churn_stress")
        # A >5%-churn list measured longitudinally must not raise criticals
        # (the plan measures on every archive day), but the calm profile
        # passes outright as well — both regimes produce a clean plan.
        for section in stress.recommendations.values():
            assert section["passes"]


class TestProfileRunCache:
    def test_same_profile_returns_same_run(self):
        profile = get_profile("paper_realistic")
        assert run_profile(profile) is run_profile(profile)

    def test_reused_name_with_new_config_is_not_stale(self):
        profile = get_profile("paper_realistic")
        run_profile(profile)
        shadow = dataclasses.replace(profile, config=SimulationConfig.small(n_days=3))
        other = run_profile(shadow)
        assert other.config == shadow.config
        # And the original profile still resolves to its own configuration.
        assert run_profile(profile).config == profile.config

    def test_uncached_run_is_fresh(self):
        profile = dataclasses.replace(get_profile("paper_realistic"), name="fresh-test",
                                      config=SimulationConfig.small(n_days=2))
        first = run_profile(profile, use_cache=False)
        second = run_profile(profile, use_cache=False)
        assert first is not second
