"""Tests for the synthetic Internet generator."""

import numpy as np
import pytest

from repro.dns.records import RecordType
from repro.population.categories import DomainCategory
from repro.population.config import SimulationConfig
from repro.population.internet import SyntheticInternet


@pytest.fixture(scope="module")
def tiny_internet() -> SyntheticInternet:
    return SyntheticInternet(SimulationConfig.small(n_domains=1_200, list_size=300, top_k=50,
                                                    new_domains_per_day=5, n_days=7))


class TestGeneration:
    def test_population_size(self, tiny_internet):
        config = tiny_internet.config
        assert len(tiny_internet) == config.total_domains()

    def test_names_unique(self, tiny_internet):
        names = [d.name for d in tiny_internet.domains]
        assert len(names) == len(set(names))

    def test_deterministic_for_seed(self):
        config = SimulationConfig.small(n_domains=400, list_size=100, top_k=20, n_days=3,
                                        new_domains_per_day=2)
        a = SyntheticInternet(config)
        b = SyntheticInternet(config)
        assert [d.name for d in a.domains] == [d.name for d in b.domains]
        assert [d.ipv6_enabled for d in a.domains] == [d.ipv6_enabled for d in b.domains]

    def test_different_seeds_differ(self):
        base = SimulationConfig.small(n_domains=400, list_size=100, top_k=20, n_days=3,
                                      new_domains_per_day=2)
        other = SimulationConfig.small(n_domains=400, list_size=100, top_k=20, n_days=3,
                                       new_domains_per_day=2, seed=999)
        a = SyntheticInternet(base)
        b = SyntheticInternet(other)
        assert [d.name for d in a.domains] != [d.name for d in b.domains]

    def test_seed_domains_present_and_popular(self, tiny_internet):
        google = tiny_internet.domain_by_name("google.com")
        assert google is not None
        weights = np.array([d.base_weight for d in tiny_internet.domains])
        assert google.base_weight == pytest.approx(weights.max())

    def test_table4_domains_present(self, tiny_internet):
        for name in ("netflix.com", "jetblue.com", "mdc.edu", "puresight.com"):
            assert tiny_internet.domain_by_name(name) is not None

    def test_birth_days_within_period(self, tiny_internet):
        config = tiny_internet.config
        births = [d.birth_day for d in tiny_internet.domains]
        assert min(births) == 0
        assert max(births) <= config.n_days
        assert sum(1 for b in births if b == 0) == config.n_domains

    def test_some_domain_aliases_exist(self, tiny_internet):
        slds = {}
        for domain in tiny_internet.domains:
            slds.setdefault(domain.sld, set()).add(domain.tld)
        multi_tld = [sld for sld, tlds in slds.items() if len(tlds) > 1]
        assert multi_tld, "expected some SLDs to exist under multiple TLDs"

    def test_dead_domains_do_not_exist(self, tiny_internet):
        for domain in tiny_internet.domains:
            if domain.dead:
                assert not domain.exists


class TestCorrelations:
    def test_adoption_rises_with_popularity(self, tiny_internet):
        domains = tiny_internet.domains
        order = sorted(domains, key=lambda d: d.base_weight, reverse=True)
        head = order[: len(order) // 10]
        tail = order[len(order) // 2:]
        for attribute in ("ipv6_enabled", "tls_enabled", "http2_enabled"):
            head_share = np.mean([getattr(d, attribute) for d in head])
            tail_share = np.mean([getattr(d, attribute) for d in tail])
            assert head_share > tail_share, attribute

    def test_hsts_requires_tls(self, tiny_internet):
        for domain in tiny_internet.domains:
            if domain.hsts_enabled:
                assert domain.tls_enabled

    def test_ipv6_address_only_when_enabled(self, tiny_internet):
        for domain in tiny_internet.domains:
            assert (domain.ipv6 is not None) == domain.ipv6_enabled

    def test_cdn_cname_only_for_cdn_providers(self, tiny_internet):
        for domain in tiny_internet.domains:
            if domain.cdn_provider is not None:
                assert domain.cdn_cname is not None
                assert domain.provider.cdn_provider == domain.cdn_provider

    def test_tracker_domains_flagged(self, tiny_internet):
        trackers = [d for d in tiny_internet.domains if d.category is DomainCategory.TRACKER]
        assert trackers
        assert all(d.blacklisted and d.mobile for d in trackers)


class TestFqdnCatalogue:
    def test_unique_fqdns(self, tiny_internet):
        fqdns = [f.fqdn for f in tiny_internet.fqdns]
        assert len(fqdns) == len(set(fqdns))

    def test_catalogue_contains_base_domains_and_subdomains(self, tiny_internet):
        depths = {f.depth for f in tiny_internet.fqdns}
        assert 0 in depths
        assert 1 in depths
        assert max(depths) >= 2

    def test_junk_names_have_no_parent_and_do_not_exist(self, tiny_internet):
        junk = [f for f in tiny_internet.fqdns if f.domain_index < 0]
        assert junk
        assert all(not f.exists for f in junk)

    def test_weights_align_with_catalogue(self, tiny_internet):
        assert len(tiny_internet.fqdn_weights()) == len(tiny_internet.fqdns)
        assert (tiny_internet.fqdn_weights() >= 0).all()

    def test_discontinued_service_included(self, tiny_internet):
        names = {f.fqdn for f in tiny_internet.fqdns}
        assert "teredo.ipv6.microsoft.com" in names


class TestZoneAndHosts:
    def test_existing_domains_resolve(self, tiny_internet):
        existing = [d for d in tiny_internet.domains if d.exists][:50]
        for domain in existing:
            response = tiny_internet.zone.query(domain.name, RecordType.A)
            assert not response.is_nxdomain
            assert response.answers

    def test_nonexisting_domains_nxdomain(self, tiny_internet):
        missing = [d for d in tiny_internet.domains if not d.exists][:20]
        assert missing
        for domain in missing:
            assert tiny_internet.zone.query(domain.name, RecordType.A).is_nxdomain

    def test_caa_records_match_flag(self, tiny_internet):
        with_caa = [d for d in tiny_internet.domains if d.caa_enabled][:20]
        for domain in with_caa:
            records = tiny_internet.zone.records(domain.name, RecordType.CAA)
            assert records and records[0].rdata.caa_tag == "issue"

    def test_cdn_domains_have_www_cname(self, tiny_internet):
        cdn_domains = [d for d in tiny_internet.domains if d.cdn_cname][:20]
        assert cdn_domains
        for domain in cdn_domains:
            records = tiny_internet.zone.records(f"www.{domain.name}", RecordType.CNAME)
            assert records

    def test_hosts_only_for_existing_domains(self, tiny_internet):
        for domain in tiny_internet.domains[:200]:
            host = tiny_internet.hosts.lookup(domain.name)
            if domain.exists:
                assert host is not None
                assert host.tls_enabled == domain.tls_enabled
            else:
                assert host is None

    def test_addresses_announced_in_asdb(self, tiny_internet):
        for domain in [d for d in tiny_internet.domains if d.exists][:50]:
            origin = tiny_internet.asdb.origin(domain.ipv4)
            assert origin is not None
            assert origin.asn == domain.provider.asn

    def test_popularity_percentile_bounds(self, tiny_internet):
        values = [tiny_internet.popularity_percentile(i) for i in range(0, len(tiny_internet), 97)]
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_active_indices_grow_over_time(self, tiny_internet):
        early = len(tiny_internet.active_indices(0))
        late = len(tiny_internet.active_indices(tiny_internet.config.n_days))
        assert late > early

    def test_com_net_org_subset(self, tiny_internet):
        subset = tiny_internet.com_net_org_domains()
        assert subset
        assert all(d.tld in ("com", "net", "org") for d in subset)
