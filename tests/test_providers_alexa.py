"""Tests for the Alexa-style provider."""

import numpy as np
import pytest

from repro.providers.alexa import AlexaProvider


class TestSnapshots:
    def test_full_list_size(self, small_run):
        snapshot = small_run.alexa[0]
        assert len(snapshot) == small_run.config.list_size

    def test_entries_are_base_domains(self, small_run, internet):
        # Alexa contains almost exclusively base domains (Table 2).
        names = {d.name for d in internet.domains}
        snapshot = small_run.alexa[-1]
        assert all(entry in names for entry in snapshot.entries)

    def test_head_contains_seed_domains(self, small_run):
        top10 = set(small_run.alexa[-1].entries[:10])
        assert "google.com" in top10
        assert "facebook.com" in top10

    def test_snapshot_dates_follow_config(self, small_run):
        assert small_run.alexa[0].date == small_run.config.date_of(0)

    def test_deterministic(self, small_run, internet, traffic):
        provider = AlexaProvider(internet, traffic, config=small_run.config)
        again = provider.snapshot(3)
        assert again.entries == small_run.alexa[3].entries

    def test_nonexistent_domains_never_listed(self, small_run, internet):
        missing = {d.name for d in internet.domains if not d.exists}
        listed = small_run.alexa[-1].domain_set()
        assert not (missing & listed)


class TestWindowChange:
    def test_effective_window(self, small_run, internet, traffic):
        provider = AlexaProvider(internet, traffic, change_day=9, config=small_run.config)
        assert provider.effective_window(0) == small_run.config.alexa_window_days
        assert provider.effective_window(9) == 1
        assert provider.effective_window(12) == 1

    def test_change_day_defaults_to_config(self, internet, traffic, small_config):
        provider = AlexaProvider(internet, traffic, config=small_config)
        assert provider.change_day == small_config.alexa_change_day

    def test_change_can_be_disabled_explicitly(self, internet, traffic, small_config):
        provider = AlexaProvider(internet, traffic, change_day=None, config=small_config)
        assert provider.change_day is None
        assert provider.effective_window(small_config.n_days - 1) == provider.window_days

    def test_churn_increases_after_change(self, small_run):
        snapshots = small_run.alexa.snapshots()
        change_day = small_run.config.alexa_change_day
        churn = [len(a.domain_set() - b.domain_set()) / len(a)
                 for a, b in zip(snapshots, snapshots[1:])]
        pre = np.mean(churn[1:change_day - 1])
        post = np.mean(churn[change_day:])
        assert post > 3 * pre

    def test_windowed_score_shape(self, small_run, internet, traffic):
        provider = AlexaProvider(internet, traffic, config=small_run.config)
        scores = provider.windowed_score(5)
        assert len(scores) == len(internet.domains)
        assert (scores >= 0).all()

    def test_invalid_panel_factor_rejected(self, internet, traffic, small_config):
        with pytest.raises(ValueError):
            AlexaProvider(internet, traffic, post_change_panel_factor=0.0, config=small_config)
