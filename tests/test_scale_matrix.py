"""The scale-preset test matrix: one oracle suite, run at named sizes.

Every test here is written against a :class:`~repro.scale.ScaleConfig`
and parameterised over presets, so the *same* store/index/API oracles
that run on fixture-sized corpora in tier-1 also run — behind the
``scale`` marker (``make test-scale``) — on the 100k-entry
``paper_bench`` corpus, where chunk-granularity and accidental
O(day)-materialisation bugs actually surface.  The unparameterised
classes at the bottom pin the preset registry itself: the values the
CLI's ``--tiny`` historically meant, the synthetic generator's
determinism, and the refusal to *simulate* synthetic-only scales.
"""

import random
import tracemalloc
from array import array
from dataclasses import replace
from types import SimpleNamespace

import pytest

import repro.service.store as store_module
from repro.core.stability import mean_daily_change
from repro.interning import default_interner
from repro.scale import (ScaleConfig, ScaleError, get_scale, scale_names,
                         synthetic_archive, synthetic_archives, universe_ids)
from repro.scenarios.profiles import get_profile
from repro.service.api import QueryService
from repro.service.index import DomainIndex
from repro.service.store import ArchiveStore

PRESETS = ["tiny", pytest.param("paper_bench", marks=pytest.mark.scale)]


@pytest.fixture(scope="module", params=PRESETS)
def corpus(request, tmp_path_factory):
    """A preset's synthetic corpus, persisted once per module."""
    scale = get_scale(request.param)
    archives = synthetic_archives(scale)
    root = tmp_path_factory.mktemp(f"matrix-{scale.name}") / "store"
    store = ArchiveStore.from_archives(root, archives)
    yield SimpleNamespace(scale=scale, archives=archives, store=store,
                          root=root)
    store.close()


class TestStoreOracles:
    def test_every_day_round_trips_byte_exact(self, corpus):
        for provider, archive in corpus.archives.items():
            assert corpus.store.dates(provider) == [s.date for s in archive]
            for snapshot in archive:
                loaded = corpus.store.load_snapshot(provider, snapshot.date)
                assert bytes(loaded.entry_ids()) == bytes(snapshot.entry_ids())

    def test_head_loads_match_archive_prefixes(self, corpus):
        scale = corpus.scale
        # Head sizes around every structural edge that exists at this
        # scale: singleton, the analysis head, the store's chunk size ±1,
        # and the full list.
        sizes = {1, scale.analysis_top_k, scale.list_size,
                 store_module.CHUNK_ENTRIES - 1, store_module.CHUNK_ENTRIES,
                 store_module.CHUNK_ENTRIES + 1}
        sizes = sorted(n for n in sizes if 1 <= n <= scale.list_size)
        for provider, archive in corpus.archives.items():
            last = archive[len(archive) - 1]
            expected = last.entry_ids()
            for n in sizes:
                head = corpus.store.load_head(provider, last.date, n)
                assert bytes(head.entry_ids()) == bytes(expected[:n])

    def test_point_rank_queries_match_archive(self, corpus):
        scale = corpus.scale
        ranks = sorted({1, 2, scale.analysis_top_k, scale.list_size // 2,
                        scale.list_size})
        for provider, archive in corpus.archives.items():
            last = archive[len(archive) - 1]
            ids = last.entry_ids()
            for rank in ranks:
                got = corpus.store.rank_of_id(provider, last.date,
                                              ids[rank - 1])
                assert got == rank
            absent = default_interner().intern("never-in-any-list.example")
            assert corpus.store.rank_of_id(provider, last.date, absent) is None


class TestIndexOracles:
    def test_index_from_store_matches_brute_archive_scan(self, corpus):
        index = DomainIndex.from_store(corpus.store)
        interner = default_interner()
        rng = random.Random(f"matrix:{corpus.scale.name}")
        for provider, archive in corpus.archives.items():
            assert index.dates(provider) == [s.date for s in archive]
            last = archive[len(archive) - 1]
            first = archive[0]
            # Sampled present domains plus one dropped on day 0 (if the
            # scale churns at all, day 0's head start loses members).
            probes = {last.entry_ids()[rng.randrange(len(last))]
                      for _ in range(5)}
            dropped = set(interner.id_set(first.entry_ids())) - \
                set(interner.id_set(last.entry_ids()))
            if dropped:
                probes.add(min(dropped))
            for gid in probes:
                name = interner.domain(gid)
                expected = []
                for snapshot in archive:
                    column = array_of(snapshot.entry_ids())
                    try:
                        expected.append(
                            (snapshot.date, column.index(gid) + 1))
                    except ValueError:
                        pass
                assert index.history(name, provider) == expected
                assert index.longevity(name, provider).days_listed == \
                    len(expected)
                probe_date = last.date if not expected else expected[-1][0]
                brute = dict(expected).get(probe_date)
                assert index.rank_on(name, provider, probe_date) == brute


def array_of(ids):
    """A concrete uint32 array copy of an id column (memoryview-safe)."""
    return array("I", ids)


class TestApiOracles:
    ROUTES = ("/v1/meta",)

    def _routes(self, corpus):
        interner = default_interner()
        first_provider = sorted(corpus.archives)[0]
        last = corpus.archives[first_provider][
            len(corpus.archives[first_provider]) - 1]
        name = interner.domain(last.entry_ids()[0])
        routes = ["/v1/meta", f"/v1/domains/{name}/history"]
        routes += [f"/v1/providers/{p}/stability"
                   for p in sorted(corpus.archives)]
        return routes

    def test_payloads_identical_across_store_reopen(self, corpus):
        """A reopened store serves byte-identical API payloads.

        This is the end-to-end laziness check: everything the first
        service answered from in-memory archives, the second answers
        from chunked shards replayed off disk.
        """
        service = QueryService(corpus.store)
        with ArchiveStore(corpus.root) as reopened:
            cold = QueryService(reopened)
            for route in self._routes(corpus):
                warm_response = service.handle_request(route)
                cold_response = cold.handle_request(route)
                assert warm_response.status == 200, route
                assert cold_response.status == 200, route
                assert warm_response.body == cold_response.body, route


class TestMemoryCeilings:
    """tracemalloc ceilings at preset scale (the budget in the config).

    The budgets are generous against healthy behaviour (paper_bench's
    battery peaks ~35 MB against a 512 MB budget) but catch the failure
    modes this PR is about: an index build or analysis battery that
    materialises day-sized Python structures per snapshot blows through
    them immediately.
    """

    def test_index_build_stays_under_budget(self, corpus):
        with ArchiveStore(corpus.root) as reopened:
            tracemalloc.start()
            try:
                index = DomainIndex.from_store(reopened)
                _, peak = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
        assert index.providers() == tuple(sorted(corpus.archives))
        assert peak < corpus.scale.memory_budget_bytes, \
            f"index build peaked at {peak / 1e6:.1f} MB"

    def test_stability_battery_stays_under_budget(self, corpus):
        with ArchiveStore(corpus.root) as reopened:
            service = QueryService(reopened)
            tracemalloc.start()
            try:
                for provider in sorted(corpus.archives):
                    response = service.handle_request(
                        f"/v1/providers/{provider}/stability")
                    assert response.status == 200
                _, peak = tracemalloc.get_traced_memory()
            finally:
                tracemalloc.stop()
        assert peak < corpus.scale.memory_budget_bytes, \
            f"stability battery peaked at {peak / 1e6:.1f} MB"


class TestPresetRegistry:
    def test_registry_names_and_lookup(self):
        assert scale_names() == ("tiny", "paper_bench", "full_1m")
        tiny = get_scale("tiny")
        assert get_scale(tiny) is tiny
        with pytest.raises(KeyError, match="known:"):
            get_scale("gigantic")

    def test_tiny_preset_means_what_the_cli_tiny_flag_meant(self):
        """``--tiny`` must keep producing the historical fixture scale."""
        profile = get_profile("paper_realistic").at_scale("tiny")
        assert profile.name == "paper_realistic+tiny"
        config = profile.config
        assert (config.n_domains, config.list_size, config.n_days,
                config.top_k) == (1_500, 400, 8, 50)
        assert (config.alexa_panel_users, config.umbrella_clients,
                config.majestic_linking_subnets) == (8_000, 6_000, 150_000)
        assert (config.alexa_window_days, config.majestic_window_days,
                config.new_domains_per_day) == (5, 5, 10)

    def test_synthetic_only_scales_refuse_simulation(self):
        profile = get_profile("paper_realistic")
        for name in ("paper_bench", "full_1m"):
            with pytest.raises(ScaleError, match="synthetic-only"):
                profile.at_scale(name)

    def test_validation_rejects_nonsense_configs(self):
        good = dict(name="x", description="d", list_size=10, n_days=2,
                    analysis_top_k=5)
        ScaleConfig(**good)
        for bad in (dict(list_size=0), dict(n_days=0),
                    dict(analysis_top_k=11), dict(analysis_top_k=0),
                    dict(churn_fraction=1.0), dict(name="a b"),
                    dict(providers=())):
            with pytest.raises(ValueError):
                ScaleConfig(**{**good, **bad})

    def test_derived_sizes(self):
        tiny = get_scale("tiny")
        assert tiny.churn_per_day == 8  # 2% of 400
        assert tiny.universe_size == 400 + 7 * 8
        one_day = replace(tiny, name="oneday", n_days=1)
        assert one_day.churn_per_day == 0
        assert one_day.universe_size == one_day.list_size


class TestSyntheticGenerator:
    def test_deterministic_and_shares_one_universe(self):
        solo = synthetic_archive("alexa", "tiny")
        again = synthetic_archive("alexa", "tiny")
        grouped = synthetic_archives("tiny")["alexa"]
        for day in range(len(solo)):
            reference = bytes(solo[day].entry_ids())
            assert bytes(again[day].entry_ids()) == reference
            assert bytes(grouped[day].entry_ids()) == reference

    def test_providers_diverge_but_overlap(self):
        archives = synthetic_archives("tiny")
        interner = default_interner()
        last = {p: set(interner.id_set(a[len(a) - 1].entry_ids()))
                for p, a in archives.items()}
        alexa, majestic = last["alexa"], last["majestic"]
        assert alexa != majestic  # per-provider churn streams differ
        overlap = len(alexa & majestic) / len(alexa)
        assert overlap > 0.8  # but membership stays heavily shared

    def test_daily_change_rate_is_exactly_the_configured_churn(self):
        scale = get_scale("tiny")
        archive = synthetic_archive("umbrella", scale)
        assert len(archive) == scale.n_days
        for day in range(scale.n_days):
            assert len(archive[day]) == scale.list_size
        assert mean_daily_change(archive) == scale.churn_per_day

    def test_short_universe_is_rejected(self):
        scale = get_scale("tiny")
        with pytest.raises(ValueError, match="universe holds"):
            synthetic_archive("alexa", scale,
                              universe=universe_ids(scale.list_size))
