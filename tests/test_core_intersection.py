"""Tests for intersection analysis (Section 5.2/5.3)."""

import datetime as dt

import pytest

from repro.core.intersection import (
    aggregate_top,
    disjunct_domains,
    intersection_matrix,
    intersection_over_time,
    jaccard_index,
    pairwise_intersection,
)
from repro.providers.base import ListArchive, ListSnapshot


def snap(provider, entries, day=0):
    return ListSnapshot(provider=provider, entries=tuple(entries),
                        date=dt.date(2018, 4, 1) + dt.timedelta(days=day))


class TestPairwise:
    def test_counts_common_base_domains(self):
        a = snap("alexa", ["a.com", "b.com", "c.com"])
        b = snap("umbrella", ["www.a.com", "b.com", "d.com"])
        assert pairwise_intersection(a, b) == 2

    def test_without_normalisation(self):
        a = snap("alexa", ["a.com"])
        b = snap("umbrella", ["www.a.com"])
        assert pairwise_intersection(a, b, normalise=False) == 0

    def test_jaccard(self):
        assert jaccard_index(["a", "b"], ["b", "c"]) == pytest.approx(1 / 3)
        assert jaccard_index([], []) == 1.0


class TestMatrix:
    def test_three_lists(self):
        snapshots = {
            "alexa": snap("alexa", ["a.com", "b.com", "c.com"]),
            "umbrella": snap("umbrella", ["b.com", "c.com", "d.com"]),
            "majestic": snap("majestic", ["c.com", "d.com", "e.com"]),
        }
        matrix = intersection_matrix(snapshots)
        assert matrix[("alexa", "umbrella")] == 2
        assert matrix[("alexa", "majestic")] == 1
        assert matrix[("majestic", "umbrella")] == 2
        assert matrix[("alexa", "majestic", "umbrella")] == 1

    def test_two_lists_no_triple_key(self):
        snapshots = {
            "alexa": snap("alexa", ["a.com"]),
            "umbrella": snap("umbrella", ["a.com"]),
        }
        matrix = intersection_matrix(snapshots)
        assert list(matrix) == [("alexa", "umbrella")]


class TestOverTime:
    def test_series_per_common_date(self, small_run):
        series = intersection_over_time(small_run.archives, top_n=50)
        assert len(series) == small_run.config.n_days
        first = next(iter(series.values()))
        assert ("alexa", "majestic") in first
        assert ("alexa", "majestic", "umbrella") in first

    def test_web_lists_agree_more_than_dns_list(self, small_run):
        series = intersection_over_time(small_run.archives)
        last = series[max(series)]
        assert last[("alexa", "majestic")] > last[("alexa", "umbrella")]
        assert last[("alexa", "majestic")] > last[("majestic", "umbrella")]
        assert last[("alexa", "majestic", "umbrella")] <= min(
            last[("alexa", "majestic")], last[("alexa", "umbrella")])

    def test_empty_input(self):
        assert intersection_over_time({}) == {}

    def test_disjoint_dates(self):
        a = ListArchive(provider="alexa")
        a.add(snap("alexa", ["a.com"], day=0))
        b = ListArchive(provider="majestic")
        b.add(snap("majestic", ["a.com"], day=5))
        assert intersection_over_time({"alexa": a, "majestic": b}) == {}


class TestDisjunct:
    def test_aggregate_top(self):
        archive = ListArchive(provider="alexa")
        archive.add(snap("alexa", ["a.com", "b.com"], day=0))
        archive.add(snap("alexa", ["a.com", "c.com"], day=1))
        assert aggregate_top(archive, top_n=2) == {"a.com", "b.com", "c.com"}
        assert aggregate_top(archive, top_n=2, last_days=1) == {"a.com", "c.com"}

    def test_disjunct_domains(self):
        sets = {
            "alexa": ["a.com", "shared.com"],
            "umbrella": ["tracker.net", "shared.com"],
            "majestic": ["old.org", "shared.com"],
        }
        disjunct = disjunct_domains(sets)
        assert disjunct["alexa"] == {"a.com"}
        assert disjunct["umbrella"] == {"tracker.net"}
        assert disjunct["majestic"] == {"old.org"}

    def test_disjunct_normalises_subdomains(self):
        sets = {"alexa": ["a.com"], "umbrella": ["www.a.com", "api.b.net"]}
        disjunct = disjunct_domains(sets)
        assert disjunct["alexa"] == set()
        assert disjunct["umbrella"] == {"b.net"}
