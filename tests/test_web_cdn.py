"""Tests for CDN detection from CNAME patterns."""

import pytest

from repro.web.cdn import DEFAULT_CDN_RULES, CdnDetector, CdnRule


class TestCdnRule:
    def test_suffix_match(self):
        rule = CdnRule("Akamai", ("akamaiedge.net",))
        assert rule.matches("e1234.a.akamaiedge.net")
        assert rule.matches("akamaiedge.net")
        assert not rule.matches("notakamaiedge.net")

    def test_case_insensitive(self):
        rule = CdnRule("Fastly", ("fastly.net",))
        assert rule.matches("Prod.Global.FASTLY.NET.")


class TestCdnDetector:
    @pytest.fixture()
    def detector(self) -> CdnDetector:
        return CdnDetector()

    def test_default_rules_cover_paper_cdns(self, detector):
        # The providers named in Figure 7b must all be detectable.
        for provider in ("Akamai", "Google", "Fastly", "Incapsula", "Amazon",
                         "WordPress", "Facebook", "Instart", "Zenedge",
                         "Highwinds", "CHN Net", "Cloudflare"):
            assert provider in detector.providers

    def test_detect_name(self, detector):
        assert detector.detect_name("d1234.cloudfront.net") == "Amazon"
        assert detector.detect_name("shop.example.com") is None

    def test_detect_chain_first_match(self, detector):
        chain = ["www.example.com.edgekey.net", "e1.a.akamaiedge.net"]
        assert detector.detect_chain(chain) == "Akamai"

    def test_detect_chain_empty(self, detector):
        assert detector.detect_chain([]) is None

    def test_share_by_provider(self, detector):
        chains = [
            ["x.fastly.net"],
            ["y.fastly.net"],
            ["z.cloudfront.net"],
            ["plain.example.org"],
        ]
        shares = detector.share_by_provider(chains)
        assert shares["Fastly"] == pytest.approx(2 / 3)
        assert shares["Amazon"] == pytest.approx(1 / 3)
        assert "plain.example.org" not in shares

    def test_share_empty(self, detector):
        assert detector.share_by_provider([]) == {}

    def test_detection_ratio(self, detector):
        chains = [["a.fastly.net"], ["nothing.example"], []]
        assert detector.detection_ratio(chains) == pytest.approx(1 / 3)
        assert detector.detection_ratio([]) == 0.0

    def test_custom_rules(self):
        detector = CdnDetector([CdnRule("MyCDN", ("cdn.my",))])
        assert detector.detect_name("a.cdn.my") == "MyCDN"
        assert detector.detect_name("a.fastly.net") is None

    def test_empty_rules_rejected(self):
        with pytest.raises(ValueError):
            CdnDetector([])

    def test_ruleset_nonempty(self):
        assert len(DEFAULT_CDN_RULES) >= 25
