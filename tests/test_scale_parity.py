"""Streaming-vs-materialised ingest parity, property-tested.

The streaming ingest lane (file → row filter → interner → chunked
store, one row in flight) exists so a 1M-entry day never materialises
as Python objects — but it must be *observably identical* to the
materialised lane it replaced: same snapshots, same interner growth,
same error behaviour, and byte-for-byte the same store files.
Hypothesis drives day contents across the awkward sizes (empty, single
row, one off a chunk boundary, duplicates, junk rows, headers) with the
store's chunk size shrunk so boundary cases cost a handful of entries.
"""

import datetime as dt
import gzip
import zipfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.service.store as store_module
from repro.domain.name import InvalidDomainError
from repro.listio import (iter_csv_domains, parse_top_list_csv,
                          parse_top_list_rows, read_top_list,
                          stream_wire_top_list)
from repro.providers.base import ListSnapshot, clean_wire_entry
from repro.service.store import ArchiveStore

DATE = dt.date(2018, 6, 1)

#: Valid wire domains plus cells the wire lane must reject (the plain
#: parser lane accepts any non-empty cell — that asymmetry is part of
#: the contract under test).
VALID = tuple(f"par-{i:02d}.example" for i in range(12))
JUNK = ("bad..name", "-lead.example", "tld-only", "caps.EXAMPLE.",
        "under_score.example")

_cells = st.lists(st.sampled_from(VALID + JUNK), min_size=0, max_size=9)


@pytest.fixture(scope="module", autouse=True)
def small_chunks():
    # Module-scoped (not the function-scoped monkeypatch fixture):
    # hypothesis reuses one test invocation across examples.
    mp = pytest.MonkeyPatch()
    mp.setattr(store_module, "CHUNK_ENTRIES", 4)
    yield
    mp.undo()


def _csv_text(cells, header: bool) -> str:
    lines = ["rank,domain"] if header else []
    lines += [f"{rank},{cell}" for rank, cell in enumerate(cells, start=1)]
    return "\n".join(lines) + ("\n" if lines else "")


@settings(max_examples=60, deadline=None)
@given(cells=_cells, header=st.booleans())
def test_streaming_parser_matches_materialised_parser(cells, header):
    text = _csv_text(cells, header)
    try:
        materialised = parse_top_list_csv(text, provider="alexa", date=DATE)
    except ValueError as error:
        with pytest.raises(ValueError) as streamed:
            parse_top_list_rows(iter(text.splitlines(keepends=True)),
                                provider="alexa", date=DATE)
        # Identical diagnostics, including the row count.
        assert str(streamed.value) == str(error)
        return
    streamed = parse_top_list_rows(iter(text.splitlines(keepends=True)),
                                   provider="alexa", date=DATE)
    assert streamed == materialised
    assert bytes(streamed.entry_ids()) == bytes(materialised.entry_ids())


@settings(max_examples=60, deadline=None)
@given(cells=_cells, header=st.booleans())
def test_streaming_wire_lane_matches_materialised_wire_oracle(cells, header):
    text = _csv_text(cells, header)
    # Materialised oracle: the row filter, then per-row wire validation
    # with rejects skipped, duplicates keeping their first rank.
    kept, skipped = [], 0
    for raw in iter_csv_domains(text):
        try:
            kept.append(clean_wire_entry(raw))
        except InvalidDomainError:
            skipped += 1
    rows = iter_csv_domains(iter(text.splitlines(keepends=True)))
    if not kept:
        with pytest.raises(InvalidDomainError):
            ListSnapshot.from_wire_rows("alexa", DATE, rows)
        return
    snapshot, streamed_skipped = ListSnapshot.from_wire_rows(
        "alexa", DATE, rows)
    expected = ListSnapshot.from_cleaned_entries("alexa", DATE, kept)
    assert snapshot == expected
    assert streamed_skipped == skipped


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_file_forms_and_store_bytes_are_identical(data, tmp_path_factory):
    n_days = data.draw(st.integers(min_value=1, max_value=3), label="days")
    day_cells = []
    for day in range(n_days):
        cells = data.draw(
            st.lists(st.sampled_from(VALID), unique=True,
                     min_size=1, max_size=9),
            label=f"day{day}")
        day_cells.append(cells)

    tmp = tmp_path_factory.mktemp("parity")
    root_a, root_b = tmp / "store-a", tmp / "store-b"
    with ArchiveStore(root_a) as store_a, ArchiveStore(root_b) as store_b:
        for day, cells in enumerate(day_cells):
            date = DATE + dt.timedelta(days=day)
            text = _csv_text(cells, header=day % 2 == 0)
            # Lane A: materialised text parse.
            store_a.append(parse_top_list_csv(text, provider="alexa", date=date))
            # Lane B: streaming decompression straight off a file, the
            # container format rotating per day.
            form = ("csv", "gz", "zip")[day % 3]
            if form == "csv":
                path = tmp / f"alexa-{date}-{day}.csv"
                path.write_text(text, encoding="utf-8")
            elif form == "gz":
                path = tmp / f"alexa-{date}-{day}.csv.gz"
                path.write_bytes(gzip.compress(text.encode("utf-8")))
            else:
                path = tmp / f"alexa-{date}-{day}.zip"
                with zipfile.ZipFile(path, "w") as archive:
                    archive.writestr("top-1m.csv", text)
            store_b.append(read_top_list(path, provider="alexa", date=date))

        # Query payloads answer identically out of both stores.
        for day, cells in enumerate(day_cells):
            date = DATE + dt.timedelta(days=day)
            got_a = store_a.load_snapshot("alexa", date)
            got_b = store_b.load_snapshot("alexa", date)
            assert got_a.entries == got_b.entries
            assert bytes(got_a.entry_ids()) == bytes(got_b.entry_ids())
            head_a = store_a.load_head("alexa", date, 5)
            head_b = store_b.load_head("alexa", date, 5)
            assert bytes(head_a.entry_ids()) == bytes(head_b.entry_ids())

    # The lanes left byte-for-byte identical trees behind: manifest,
    # store interner table, and every chunked shard.
    files_a = sorted(p.relative_to(root_a) for p in root_a.rglob("*") if p.is_file())
    files_b = sorted(p.relative_to(root_b) for p in root_b.rglob("*") if p.is_file())
    assert files_a == files_b
    for relative in files_a:
        assert (root_a / relative).read_bytes() == (root_b / relative).read_bytes(), \
            f"store files diverged: {relative}"


@settings(max_examples=25, deadline=None)
@given(cells=st.lists(st.sampled_from(VALID + JUNK), min_size=0, max_size=6))
def test_stream_wire_top_list_matches_wire_rows(cells, tmp_path_factory):
    tmp = tmp_path_factory.mktemp("wirefile")
    text = _csv_text(cells, header=False)
    path = tmp / "alexa-2018-06-01.csv"
    path.write_text(text, encoding="utf-8")
    rows = iter_csv_domains(text)
    try:
        expected = ListSnapshot.from_wire_rows("alexa", DATE, rows)
    except InvalidDomainError:
        with pytest.raises(ValueError):
            stream_wire_top_list(path, provider="alexa")
        return
    snapshot, skipped = stream_wire_top_list(path, provider="alexa")
    assert (snapshot, skipped) == expected
