"""Live-append concurrency tests for the serving layer.

The paper's point is that top lists change *daily*; a serving process
must therefore accept new days while answering queries.  These tests
exercise exactly that seam:

* reader threads hammer the wire (history/stability/compare/batch)
  while one writer POSTs a month of snapshots to ``/v1/ingest`` —
  no 5xx, every response's ETag matches its body hash, and the final
  reads reflect the final appended day;
* the ingested state is *byte-identical* to computing on an archive
  built directly from the same snapshots (the live path may not drift
  from the cold path);
* the lock-audit regression: the LRU is keyed on ``store.version``, so
  a version read outside the lock could cache a pre-append body under
  the post-append version — the meta payload embeds the version, which
  must always equal the version header the response was keyed under.
"""

import datetime as dt
import hashlib
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.intersection import intersection_over_time
from repro.core.stability import (
    cumulative_unique_domains,
    daily_changes,
    days_in_list,
    intersection_with_reference,
    mean_daily_change,
    new_domains_per_day,
)
from repro.providers.base import ListArchive, ListSnapshot
from repro.scenarios.runner import canonical_float
from repro.service.api import QueryService, create_server, json_bytes
from repro.service.store import ArchiveStore

BASE_DATE = dt.date(2018, 1, 10)
STABLE = tuple(f"stable-{i:03d}.example.com" for i in range(40))


def _day_entries(day: int) -> tuple[str, ...]:
    """Deterministic daily list: a stable core plus per-day churners."""
    churn = tuple(f"day{day}-{j}.example.org" for j in range(5))
    # Rotate the stable block a little so ranks move day over day.
    pivot = day % len(STABLE)
    return STABLE[pivot:] + STABLE[:pivot] + churn


def _snapshot(provider: str, day: int) -> ListSnapshot:
    return ListSnapshot(provider=provider,
                        date=BASE_DATE + dt.timedelta(days=day),
                        entries=_day_entries(day))


def _seeded_store(root, provider="alexa", days=5) -> ArchiveStore:
    store = ArchiveStore(root)
    store.append_archive(ListArchive.from_snapshots(
        [_snapshot(provider, day) for day in range(days)]))
    return store


def _ingest_body(provider: str, day: int) -> bytes:
    return json.dumps({
        "provider": provider,
        "date": (BASE_DATE + dt.timedelta(days=day)).isoformat(),
        "entries": list(_day_entries(day)),
    }).encode("utf-8")


def _expected_stability(archive, provider, top_n=None):
    """The stability payload built from direct repro.core calls."""
    changes = daily_changes(archive, top_n)
    mean_change = mean_daily_change(archive, top_n)
    counts = days_in_list(archive, top_n)
    always = (sum(1 for v in counts.values() if v == len(archive))
              / len(counts)) if counts else 0.0
    list_size = len(archive[0])
    head = list_size if top_n is None else min(top_n, list_size)
    return {
        "provider": provider,
        "top_n": top_n,
        "days": len(archive),
        "list_size": list_size,
        "mean_daily_change": canonical_float(mean_change),
        "churn_fraction": canonical_float(mean_change / max(1, head)),
        "daily_changes": {d.isoformat(): c for d, c in sorted(changes.items())},
        "new_per_day": {d.isoformat(): c for d, c in
                        sorted(new_domains_per_day(archive, top_n).items())},
        "cumulative_unique": {d.isoformat(): c for d, c in
                              sorted(cumulative_unique_domains(archive, top_n).items())},
        "distinct_domains": len(counts),
        "always_listed_share": canonical_float(always),
        "reference_decay": {
            str(offset): canonical_float(value)
            for offset, value in sorted(intersection_with_reference(
                archive, reference_days=range(7), top_n=top_n).items())},
    }


class TestLiveAppendParity:
    """A POSTed snapshot is served without restart, byte-equal to cold."""

    def test_ingest_visible_and_byte_identical_to_cold_path(self, tmp_path):
        store = _seeded_store(tmp_path / "s", days=4)
        service = QueryService(store)
        # Materialise (and cache) pre-append state first: the append must
        # invalidate it, not serve around it.
        before = service.handle_request("/v1/domains/stable-000.example.com/history")
        assert before.json()["providers"]["alexa"]["days_listed"] == 4

        for day in (4, 5):
            response = service.handle_request(
                "/v1/ingest", {"Content-Type": "application/json"},
                method="POST", body=_ingest_body("alexa", day))
            assert response.status == 200
            assert response.json()["ingested"]["entries"] == len(_day_entries(day))

        # The cold path: an archive built directly from the same snapshots.
        cold = ListArchive.from_snapshots(
            [ListSnapshot("alexa", _snapshot("alexa", day).date,
                          _day_entries(day)) for day in range(6)])
        live = service.handle_request("/v1/providers/alexa/stability")
        assert live.status == 200
        assert live.body == json_bytes(_expected_stability(cold, "alexa"))
        live_top = service.handle_request("/v1/providers/alexa/stability?top_n=20")
        assert live_top.body == json_bytes(_expected_stability(cold, "alexa", 20))

        history = service.handle_request(
            "/v1/domains/stable-000.example.com/history").json()
        section = history["providers"]["alexa"]
        assert section["days_listed"] == 6
        assert section["last_seen"] == (BASE_DATE + dt.timedelta(days=5)).isoformat()
        expected_obs = [
            {"date": s.date.isoformat(),
             "rank": s.entries.index("stable-000.example.com") + 1}
            for s in cold]
        assert section["observations"] == expected_obs

    def test_ingest_extends_compare_across_providers(self, tmp_path):
        store = _seeded_store(tmp_path / "s", provider="alexa", days=3)
        store.append_archive(ListArchive.from_snapshots(
            [_snapshot("umbrella", day) for day in range(3)]))
        service = QueryService(store)
        service.handle_request("/v1/compare?providers=alexa,umbrella")
        for provider in ("alexa", "umbrella"):
            assert service.handle_request(
                "/v1/ingest", method="POST",
                body=_ingest_body(provider, 3)).status == 200
        cold = {
            name: ListArchive.from_snapshots(
                [ListSnapshot(name, _snapshot(name, d).date, _day_entries(d))
                 for d in range(4)])
            for name in ("alexa", "umbrella")}
        series = intersection_over_time(cold)
        live = service.handle_request("/v1/compare?providers=alexa,umbrella").json()
        assert live["days"] == 4
        assert live["series"] == {
            date.isoformat(): {"&".join(pair): count
                               for pair, count in matrix.items()}
            for date, matrix in series.items()}

    def test_reload_from_disk_matches_live_state(self, tmp_path):
        # The live path is durable: a cold process opening the same store
        # sees exactly what the serving process answered.
        store = _seeded_store(tmp_path / "s", days=3)
        service = QueryService(store)
        assert service.handle_request(
            "/v1/ingest", method="POST",
            body=_ingest_body("alexa", 3)).status == 200
        live = service.handle_request("/v1/providers/alexa/stability")
        reopened = QueryService(ArchiveStore(tmp_path / "s", create=False))
        assert reopened.handle_request(
            "/v1/providers/alexa/stability").body == live.body


@pytest.mark.parametrize("reader_threads", [8])
def test_concurrent_readers_during_live_appends(tmp_path, reader_threads):
    """The satellite stress test: 8 wire readers + 1 wire writer.

    A month of snapshots is POSTed while readers issue history,
    stability, compare and batch requests.  Nothing may 5xx, every
    response must be internally consistent (ETag == SHA-256 of body),
    and reads after the writer finishes must reflect the final day.
    """
    seed_days, append_days = 5, 30
    store = _seeded_store(tmp_path / "s", days=seed_days)
    store.append_archive(ListArchive.from_snapshots(
        [_snapshot("umbrella", day) for day in range(seed_days)]))
    service = QueryService(store)
    server = create_server(service)
    port = server.server_address[1]
    threading.Thread(target=server.serve_forever, daemon=True).start()
    base = f"http://127.0.0.1:{port}"
    writer_done = threading.Event()
    failures: list[str] = []

    def fetch(target, method="GET", body=None, headers=None):
        request = urllib.request.Request(
            base + target, data=body, method=method, headers=headers or {})
        try:
            with urllib.request.urlopen(request, timeout=30) as wire:
                return wire.status, dict(wire.headers), wire.read()
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), error.read()

    def check(target, status, headers, payload):
        if status >= 500:
            failures.append(f"{target}: 5xx ({status}): {payload[:200]!r}")
            return
        etag = headers.get("ETag")
        if status == 200 and etag != \
                '"' + hashlib.sha256(payload).hexdigest() + '"':
            failures.append(f"{target}: ETag does not match body hash")

    batch_body = json.dumps({"requests": [
        "/v1/meta",
        "/v1/domains/stable-000.example.com/history?top_k=10",
        "/v1/providers/alexa/stability?top_n=20",
    ]}).encode("utf-8")

    def reader(seed):
        targets = [
            "/v1/domains/stable-000.example.com/history",
            f"/v1/domains/stable-0{seed:02d}.example.com/history?top_k=10",
            "/v1/providers/alexa/stability?top_n=20",
            "/v1/compare?providers=alexa,umbrella&top_n=25",
            "/v1/meta",
        ]
        iteration = 0
        try:
            while not writer_done.is_set() or iteration % len(targets) != 0:
                target = targets[iteration % len(targets)]
                iteration += 1
                status, headers, payload = fetch(target)
                check(target, status, headers, payload)
                status, headers, payload = fetch(
                    "/v1/query", method="POST", body=batch_body,
                    headers={"Content-Type": "application/json"})
                check("/v1/query", status, headers, payload)
                if status == 200:
                    batch = json.loads(payload)
                    for item in batch["responses"]:
                        if item["status"] >= 500:
                            failures.append(f"batch {item['target']}: 5xx")
                        # The batch runs under one lock hold: every
                        # version-bearing payload matches the top level.
                        if (item["status"] == 200
                                and item["target"] == "/v1/meta"
                                and item["payload"]["store_version"]
                                != batch["store_version"]):
                            failures.append(
                                f"batch saw meta version "
                                f"{item['payload']['store_version']} under "
                                f"batch version {batch['store_version']}")
        except Exception as error:  # noqa: BLE001 — surfaced via assert
            failures.append(f"reader {seed}: {type(error).__name__}: {error}")

    def writer():
        try:
            for day in range(seed_days, seed_days + append_days):
                status, headers, payload = fetch(
                    "/v1/ingest", method="POST",
                    body=_ingest_body("alexa", day),
                    headers={"Content-Type": "application/json"})
                if status != 200:
                    failures.append(
                        f"ingest day {day}: {status}: {payload[:200]!r}")
                    return
                # The 200 is a barrier: this read must already see the day.
                status, _, payload = fetch(
                    "/v1/domains/stable-000.example.com/history")
                seen = json.loads(payload)["providers"]["alexa"]["days_listed"]
                if status != 200 or seen != day + 1:
                    failures.append(
                        f"post-append read after day {day} saw {seen} days")
                    return
        except Exception as error:  # noqa: BLE001
            failures.append(f"writer: {type(error).__name__}: {error}")
        finally:
            writer_done.set()

    threads = [threading.Thread(target=reader, args=(n,))
               for n in range(reader_threads)]
    writer_thread = threading.Thread(target=writer)
    try:
        for thread in threads:
            thread.start()
        writer_thread.start()
        writer_thread.join(timeout=120)
        writer_done.set()
        for thread in threads:
            thread.join(timeout=120)
        assert not writer_thread.is_alive(), "writer never finished"
        assert not any(t.is_alive() for t in threads), "a reader never finished"
        assert not failures, failures[:10]

        # The final state is the full month, served and exact.
        status, _, payload = fetch("/v1/domains/stable-000.example.com/history")
        assert status == 200
        section = json.loads(payload)["providers"]["alexa"]
        assert section["days_listed"] == seed_days + append_days
        last = BASE_DATE + dt.timedelta(days=seed_days + append_days - 1)
        assert section["last_seen"] == last.isoformat()
        assert server.unhandled_errors == []
    finally:
        writer_done.set()
        server.shutdown()
        server.server_close()


class TestLockAuditRegression:
    """The LRU's version key and its body must be read under one lock.

    ``/v1/meta`` embeds ``store_version`` in the payload and the service
    stamps ``X-Repro-Store-Version`` from the version the cache key was
    derived under — if any path read the version outside the lock, a
    concurrent ingest would let a pre-append body be cached (and served)
    under the post-append version, and the two values would diverge.
    """

    def test_meta_version_header_matches_body_under_threads(self, tmp_path):
        store = _seeded_store(tmp_path / "s", days=3)
        # A tiny LRU forces constant eviction churn alongside the races.
        service = QueryService(store, cache_size=2)
        stop = threading.Event()
        failures: list[str] = []

        def reader():
            targets = ["/v1/meta",
                       "/v1/domains/stable-000.example.com/history",
                       "/v1/providers/alexa/stability?top_n=10"]
            i = 0
            try:
                while not stop.is_set():
                    target = targets[i % len(targets)]
                    i += 1
                    response = service.handle_request(target)
                    if response.status >= 500:
                        failures.append(f"{target}: {response.status}")
                        continue
                    if target == "/v1/meta" and response.status == 200:
                        header = int(response.headers["X-Repro-Store-Version"])
                        body_version = response.json()["store_version"]
                        if header != body_version:
                            failures.append(
                                f"meta cached under version {header} but "
                                f"body says {body_version}")
            except Exception as error:  # noqa: BLE001
                failures.append(f"reader: {type(error).__name__}: {error}")

        def writer():
            try:
                for day in range(3, 23):
                    response = service.handle_request(
                        "/v1/ingest", method="POST",
                        body=_ingest_body("alexa", day))
                    if response.status != 200:
                        failures.append(f"ingest {day}: {response.status}")
                        return
            except Exception as error:  # noqa: BLE001
                failures.append(f"writer: {type(error).__name__}: {error}")
            finally:
                stop.set()

        threads = [threading.Thread(target=reader) for _ in range(8)]
        writer_thread = threading.Thread(target=writer)
        for thread in threads:
            thread.start()
        writer_thread.start()
        writer_thread.join(timeout=120)
        stop.set()
        for thread in threads:
            thread.join(timeout=120)
        assert not failures, failures[:10]
        final = service.handle_request("/v1/meta")
        assert final.json()["providers"]["alexa"]["days"] == 23
