"""Tests for the Alexa toolbar telemetry model (Section 7.1)."""

import pytest

from repro.ranking.toolbar import (
    ANONYMISED_HOSTS,
    DEMOGRAPHIC_FIELDS,
    AlexaToolbar,
    simulate_panel_day,
)


class TestToolbar:
    def test_aid_stable_per_installation(self):
        toolbar = AlexaToolbar(demographics={"age": "30-39", "gender": "f"})
        assert toolbar.aid == toolbar.aid
        assert len(toolbar.aid) == 32

    def test_different_installations_different_aid(self):
        a = AlexaToolbar(demographics={"age": "30-39"})
        b = AlexaToolbar(demographics={"age": "50-59"})
        assert a.aid != b.aid

    def test_unknown_demographic_rejected(self):
        with pytest.raises(ValueError):
            AlexaToolbar(demographics={"favourite_colour": "blue"})

    def test_demographic_fields_match_paper(self):
        assert set(DEMOGRAPHIC_FIELDS) == {
            "age", "gender", "household_income", "ethnicity", "education",
            "children", "install_location"}

    def test_full_url_transmitted_for_normal_sites(self):
        toolbar = AlexaToolbar()
        record = toolbar.visit("https://shop.example.com/cart?item=4711&token=secret")
        assert record is not None
        assert not record.anonymised
        assert "token=secret" in record.url
        assert record.url in toolbar.exposed_full_urls()

    def test_search_engines_anonymised_to_host(self):
        toolbar = AlexaToolbar()
        record = toolbar.visit("https://www.google.com/search?q=private+query")
        assert record.anonymised
        assert record.url == "https://www.google.com/"
        assert "private" not in record.url

    def test_anonymised_hosts_cover_paper_examples(self):
        for host in ("google.com", "youtube.com", "search.yahoo.com", "jet.com",
                     "shop.rewe.de", "ocado.com", "instacart.com"):
            assert host in ANONYMISED_HOSTS or f"www.{host}" in ANONYMISED_HOSTS

    def test_failed_page_loads_not_transmitted(self):
        toolbar = AlexaToolbar()
        assert toolbar.visit("https://broken.example.com/", loaded=False) is None
        assert toolbar.telemetry == []

    def test_referer_also_anonymised(self):
        toolbar = AlexaToolbar()
        record = toolbar.visit("https://example.com/page",
                               referer="https://www.google.com/search?q=x")
        assert record.referer == "https://www.google.com/"

    def test_visited_hosts(self):
        toolbar = AlexaToolbar()
        toolbar.visit("https://a.example/1")
        toolbar.visit("https://b.example/2")
        assert toolbar.visited_hosts() == ["a.example", "b.example"]


class TestPanelAggregation:
    def test_unique_visitor_counting(self):
        toolbars = [AlexaToolbar(demographics={"age": str(i)}) for i in range(3)]
        visits = [
            (0, "https://popular.example/a"),
            (0, "https://popular.example/b"),
            (1, "https://popular.example/"),
            (2, "https://niche.example/"),
        ]
        counts = simulate_panel_day(toolbars, visits)
        assert counts["popular.example"] == 2  # two distinct installations
        assert counts["niche.example"] == 1
