"""Tests for the reporting helpers (time series and Table 5 assembly)."""

import pytest

from repro.core.bias import ComparisonTable
from repro.measurement.harness import TargetSet
from repro.measurement.report import TABLE5_METRICS, build_comparison_table, daily_series
from repro.stats.summary import DeviationFlag


class TestDailySeries:
    def test_series_structure(self, harness, small_run):
        archives = {"alexa": small_run.alexa.top(200), "majestic": small_run.majestic.top(200)}
        series = daily_series(harness, archives, metric="ipv6", sample_every=7)
        assert set(series) == {"alexa", "majestic"}
        for per_date in series.values():
            assert len(per_date) == len(small_run.alexa.dates()[::7])
            assert all(0 <= value <= 100 for value in per_date.values())

    def test_top_n_label(self, harness, small_run):
        archives = {"alexa": small_run.alexa}
        series = daily_series(harness, archives, metric="nxdomain", top_n=50, sample_every=14)
        assert "alexa-50" in series

    def test_population_included(self, harness, small_run):
        population = TargetSet.from_zonefile(small_run.zonefile, sample=100, seed=3)
        archives = {"majestic": small_run.majestic.top(100)}
        series = daily_series(harness, archives, metric="http2",
                              population=population, sample_every=14)
        assert "com/net/org" in series
        assert len(set(series["com/net/org"].values())) == 1

    def test_invalid_args(self, harness, small_run):
        with pytest.raises(ValueError):
            daily_series(harness, {"alexa": small_run.alexa}, metric="ipv6", sample_every=0)
        with pytest.raises(KeyError):
            daily_series(harness, {"alexa": small_run.alexa.top(10)}, metric="bogus")


class TestComparisonTable:
    @pytest.fixture(scope="class")
    def table(self, request) -> ComparisonTable:
        small_run = request.getfixturevalue("small_run")
        harness = request.getfixturevalue("harness")
        return build_comparison_table(
            small_run, harness=harness, sample_days=(-1,), top_k=100,
            population_sample=400,
            metrics=("nxdomain", "ipv6", "caa", "cdn", "tls", "http2"))

    def test_rows_present(self, table):
        assert "IPv6-enabled" in table.characteristics()
        assert "NXDOMAIN" in table.characteristics()

    def test_targets_cover_lists_and_scopes(self, table):
        targets = set(table.targets())
        assert {"alexa-1k", "alexa-1M", "umbrella-1k", "umbrella-1M",
                "majestic-1k", "majestic-1M"} <= targets

    def test_adoption_rows_exceed_population(self, table):
        for characteristic in ("IPv6-enabled", "CAA-enabled", "HTTP2"):
            row = table[characteristic]
            assert row.flag("alexa-1k") is DeviationFlag.EXCEEDS
            assert row.flag("majestic-1k") is DeviationFlag.EXCEEDS

    def test_top1k_exaggerates_more_than_full_list(self, table):
        row = table["CAA-enabled"]
        assert row.exaggeration_factor("alexa-1k") > row.exaggeration_factor("alexa-1M")

    def test_most_cells_distort(self, table):
        summary = table.distortion_summary()
        distorting = [share for share in summary.values()]
        assert sum(distorting) / len(distorting) > 0.6

    def test_table5_metric_labels_unique(self):
        labels = [label for _, label in TABLE5_METRICS]
        assert len(labels) == len(set(labels))
