"""Golden-run regression tests: scenario-level parity against committed runs.

Every scenario profile is re-run live and its fingerprint — churn rates,
tau/KS summaries, intersection means, top-k head hashes — is compared to
the JSON committed under ``tests/goldens/``.  A refactor of any cached
fast path (PSL trie, delta engines, providers) that changes a single list
entry anywhere in the battery shows up here as a named statistic diff.

Regenerate intentionally with ``make goldens`` and commit the diff.
"""

from __future__ import annotations

import copy
from pathlib import Path

import pytest

from repro.scenarios import (
    check_against_golden,
    diff_fingerprints,
    golden_path,
    load_golden,
    profile_names,
    run_scenario,
)

GOLDENS_DIR = Path(__file__).resolve().parent / "goldens"

pytestmark = pytest.mark.golden


class TestGoldenFiles:
    def test_every_profile_has_a_committed_golden(self):
        missing = [name for name in profile_names()
                   if not golden_path(GOLDENS_DIR, name).exists()]
        assert not missing, f"run `make goldens` for: {missing}"

    def test_no_orphaned_goldens(self):
        known = set(profile_names())
        orphans = [path.name for path in GOLDENS_DIR.glob("*.json")
                   if path.stem not in known]
        assert not orphans


@pytest.mark.parametrize("profile", profile_names())
class TestGoldenParity:
    def test_live_run_matches_committed_golden(self, profile):
        report = run_scenario(profile)
        differences = check_against_golden(report, GOLDENS_DIR)
        assert not differences, "\n".join(
            [f"{profile}: live run diverged from tests/goldens/{profile}.json",
             "(if the change is intentional, refresh with `make goldens`)"]
            + differences)


class TestDiffMachinery:
    def test_diff_names_the_changed_leaf(self):
        golden = load_golden(GOLDENS_DIR, "paper_realistic")
        mutated = copy.deepcopy(golden)
        mutated["providers"]["alexa"]["churn_fraction"] += 0.5
        differences = diff_fingerprints(mutated, golden)
        assert len(differences) == 1
        assert "providers.alexa.churn_fraction" in differences[0]

    def test_diff_reports_missing_keys_both_ways(self):
        golden = load_golden(GOLDENS_DIR, "paper_realistic")
        mutated = copy.deepcopy(golden)
        del mutated["top_k"]
        mutated["extra"] = 1
        differences = diff_fingerprints(mutated, golden)
        assert any("missing from live run" in d for d in differences)
        assert any("missing from golden" in d for d in differences)

    def test_missing_golden_file_is_reported(self, tmp_path):
        report = run_scenario("paper_realistic")
        differences = check_against_golden(report, tmp_path)
        assert differences and "no golden committed" in differences[0]
