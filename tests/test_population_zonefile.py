"""Tests for the com/net/org zone-file model."""

import pytest

from repro.population.zonefile import ZoneFile


class TestZoneFile:
    def test_from_internet_filters_tlds(self, internet):
        zonefile = ZoneFile.from_internet(internet)
        assert len(zonefile) > 0
        assert all(name.rsplit(".", 1)[-1] in ("com", "net", "org") for name in zonefile)

    def test_custom_tlds(self, internet):
        zonefile = ZoneFile.from_internet(internet, tlds=("de",))
        assert all(name.endswith(".de") for name in zonefile)

    def test_contains(self, internet):
        zonefile = ZoneFile.from_internet(internet)
        name = zonefile.names[0]
        assert name in zonefile
        assert "definitely-not-present.example" not in zonefile

    def test_sample_size(self, internet):
        zonefile = ZoneFile.from_internet(internet)
        sample = zonefile.sample(10, seed=1)
        assert len(sample) == 10
        assert len(set(sample)) == 10

    def test_sample_larger_than_zone_returns_all(self, internet):
        zonefile = ZoneFile.from_internet(internet)
        sample = zonefile.sample(len(zonefile) + 10, seed=1)
        assert len(sample) == len(zonefile)

    def test_sample_deterministic_with_seed(self, internet):
        zonefile = ZoneFile.from_internet(internet)
        assert zonefile.sample(20, seed=5) == zonefile.sample(20, seed=5)

    def test_sample_negative_rejected(self, internet):
        zonefile = ZoneFile.from_internet(internet)
        with pytest.raises(ValueError):
            zonefile.sample(-1)

    def test_active_names_grow(self, internet):
        zonefile = ZoneFile.from_internet(internet)
        assert len(zonefile.active_names(0)) <= len(zonefile.active_names(internet.config.n_days))

    def test_domains_accessor(self, internet):
        zonefile = ZoneFile.from_internet(internet)
        assert len(zonefile.domains) == len(zonefile)
