"""Tests for summary statistics and the Table 5 significance rule."""

import pytest

from repro.stats.summary import (
    DeviationFlag,
    classify_deviation,
    mean_std,
    median,
    share,
)


class TestMeanStd:
    def test_basic(self):
        summary = mean_std([2, 4, 4, 4, 5, 5, 7, 9])
        assert summary.mean == pytest.approx(5.0)
        assert summary.std == pytest.approx(2.0)
        assert summary.n == 8

    def test_single_value(self):
        summary = mean_std([3.5])
        assert summary.mean == 3.5
        assert summary.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_std([])

    def test_str_format(self):
        assert "±" in str(mean_std([1, 2, 3]))


class TestMedian:
    def test_odd(self):
        assert median([3, 1, 2]) == 2

    def test_even(self):
        assert median([1, 2, 3, 4]) == pytest.approx(2.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            median([])


class TestShare:
    def test_basic(self):
        assert share(3, 10) == pytest.approx(30.0)

    def test_zero_total(self):
        assert share(3, 0) == 0.0


class TestClassifyDeviation:
    def test_exceeds_low_base(self):
        # IPv6: 12.9% vs base 4.1% -> exceeds (paper marks this ▲).
        assert classify_deviation(12.9, 4.1) is DeviationFlag.EXCEEDS

    def test_falls_behind_low_base(self):
        # NXDOMAIN: 0.13% vs base 0.8% -> falls behind (▼).
        assert classify_deviation(0.13, 0.8) is DeviationFlag.FALLS_BEHIND

    def test_not_significant_low_base(self):
        # A value within 50% of the base is not significant.
        assert classify_deviation(1.0, 0.8) is DeviationFlag.NOT_SIGNIFICANT

    def test_high_base_uses_25_percent_rule(self):
        # CNAMEs: 44.1% vs base 51.4% is within 25% -> not significant (■).
        assert classify_deviation(44.1, 51.4) is DeviationFlag.NOT_SIGNIFICANT
        # 27.9% vs 51.4% is beyond 25% -> falls behind (▼).
        assert classify_deviation(27.9, 51.4) is DeviationFlag.FALLS_BEHIND

    def test_high_base_sigma_criterion(self):
        # With a huge standard deviation the 5-sigma margin dominates.
        assert classify_deviation(60.0, 45.0, value_std=10.0) is DeviationFlag.NOT_SIGNIFICANT

    def test_zero_base_any_positive_exceeds(self):
        assert classify_deviation(0.5, 0.0) is DeviationFlag.EXCEEDS
        assert classify_deviation(0.0, 0.0) is DeviationFlag.NOT_SIGNIFICANT

    def test_negative_base_rejected(self):
        with pytest.raises(ValueError):
            classify_deviation(1.0, -1.0)

    def test_flag_symbols(self):
        assert str(DeviationFlag.EXCEEDS) == "▲"
        assert str(DeviationFlag.FALLS_BEHIND) == "▼"
        assert str(DeviationFlag.NOT_SIGNIFICANT) == "■"
