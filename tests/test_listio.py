"""Tests for top-list CSV parsing and writing."""

import datetime as dt
import gzip
import zipfile

import pytest

from repro.listio import (
    date_from_filename,
    parse_top_list_csv,
    read_archive,
    read_top_list,
    write_archive,
    write_top_list,
)
from repro.providers.base import ListArchive, ListSnapshot

DATE = dt.date(2018, 1, 30)


class TestParse:
    def test_rank_domain_format(self):
        snapshot = parse_top_list_csv("1,google.com\n2,youtube.com\n",
                                      provider="alexa", date=DATE)
        assert snapshot.entries == ("google.com", "youtube.com")

    def test_majestic_style_columns(self):
        text = "1,com,google.com,extra\n2,org,wikipedia.org,extra\n"
        snapshot = parse_top_list_csv(text, provider="majestic", date=DATE,
                                      domain_column=2)
        assert snapshot.entries == ("google.com", "wikipedia.org")

    def test_header_rows_skipped(self):
        text = "GlobalRank,Domain\n1,google.com\n"
        snapshot = parse_top_list_csv(text, provider="majestic", date=DATE)
        assert snapshot.entries == ("google.com",)

    def test_duplicates_keep_first(self):
        text = "1,a.com\n2,A.COM\n3,b.com\n"
        snapshot = parse_top_list_csv(text, provider="alexa", date=DATE)
        assert snapshot.entries == ("a.com", "b.com")

    def test_blank_lines_and_short_rows_ignored(self):
        text = "\n1\n1,a.com\n"
        snapshot = parse_top_list_csv(text, provider="alexa", date=DATE)
        assert snapshot.entries == ("a.com",)

    def test_date_attached(self):
        snapshot = parse_top_list_csv("1,a.com\n", provider="alexa",
                                      date=dt.date(2018, 4, 30))
        assert snapshot.date == dt.date(2018, 4, 30)

    def test_date_is_required(self):
        # Defaulting to "today" would parse the same text into different
        # snapshots across midnight; the date must be explicit.
        with pytest.raises(ValueError, match="date"):
            parse_top_list_csv("1,a.com\n", provider="alexa", date=None)


class TestFilenameDates:
    @pytest.mark.parametrize("name, expected", [
        ("alexa-2018-01-30.csv", dt.date(2018, 1, 30)),
        ("top-1m_2017-06-06.csv.zip", dt.date(2017, 6, 6)),
        ("umbrella-2018-04-30-fixed.csv", dt.date(2018, 4, 30)),
        ("top-1m.csv", None),
        ("list-2018-13-40.csv", None),  # not a calendar date
    ])
    def test_date_from_filename(self, name, expected):
        assert date_from_filename(name) == expected

    def test_read_derives_date_from_filename(self, tmp_path):
        path = tmp_path / "alexa-2018-01-30.csv"
        path.write_text("1,google.com\n", encoding="utf-8")
        snapshot = read_top_list(path, provider="alexa")
        assert snapshot.date == dt.date(2018, 1, 30)

    def test_read_without_any_date_raises(self, tmp_path):
        path = tmp_path / "top-1m.csv"
        path.write_text("1,google.com\n", encoding="utf-8")
        with pytest.raises(ValueError, match="snapshot date"):
            read_top_list(path, provider="alexa")

    def test_explicit_date_wins_over_filename(self, tmp_path):
        path = tmp_path / "alexa-2018-01-30.csv"
        path.write_text("1,google.com\n", encoding="utf-8")
        snapshot = read_top_list(path, provider="alexa", date=dt.date(2018, 2, 2))
        assert snapshot.date == dt.date(2018, 2, 2)


class TestFiles:
    def test_csv_roundtrip(self, tmp_path):
        snapshot = ListSnapshot(provider="alexa", date=dt.date(2018, 1, 1),
                                entries=("a.com", "b.com"))
        path = tmp_path / "top.csv"
        write_top_list(snapshot, path)
        loaded = read_top_list(path, provider="alexa", date=snapshot.date)
        assert loaded.entries == snapshot.entries

    def test_zip_support(self, tmp_path):
        # The Alexa list ships as top-1m.csv.zip; archived copies carry
        # the download date in the file name.
        zip_path = tmp_path / "top-1m_2018-01-30.csv.zip"
        with zipfile.ZipFile(zip_path, "w") as archive:
            archive.writestr("top-1m.csv", "1,google.com\n2,netflix.com\n")
        snapshot = read_top_list(zip_path, provider="alexa")
        assert snapshot.entries == ("google.com", "netflix.com")
        assert snapshot.date == dt.date(2018, 1, 30)

    def test_zip_skips_directories_and_metadata_members(self, tmp_path):
        # Real Alexa zips can lead with a directory entry or a readme;
        # the reader must find the CSV payload, not namelist()[0].
        zip_path = tmp_path / "top-1m_2018-01-30.csv.zip"
        with zipfile.ZipFile(zip_path, "w") as archive:
            archive.writestr("top-1m/", "")
            archive.writestr("top-1m/README.txt", "not a list")
            archive.writestr("top-1m/top-1m.csv", "1,google.com\n2,netflix.com\n")
        snapshot = read_top_list(zip_path, provider="alexa")
        assert snapshot.entries == ("google.com", "netflix.com")

    def test_zip_without_csv_falls_back_to_first_file(self, tmp_path):
        zip_path = tmp_path / "top-1m_2018-01-30.csv.zip"
        with zipfile.ZipFile(zip_path, "w") as archive:
            archive.writestr("data/", "")
            archive.writestr("data/top-1m.txt", "1,google.com\n")
        snapshot = read_top_list(zip_path, provider="alexa")
        assert snapshot.entries == ("google.com",)

    def test_zip_with_only_directories_raises(self, tmp_path):
        zip_path = tmp_path / "top-1m_2018-01-30.csv.zip"
        with zipfile.ZipFile(zip_path, "w") as archive:
            archive.writestr("data/", "")
        with pytest.raises(ValueError, match="no files"):
            read_top_list(zip_path, provider="alexa")

    def test_gzip_support(self, tmp_path):
        # Umbrella/Majestic mirrors ship gzip-compressed CSVs.
        gz_path = tmp_path / "umbrella-2018-01-30.csv.gz"
        gz_path.write_bytes(gzip.compress(b"1,google.com\n2,netflix.com\n"))
        snapshot = read_top_list(gz_path, provider="umbrella")
        assert snapshot.entries == ("google.com", "netflix.com")
        assert snapshot.date == dt.date(2018, 1, 30)

    def test_gzip_majestic_column(self, tmp_path):
        gz_path = tmp_path / "majestic_million-2018-01-30.csv.gz"
        gz_path.write_bytes(gzip.compress(
            b"GlobalRank,TldRank,Domain\n1,1,google.com\n2,2,bbc.co.uk\n"))
        snapshot = read_top_list(gz_path, provider="majestic", domain_column=2)
        assert snapshot.entries == ("google.com", "bbc.co.uk")

    def test_archive_roundtrip(self, tmp_path):
        archive = ListArchive(provider="umbrella")
        for day in range(3):
            archive.add(ListSnapshot(provider="umbrella",
                                     date=dt.date(2018, 1, 1) + dt.timedelta(days=day),
                                     entries=(f"day{day}.com", "shared.com")))
        write_archive(archive, tmp_path / "archive")
        loaded = read_archive(tmp_path / "archive", provider="umbrella")
        assert len(loaded) == 3
        assert loaded[0].entries == archive[0].entries

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_top_list(tmp_path / "absent.csv", provider="alexa",
                          date=dt.date(2018, 1, 1))

    def test_from_csv_requires_date(self, tmp_path):
        path = tmp_path / "top.csv"
        path.write_text("1,a.com\n", encoding="utf-8")
        with pytest.raises(ValueError, match="date"):
            ListSnapshot.from_csv(path, provider="alexa")
