"""Tests for top-list CSV parsing and writing."""

import datetime as dt
import zipfile

import pytest

from repro.listio import (
    parse_top_list_csv,
    read_archive,
    read_top_list,
    write_archive,
    write_top_list,
)
from repro.providers.base import ListArchive, ListSnapshot


class TestParse:
    def test_rank_domain_format(self):
        snapshot = parse_top_list_csv("1,google.com\n2,youtube.com\n", provider="alexa")
        assert snapshot.entries == ("google.com", "youtube.com")

    def test_majestic_style_columns(self):
        text = "1,com,google.com,extra\n2,org,wikipedia.org,extra\n"
        snapshot = parse_top_list_csv(text, provider="majestic", domain_column=2)
        assert snapshot.entries == ("google.com", "wikipedia.org")

    def test_header_rows_skipped(self):
        text = "GlobalRank,Domain\n1,google.com\n"
        assert parse_top_list_csv(text, provider="majestic").entries == ("google.com",)

    def test_duplicates_keep_first(self):
        text = "1,a.com\n2,A.COM\n3,b.com\n"
        assert parse_top_list_csv(text, provider="alexa").entries == ("a.com", "b.com")

    def test_blank_lines_and_short_rows_ignored(self):
        text = "\n1\n1,a.com\n"
        assert parse_top_list_csv(text, provider="alexa").entries == ("a.com",)

    def test_date_attached(self):
        snapshot = parse_top_list_csv("1,a.com\n", provider="alexa",
                                      date=dt.date(2018, 4, 30))
        assert snapshot.date == dt.date(2018, 4, 30)


class TestFiles:
    def test_csv_roundtrip(self, tmp_path):
        snapshot = ListSnapshot(provider="alexa", date=dt.date(2018, 1, 1),
                                entries=("a.com", "b.com"))
        path = tmp_path / "top.csv"
        write_top_list(snapshot, path)
        loaded = read_top_list(path, provider="alexa", date=snapshot.date)
        assert loaded.entries == snapshot.entries

    def test_zip_support(self, tmp_path):
        # The Alexa list ships as top-1m.csv.zip.
        zip_path = tmp_path / "top-1m.csv.zip"
        with zipfile.ZipFile(zip_path, "w") as archive:
            archive.writestr("top-1m.csv", "1,google.com\n2,netflix.com\n")
        snapshot = read_top_list(zip_path, provider="alexa")
        assert snapshot.entries == ("google.com", "netflix.com")

    def test_archive_roundtrip(self, tmp_path):
        archive = ListArchive(provider="umbrella")
        for day in range(3):
            archive.add(ListSnapshot(provider="umbrella",
                                     date=dt.date(2018, 1, 1) + dt.timedelta(days=day),
                                     entries=(f"day{day}.com", "shared.com")))
        write_archive(archive, tmp_path / "archive")
        loaded = read_archive(tmp_path / "archive", provider="umbrella")
        assert len(loaded) == 3
        assert loaded[0].entries == archive[0].entries

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_top_list(tmp_path / "absent.csv", provider="alexa")
