"""Shared fixtures.

The expensive artefacts (synthetic Internet, simulation run, measurement
harness) are session-scoped and reused by every analysis/integration
test, so the suite stays fast despite exercising the full pipeline.
"""

from __future__ import annotations

import pytest

from repro.measurement.harness import MeasurementHarness
from repro.population.config import SimulationConfig
from repro.population.internet import SyntheticInternet
from repro.population.traffic import TrafficSimulator
from repro.providers.simulation import SimulationRun, run_simulation


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--run-scale", action="store_true", default=False,
        help="run paper_bench-scale tests (marked 'scale'; ~100k-entry "
             "corpora — see `make test-scale`)")


def pytest_collection_modifyitems(config: pytest.Config, items) -> None:
    """Tier-1 skips ``scale``-marked tests unless explicitly enabled.

    The paper_bench matrix builds 100k-entry corpora; it belongs in its
    own CI job (and ``make test-scale``), not on every local run.
    """
    if config.getoption("--run-scale"):
        return
    skip = pytest.mark.skip(reason="paper_bench scale; enable with --run-scale")
    for item in items:
        if "scale" in item.keywords:
            item.add_marker(skip)


@pytest.fixture(scope="session")
def small_config() -> SimulationConfig:
    """The small simulation configuration used across the test suite.

    Includes an Alexa structural change on day 9 so both regimes are
    exercised.
    """
    return SimulationConfig.small(alexa_change_day=9)


@pytest.fixture(scope="session")
def small_run(small_config: SimulationConfig) -> SimulationRun:
    """A fully simulated observation period (archives for all providers)."""
    return run_simulation(small_config)


@pytest.fixture(scope="session")
def internet(small_run: SimulationRun) -> SyntheticInternet:
    """The synthetic Internet behind the small run."""
    return small_run.internet


@pytest.fixture(scope="session")
def traffic(small_run: SimulationRun) -> TrafficSimulator:
    """The traffic simulator behind the small run."""
    return small_run.traffic


@pytest.fixture(scope="session")
def harness(small_run: SimulationRun) -> MeasurementHarness:
    """A measurement harness bound to the small run's Internet."""
    return MeasurementHarness(small_run.internet)
