"""Cross-cutting invariants of the simulated dataset.

These are the properties every analysis implicitly relies on: snapshots
are well-formed ranked lists, archives are date-aligned, and the whole
pipeline is deterministic in the configuration seed.
"""

import numpy as np

from repro.population.config import SimulationConfig
from repro.providers.simulation import run_simulation


class TestSnapshotInvariants:
    def test_entries_unique_and_bounded(self, small_run):
        for archive in small_run.archives.values():
            for snapshot in archive:
                assert len(snapshot.entries) == len(set(snapshot.entries))
                assert len(snapshot) <= small_run.config.list_size

    def test_dates_strictly_increasing(self, small_run):
        for archive in small_run.archives.values():
            dates = archive.dates()
            assert all(a < b for a, b in zip(dates, dates[1:]))

    def test_rank_of_consistent_with_order(self, small_run):
        snapshot = small_run.umbrella[-1]
        for rank, domain in enumerate(snapshot.entries[:50], start=1):
            assert snapshot.rank_of(domain) == rank

    def test_entries_are_normalised_names(self, small_run):
        for archive in small_run.archives.values():
            snapshot = archive[0]
            for entry in snapshot.entries:
                assert entry == entry.strip().lower().rstrip(".")
                assert " " not in entry

    def test_listed_domains_exist_in_population_or_catalogue(self, small_run, internet):
        known = {d.name for d in internet.domains} | {f.fqdn for f in internet.fqdns}
        for archive in small_run.archives.values():
            assert set(archive[-1].entries) <= known


class TestDeterminism:
    def test_same_seed_same_archives(self, small_config, small_run):
        other = run_simulation(small_config, use_cache=False)
        for name in small_run.archives:
            for date in small_run.archives[name].dates():
                assert other.archives[name][date].entries == \
                    small_run.archives[name][date].entries

    def test_different_seed_different_lists(self, small_config, small_run):
        changed = SimulationConfig.small(alexa_change_day=9, seed=small_config.seed + 1)
        other = run_simulation(changed, use_cache=False)
        assert other.alexa[-1].entries != small_run.alexa[-1].entries

    def test_scores_are_finite(self, small_run):
        for name in ("alexa", "umbrella", "majestic"):
            provider = small_run.provider(name)
            scores = provider.windowed_score(small_run.config.n_days - 1)
            assert np.isfinite(scores).all()
            assert (scores >= 0).all()

    def test_measurement_is_pure(self, harness, small_run):
        """Measuring the same target twice yields identical results."""
        from repro.measurement.harness import TargetSet

        target = TargetSet.from_snapshot(small_run.majestic[-1], top_n=80)
        first = harness.measure_dns(target)
        second = harness.measure_dns(target)
        assert first.nxdomain == second.nxdomain
        assert first.ipv6_enabled == second.ipv6_enabled
        assert first.as_counts_v4 == second.as_counts_v4
