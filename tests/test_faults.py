"""The fault-injection layer itself: determinism, kinds, plan plumbing.

Chaos tests are only trustworthy if the chaos is: the same seed must
fire the same faults at the same calls every run, an uninstalled plan
must be invisible, and each fault kind must surface as the documented
exception shape.
"""

import io

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultRule, InjectedCrash, InjectedFault


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.uninstall()
    yield
    faults.uninstall()


def _run_schedule(seed: int, calls: int = 40) -> list[tuple[str, int, str]]:
    plan = FaultPlan(seed, [
        FaultRule("store.shard.write", "error", probability=0.3),
        FaultRule("store.manifest.*", "crash", on_calls=(3,)),
        FaultRule("api.*", "drop", probability=0.2, max_fires=2),
    ])
    for _ in range(calls):
        for point in ("store.shard.write", "store.manifest.fsync",
                      "api.response.write"):
            try:
                plan.hit(point)
            except (InjectedFault, InjectedCrash, ConnectionResetError):
                pass
    return list(plan.fired)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        assert _run_schedule(7) == _run_schedule(7)

    def test_different_seeds_differ(self):
        assert _run_schedule(7) != _run_schedule(8)

    def test_points_are_independent_streams(self):
        """Adding a rule for one point never shifts another point's draws."""
        base = FaultPlan(11, [FaultRule("a", "error", probability=0.5)])
        extended = FaultPlan(11, [FaultRule("a", "error", probability=0.5),
                                  FaultRule("b", "error", probability=0.5)])
        for plan in (base, extended):
            for _ in range(30):
                try:
                    plan.hit("a")
                except InjectedFault:
                    pass
                try:
                    plan.hit("b")
                except InjectedFault:
                    pass
        a_base = [f for f in base.fired if f[0] == "a"]
        a_ext = [f for f in extended.fired if f[0] == "a"]
        assert a_base == a_ext


class TestKinds:
    def test_error_is_oserror(self):
        plan = FaultPlan(1, [FaultRule("p", "error")])
        with pytest.raises(OSError) as excinfo:
            plan.hit("p")
        assert excinfo.value.point == "p"

    def test_crash_is_not_exception(self):
        plan = FaultPlan(1, [FaultRule("p", "crash")])
        with pytest.raises(BaseException) as excinfo:
            plan.hit("p")
        assert not isinstance(excinfo.value, Exception)
        assert faults.is_crash(excinfo.value)

    def test_drop_is_connection_reset(self):
        plan = FaultPlan(1, [FaultRule("p", "drop")])
        with pytest.raises(ConnectionResetError):
            plan.hit("p")

    def test_slow_sleeps_and_passes(self):
        plan = FaultPlan(1, [FaultRule("p", "slow", delay=0.0)])
        plan.hit("p")  # must not raise
        assert plan.fired == [("p", 1, "slow")]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("p", "explode")

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            FaultRule("p", "error", probability=1.5)


class TestTornWrites:
    def test_torn_write_keeps_prefix(self):
        plan = FaultPlan(1, [FaultRule("p", "torn", keep_bytes=3)])
        handle = io.BytesIO()
        with pytest.raises(InjectedFault):
            plan.torn_write("p", handle, b"abcdef")
        assert handle.getvalue() == b"abc"

    def test_torn_prefix_is_deterministic(self):
        def torn_len(seed):
            plan = FaultPlan(seed, [FaultRule("p", "torn")])
            handle = io.BytesIO()
            with pytest.raises(InjectedFault):
                plan.torn_write("p", handle, b"x" * 100)
            return len(handle.getvalue())

        assert torn_len(5) == torn_len(5)
        assert 0 <= torn_len(5) < 100

    def test_clean_write_passes_through(self):
        plan = FaultPlan(1, [])
        handle = io.BytesIO()
        plan.torn_write("p", handle, b"abcdef")
        assert handle.getvalue() == b"abcdef"


class TestScheduling:
    def test_on_calls_targets_exact_calls(self):
        plan = FaultPlan(1, [FaultRule("p", "error", on_calls=(2, 4))])
        outcomes = []
        for _ in range(5):
            try:
                plan.hit("p")
                outcomes.append("ok")
            except InjectedFault:
                outcomes.append("fault")
        assert outcomes == ["ok", "fault", "ok", "fault", "ok"]

    def test_max_fires_lets_retries_win(self):
        plan = FaultPlan(1, [FaultRule("p", "error", max_fires=2)])
        failures = 0
        for _ in range(5):
            try:
                plan.hit("p")
            except InjectedFault:
                failures += 1
        assert failures == 2
        assert plan.calls("p") == 5

    def test_pattern_matches_namespaces(self):
        plan = FaultPlan(1, [FaultRule("store.*", "error")])
        with pytest.raises(InjectedFault):
            plan.hit("store.shard.write")
        plan.hit("api.request")  # unmatched: passes

    def test_install_uninstall(self):
        assert faults.ACTIVE is None
        plan = faults.install(FaultPlan(1))
        assert faults.ACTIVE is plan
        faults.uninstall()
        assert faults.ACTIVE is None

    def test_injected_context_manager(self):
        with faults.injected(FaultPlan(3, [FaultRule("p", "error")])) as plan:
            assert faults.ACTIVE is plan
            with pytest.raises(InjectedFault):
                plan.hit("p")
        assert faults.ACTIVE is None


class TestFireCounters:
    def test_fired_counter_matches_plan_trace(self):
        # Satellite of the observability PR: every plan.fired append is
        # mirrored into repro_faults_fired_total{point,kind}, so the
        # chaos CI job can assert fire counts from /v1/metrics alone.
        from collections import Counter

        from repro.obs import metrics

        def counts():
            samples = metrics.parse_exposition(metrics.render().decode("utf-8"))
            return {key: value for key, value in samples.items()
                    if key.startswith("repro_faults_fired_total{")}

        before = counts()
        plan = FaultPlan(11, [
            FaultRule("store.shard.write", "error", probability=0.5),
            FaultRule("api.*", "drop", on_calls=(2, 3)),
            FaultRule("replica.fetch", "torn", max_fires=1),
        ])
        for _ in range(20):
            for point in ("store.shard.write", "api.response.write",
                          "replica.fetch"):
                try:
                    plan.hit(point)
                except (InjectedFault, ConnectionResetError):
                    pass
        assert plan.fired  # the schedule actually executed
        after = counts()
        expected = Counter((point, kind) for point, _, kind in plan.fired)
        deltas = {key: after.get(key, 0) - before.get(key, 0)
                  for key in set(before) | set(after)}
        for (point, kind), fires in expected.items():
            key = (f'repro_faults_fired_total{{point="{point}",'
                   f'kind="{kind}"}}')
            assert deltas.pop(key) == fires
        # No other fired-counter sample moved.
        assert not any(deltas.values())
