"""Tests for the survey corpus and the paper's reference data."""

import pytest

from repro.survey.classify import Dependence, ListFamily, ListUsage
from repro.survey.corpus import (
    Paper,
    SurveyCorpus,
    Venue,
    build_corpus,
    reference_corpus,
)


class TestCorpusModel:
    def test_add_and_query(self):
        corpus = SurveyCorpus()
        corpus.add_venue(Venue(name="IMC", area="Measurements", total_papers=10))
        corpus.add_paper(Paper(identifier="p1", venue="IMC", uses_top_list=True,
                               usages=(ListUsage(ListFamily.ALEXA, "1M"),),
                               dependence=Dependence.DEPENDENT))
        corpus.add_paper(Paper(identifier="p2", venue="IMC", uses_top_list=False))
        assert len(corpus) == 2
        assert len(corpus.users()) == 1
        assert corpus.usage_share("IMC") == pytest.approx(0.1)

    def test_unknown_venue_rejected(self):
        corpus = SurveyCorpus()
        with pytest.raises(KeyError):
            corpus.add_paper(Paper(identifier="p", venue="nowhere", uses_top_list=False))

    def test_user_requires_dependence(self):
        with pytest.raises(ValueError):
            Paper(identifier="p", venue="IMC", uses_top_list=True)

    def test_non_user_cannot_have_usages(self):
        with pytest.raises(ValueError):
            Paper(identifier="p", venue="IMC", uses_top_list=False,
                  usages=(ListUsage(ListFamily.ALEXA, "1M"),))

    def test_replicable_basics(self):
        paper = Paper(identifier="p", venue="IMC", uses_top_list=True,
                      dependence=Dependence.DEPENDENT,
                      states_list_date=True, states_measurement_date=True)
        assert paper.replicable_basics

    def test_build_corpus_helper(self):
        corpus = build_corpus([Venue("IMC", "Measurements", 5)],
                              [Paper(identifier="p", venue="IMC", uses_top_list=False)])
        assert len(corpus) == 1


class TestReferenceCorpus:
    @pytest.fixture(scope="class")
    def corpus(self) -> SurveyCorpus:
        return reference_corpus()

    def test_total_counts(self, corpus):
        assert len(corpus) == 687
        assert len(corpus.users()) == 69
        assert corpus.usage_share() == pytest.approx(69 / 687)

    def test_venue_counts(self, corpus):
        assert len(corpus.papers_at("ACM IMC")) == 42
        assert len(corpus.users("ACM IMC")) == 11
        assert len(corpus.users("WWW")) == 13

    def test_dependence_totals(self, corpus):
        users = corpus.users()
        by_class = {cls: sum(1 for p in users if p.dependence is cls) for cls in Dependence}
        assert by_class[Dependence.DEPENDENT] == 45
        assert by_class[Dependence.VERIFICATION] == 17
        assert by_class[Dependence.INDEPENDENT] == 7

    def test_measurement_area_most_reliant(self, corpus):
        # The paper: Internet measurement venues use top lists most (22.2%).
        measurement_venues = [v.name for v in corpus.venues.values()
                              if v.area == "Measurements"]
        users = sum(len(corpus.users(v)) for v in measurement_venues)
        total = sum(corpus.venues[v].total_papers for v in measurement_venues)
        assert users / total == pytest.approx(18 / 81, rel=0.01)
        assert users / total > corpus.usage_share()

    def test_usage_pool_distributed(self, corpus):
        # Every using paper has at least one list usage; some have several.
        users = corpus.users()
        assert all(paper.usages for paper in users)
        assert any(len(paper.usages) > 1 for paper in users)
