"""Parity and cache-invalidation tests for the trie-based PSL matcher.

The trie matcher must agree with the original candidate-enumeration
algorithm (reimplemented here as a reference) on every rule kind the PSL
defines: normal single- and multi-label rules, wildcard rules (``*.ck``),
exception rules (``!www.ck``) and unknown TLDs (the implicit ``*`` rule).
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

import pytest

from repro.domain.name import base_domain, sld_group
from repro.domain.psl import DEFAULT_RULES, PublicSuffixList


class ReferencePsl:
    """The seed's O(labels²) candidate-enumeration matcher, kept as oracle."""

    def __init__(self, rules) -> None:
        self._exact: set[str] = set()
        self._wildcard: set[str] = set()
        self._exception: set[str] = set()
        for rule in rules:
            rule = rule.strip().lower().strip(".")
            if rule.startswith("!"):
                self._exception.add(rule[1:])
            elif rule.startswith("*."):
                self._wildcard.add(rule[2:])
            else:
                self._exact.add(rule)

    def public_suffix(self, name: str) -> Optional[str]:
        name = name.strip().lower().strip(".")
        if not name:
            return None
        labels = name.split(".")
        best: Optional[Sequence[str]] = None
        for start in range(len(labels)):
            candidate = labels[start:]
            cand_str = ".".join(candidate)
            parent = ".".join(candidate[1:])
            if cand_str in self._exception:
                match = candidate[1:]
                if best is None or len(match) > len(best):
                    best = match
                continue
            if cand_str in self._exact:
                if best is None or len(candidate) > len(best):
                    best = candidate
            if parent and parent in self._wildcard and cand_str not in self._exception:
                if best is None or len(candidate) > len(best):
                    best = candidate
        if best is None:
            best = labels[-1:]
        return ".".join(best)

    def base_domain(self, name: str) -> Optional[str]:
        name = name.strip().lower().strip(".")
        if not name:
            return None
        suffix = self.public_suffix(name)
        if suffix is None or name == suffix:
            return None
        suffix_labels = suffix.count(".") + 1
        labels = name.split(".")
        if len(labels) <= suffix_labels:
            return None
        return ".".join(labels[-(suffix_labels + 1):])


#: Label pool mixing known TLDs, multi-label suffix parts, wildcard and
#: exception participants, private suffix labels, and unknown labels.
LABEL_POOL = (
    "www", "foo", "bar", "baz", "example", "google", "blogspot", "tumblr",
    "co", "uk", "com", "de", "ck", "au", "jp", "io", "github",
    "unknowntld", "x", "sub", "deep", "amazonaws", "net",
)


def _random_names(seed: int, count: int) -> list[str]:
    rng = random.Random(seed)
    names = []
    for _ in range(count):
        depth = rng.randint(1, 6)
        names.append(".".join(rng.choice(LABEL_POOL) for _ in range(depth)))
    return names


class TestTrieParityDefaultRules:
    @pytest.fixture(scope="class")
    def oracle(self) -> ReferencePsl:
        return ReferencePsl(DEFAULT_RULES)

    @pytest.fixture(scope="class")
    def trie(self) -> PublicSuffixList:
        return PublicSuffixList()

    @pytest.mark.parametrize("seed", range(5))
    def test_random_names_agree(self, oracle, trie, seed):
        for name in _random_names(seed, 400):
            assert trie.public_suffix(name) == oracle.public_suffix(name), name
            assert trie.base_domain(name) == oracle.base_domain(name), name

    @pytest.mark.parametrize("name", [
        "foo.example.ck",            # wildcard: *.ck
        "example.ck",                # wildcard makes the full name a suffix
        "www.ck",                    # exception !www.ck overrides the wildcard
        "a.www.ck",                  # base domain under the exception
        "www.example.co.uk",         # multi-label rule
        "co.uk",                     # multi-label rule itself
        "x.blogspot.com",            # private suffix
        "deep.x.blogspot.com",
        "foo.bar.unknowntld",        # implicit * rule
        "unknowntld",
        "single",
        "WWW.Example.COM.",          # normalisation
    ])
    def test_known_shapes_agree(self, oracle, trie, name):
        assert trie.public_suffix(name) == oracle.public_suffix(name)
        assert trie.base_domain(name) == oracle.base_domain(name)

    def test_memo_repeated_lookup_stable(self, trie):
        first = trie.suffix_and_base("www.example.co.uk")
        again = trie.suffix_and_base("www.example.co.uk")
        assert first == again == ("co.uk", "example.co.uk")


class TestTrieParityCustomRules:
    CUSTOM_RULES = ("com", "co.uk", "*.ck", "!www.ck", "*.example.com",
                    "!except.example.com", "deep.multi.label.rule")

    def test_custom_rules_agree(self):
        oracle = ReferencePsl(self.CUSTOM_RULES)
        trie = PublicSuffixList(self.CUSTOM_RULES)
        for seed in range(3):
            rng = random.Random(seed + 100)
            pool = ("www", "except", "example", "com", "ck", "deep", "multi",
                    "label", "rule", "other", "uk", "co")
            for _ in range(500):
                name = ".".join(rng.choice(pool) for _ in range(rng.randint(1, 6)))
                assert trie.public_suffix(name) == oracle.public_suffix(name), name
                assert trie.base_domain(name) == oracle.base_domain(name), name

    def test_nested_wildcard(self):
        trie = PublicSuffixList(["com", "*.example.com"])
        assert trie.public_suffix("a.b.foo.example.com") == "foo.example.com"
        assert trie.base_domain("a.b.foo.example.com") == "b.foo.example.com"

    def test_exception_under_nested_wildcard(self):
        trie = PublicSuffixList(["com", "*.example.com", "!except.example.com"])
        assert trie.public_suffix("except.example.com") == "example.com"
        assert trie.base_domain("a.except.example.com") == "except.example.com"


class TestMemoInvalidation:
    def test_add_rule_after_lookup_changes_answer(self):
        psl = PublicSuffixList(["com"])
        # Prime the memo.
        assert psl.public_suffix("www.example.shop") == "shop"
        assert psl.base_domain("www.example.shop") == "example.shop"
        version_before = psl.version
        psl.add_rule("example.shop")
        assert psl.version > version_before
        # The memoised answers must have been invalidated.
        assert psl.public_suffix("www.example.shop") == "example.shop"
        assert psl.base_domain("www.example.shop") == "www.example.shop"

    def test_add_wildcard_rule_after_lookup(self):
        psl = PublicSuffixList(["com"])
        assert psl.public_suffix("a.b.zz") == "zz"
        psl.add_rule("*.zz")
        assert psl.public_suffix("a.b.zz") == "b.zz"

    def test_add_exception_rule_after_lookup(self):
        psl = PublicSuffixList(["com", "*.zz"])
        assert psl.public_suffix("www.zz") == "www.zz"
        psl.add_rule("!www.zz")
        assert psl.public_suffix("www.zz") == "zz"

    def test_default_psl_helpers_see_added_rules(self):
        # The module-level helpers memoise against the shared default PSL;
        # their cache must key on its version.
        from repro.domain import name as name_module

        psl = name_module._DEFAULT_PSL
        unique = "pslcachetest-invalidation"
        assert base_domain(f"www.{unique}.com") == f"{unique}.com"
        psl.add_rule(f"{unique}.com")
        assert base_domain(f"www.{unique}.com") == f"www.{unique}.com"
        assert sld_group(f"www.{unique}.com") == "www"

    def test_copies_get_fresh_cache_identity(self):
        import copy
        import pickle

        psl = PublicSuffixList(["com"])
        clone = copy.deepcopy(psl)
        assert clone.cache_key != psl.cache_key
        assert clone.public_suffix("a.com") == "com"
        unpickled = pickle.loads(pickle.dumps(psl))
        assert unpickled.cache_key != psl.cache_key
        assert unpickled.public_suffix("a.com") == "com"

    def test_shallow_copy_does_not_share_mutable_state(self):
        import copy

        psl = PublicSuffixList(["com"])
        clone = copy.copy(psl)
        clone.add_rule("example.com")
        # The original's trie, version, and answers are untouched.
        assert psl.public_suffix("www.example.com") == "com"
        assert clone.public_suffix("www.example.com") == "example.com"
        assert len(psl) == 1 and len(clone) == 2

    def test_single_label_exception_rule_uses_implicit_rule(self):
        # '!x' is invalid per the PSL spec; the trie matcher deliberately
        # falls through to the implicit '*' rule (the seed matcher
        # returned a broken empty-string suffix here).
        psl = PublicSuffixList(["!zz"])
        assert psl.public_suffix("zz") == "zz"
        assert psl.public_suffix("a.zz") == "zz"
        assert psl.base_domain("a.zz") == "a.zz"

    def test_memo_bound_respected(self):
        psl = PublicSuffixList(["com"], memo_size=4)
        for index in range(20):
            psl.public_suffix(f"site{index}.com")
        assert len(psl._memo) <= 4
        # Evicted names are still answered correctly.
        assert psl.public_suffix("site0.com") == "com"
