"""Tests for HSTS header parsing."""

import pytest

from repro.web.hsts import HstsPolicy, parse_hsts_header


class TestParseHstsHeader:
    def test_basic(self):
        policy = parse_hsts_header("max-age=31536000")
        assert policy is not None
        assert policy.max_age == 31536000
        assert policy.enabled

    def test_with_flags(self):
        policy = parse_hsts_header("max-age=300; includeSubDomains; preload")
        assert policy.include_subdomains
        assert policy.preload

    def test_zero_max_age_not_enabled(self):
        # The paper requires max-age > 0 to count a domain as HSTS-enabled.
        policy = parse_hsts_header("max-age=0")
        assert policy is not None
        assert not policy.enabled

    def test_missing_header(self):
        assert parse_hsts_header(None) is None
        assert parse_hsts_header("") is None

    def test_missing_max_age_invalid(self):
        assert parse_hsts_header("includeSubDomains") is None

    def test_non_numeric_max_age_invalid(self):
        assert parse_hsts_header("max-age=abc") is None

    def test_duplicate_directive_invalid(self):
        assert parse_hsts_header("max-age=1; max-age=2") is None

    def test_quoted_max_age(self):
        assert parse_hsts_header('max-age="600"').max_age == 600

    def test_unknown_directives_ignored(self):
        assert parse_hsts_header("max-age=600; future-flag=1").max_age == 600

    def test_case_insensitive_directives(self):
        policy = parse_hsts_header("MAX-AGE=600; INCLUDESUBDOMAINS")
        assert policy.max_age == 600
        assert policy.include_subdomains


class TestHstsPolicy:
    def test_header_roundtrip(self):
        policy = HstsPolicy(max_age=600, include_subdomains=True, preload=True)
        parsed = parse_hsts_header(policy.header_value())
        assert parsed == policy

    def test_minimal_header(self):
        assert HstsPolicy(max_age=10).header_value() == "max-age=10"
