"""Tests for the observability layer (PR 8).

Covers the registry/rendering contract (Prometheus text-exposition
v0.0.4, byte-stable for a frozen registry), the ``/v1/metrics`` and
``/v1/health`` endpoint semantics, trace-id propagation over the wire
and into replica fetches, the structured-log schema, error counters,
concurrent scrape-while-ingest safety, and the dormant-overhead bound
(the instrumentation added to a cached read costs under 2%).
"""

import datetime as dt
import io
import json
import threading
import time
import urllib.request

import pytest

from repro import faults
from repro.obs import logging as obslog
from repro.obs import metrics, tracing
from repro.obs.metrics import MetricsRegistry, parse_exposition
from repro.providers.base import ListArchive, ListSnapshot
from repro.service.api import QueryService, create_server
from repro.service.replica import _log_request
from repro.service.store import ArchiveStore


def _scrape(service):
    """Parsed samples of the service's ``/v1/metrics`` answer."""
    response = service.handle_request("/v1/metrics")
    assert response.status == 200
    return parse_exposition(response.body.decode("utf-8"))


def _small_service(tmp_path, days=2):
    snapshots = [
        ListSnapshot(provider="alexa",
                     date=dt.date(2018, 1, 1) + dt.timedelta(days=day),
                     entries=("a.com", "b.com", f"day{day}.com"))
        for day in range(days)]
    store = ArchiveStore(tmp_path / "obs-store")
    store.append_archive(ListArchive.from_snapshots(snapshots))
    return QueryService(store)


class TestRegistry:
    def test_counter_inc_and_value(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_hits_total", "help")
        counter.inc()
        counter.inc(3)
        assert counter.value() == 4

    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("t_x_total", "help") \
            is registry.counter("t_x_total", "help")

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("t_y_total", "help")
        with pytest.raises(ValueError):
            registry.gauge("t_y_total", "help")

    def test_labelnames_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("t_z_total", "help", labelnames=("a",))
        with pytest.raises(ValueError):
            registry.counter("t_z_total", "help", labelnames=("b",))

    def test_invalid_metric_and_label_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("2bad", "help")
        with pytest.raises(ValueError):
            registry.counter("t_ok_total", "help", labelnames=("not-ok",))

    def test_labeled_children(self):
        registry = MetricsRegistry()
        family = registry.counter("t_codes_total", "help",
                                  labelnames=("code",))
        family.labels(code="404").inc()
        family.labels(code="404").inc()
        family.labels(code="500").inc()
        samples = parse_exposition(registry.render().decode("utf-8"))
        assert samples['t_codes_total{code="404"}'] == 2
        assert samples['t_codes_total{code="500"}'] == 1

    def test_gauge_set_and_inc(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("t_lag", "help")
        gauge.set(7)
        gauge.inc(-2)
        assert gauge.value() == 5

    def test_histogram_buckets_sum_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("t_seconds", "help",
                                       buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        samples = parse_exposition(registry.render().decode("utf-8"))
        # Cumulative buckets: le="0.1" holds 1, le="1" holds 2,
        # +Inf holds all three and equals _count.  (Whole floats render
        # without a fraction, so the bound 1.0 appears as le="1".)
        assert samples['t_seconds_bucket{le="0.1"}'] == 1
        assert samples['t_seconds_bucket{le="1"}'] == 2
        assert samples['t_seconds_bucket{le="+Inf"}'] == 3
        assert samples["t_seconds_count"] == 3
        assert samples["t_seconds_sum"] == pytest.approx(5.55)

    def test_histogram_rejects_unsorted_buckets(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("t_bad", "help", buckets=(1.0, 0.5))

    def test_reset_zeroes_without_forgetting_families(self):
        registry = MetricsRegistry()
        counter = registry.counter("t_r_total", "help")
        counter.inc(9)
        registry.reset()
        assert registry.counter("t_r_total", "help").value() == 0


class TestRendering:
    def _populated(self):
        registry = MetricsRegistry()
        registry.counter("t_b_total", "help b").inc(2)
        registry.counter("t_a_total", "help a").inc()
        registry.gauge("t_g", "gauge").set(1.5)
        family = registry.counter("t_l_total", "labeled",
                                  labelnames=("p", "q"))
        family.labels(p="x", q="2").inc()
        family.labels(p="x", q="1").inc()
        return registry

    def test_render_is_byte_stable(self):
        registry = self._populated()
        assert registry.render() == registry.render()

    def test_families_and_children_sorted(self):
        text = self._populated().render().decode("utf-8")
        sample_lines = [line for line in text.splitlines()
                        if line and not line.startswith("#")]
        names = [line.split("{")[0].split(" ")[0] for line in sample_lines]
        assert names == sorted(names)
        assert text.index('q="1"') < text.index('q="2"')

    def test_help_and_type_precede_samples(self):
        text = self._populated().render().decode("utf-8")
        lines = text.splitlines()
        for name, kind in (("t_a_total", "counter"), ("t_g", "gauge")):
            index = lines.index(f"# HELP {name} " + {
                "t_a_total": "help a", "t_g": "gauge"}[name])
            assert lines[index + 1] == f"# TYPE {name} {kind}"
            assert lines[index + 2].startswith(name + " ")

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        family = registry.counter("t_esc_total", "help", labelnames=("v",))
        family.labels(v='a"b\\c\nd').inc()
        text = registry.render().decode("utf-8")
        assert 't_esc_total{v="a\\"b\\\\c\\nd"} 1' in text

    def test_extra_families_merge_and_collide(self):
        registry = MetricsRegistry()
        registry.counter("t_real_total", "help").inc()
        extra = [("t_extra", "gauge", "injected", [({}, 4)])]
        samples = parse_exposition(
            registry.render(extra=extra).decode("utf-8"))
        assert samples["t_extra"] == 4
        assert samples["t_real_total"] == 1
        with pytest.raises(ValueError):
            registry.render(
                extra=[("t_real_total", "gauge", "clash", [({}, 0)])])

    def test_parse_exposition_round_trips_values(self):
        registry = self._populated()
        samples = parse_exposition(registry.render().decode("utf-8"))
        assert samples["t_a_total"] == 1
        assert samples["t_b_total"] == 2
        assert samples["t_g"] == 1.5
        assert samples['t_l_total{p="x",q="1"}'] == 1


class TestTracing:
    def test_ids_are_unique_16_hex(self):
        first, second = tracing.new_trace_id(), tracing.new_trace_id()
        assert first != second
        for tid in (first, second):
            assert len(tid) == 16
            int(tid, 16)  # hex or raises

    def test_trace_context_sets_and_restores(self):
        assert tracing.current_trace_id() is None
        with tracing.trace("abc123") as tid:
            assert tid == "abc123"
            assert tracing.current_trace_id() == "abc123"
        assert tracing.current_trace_id() is None

    def test_activate_deactivate_nest(self):
        outer = tracing.activate("outer")
        inner = tracing.activate("inner")
        assert tracing.current_trace_id() == "inner"
        tracing.deactivate(inner)
        assert tracing.current_trace_id() == "outer"
        tracing.deactivate(outer)
        assert tracing.current_trace_id() is None


class TestLogging:
    @pytest.fixture()
    def captured(self):
        stream = io.StringIO()
        saved = dict(obslog._state)
        obslog.configure(level="debug", stream=stream)
        try:
            yield stream
        finally:
            obslog._state.update(saved)

    def test_schema_and_key_order(self, captured):
        with tracing.trace("feedface00000001"):
            obslog.log_event("unit.test", level="info", alpha=1, beta="two")
        record = json.loads(captured.getvalue())
        assert list(record) == ["ts", "level", "event", "trace_id",
                                "alpha", "beta"]
        assert record["level"] == "info"
        assert record["event"] == "unit.test"
        assert record["trace_id"] == "feedface00000001"
        assert record["alpha"] == 1 and record["beta"] == "two"

    def test_trace_id_null_outside_a_trace(self, captured):
        obslog.log_event("unit.untraced")
        assert json.loads(captured.getvalue())["trace_id"] is None

    def test_threshold_filters(self, captured):
        obslog.configure(level="warning")
        obslog.log_event("unit.suppressed", level="info")
        assert captured.getvalue() == ""
        assert not obslog.enabled("info")
        obslog.log_event("unit.kept", level="error")
        assert json.loads(captured.getvalue())["event"] == "unit.kept"

    def test_unserialisable_fields_fall_back_to_str(self, captured):
        obslog.log_event("unit.coerced", when=dt.date(2018, 1, 1))
        assert json.loads(captured.getvalue())["when"] == "2018-01-01"

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            obslog.configure(level="loud")


class TestMetricsEndpoint:
    def test_content_type_and_cache_bypass(self, tmp_path):
        service = _small_service(tmp_path)
        response = service.handle_request("/v1/metrics")
        assert response.status == 200
        assert response.headers["Content-Type"] == \
            "text/plain; version=0.0.4; charset=utf-8"
        assert response.headers["Cache-Control"] == "no-store"
        assert response.headers["X-Repro-Cache"] == "bypass"

    def test_unknown_param_rejected(self, tmp_path):
        service = _small_service(tmp_path)
        assert service.handle_request("/v1/metrics?verbose=1").status == 400

    def test_scrape_never_pollutes_the_lru(self, tmp_path):
        service = _small_service(tmp_path)
        before = _scrape(service)["repro_cache_entries"]
        _scrape(service)
        assert _scrape(service)["repro_cache_entries"] == before

    def test_cache_counters_move(self, tmp_path):
        service = _small_service(tmp_path)
        target = "/v1/domains/a.com/history"
        service.handle_request(target)  # miss
        service.handle_request(target)  # hit
        service.handle_request(target)  # hit
        samples = _scrape(service)
        assert samples["repro_cache_misses_total"] == 1
        assert samples["repro_cache_hits_total"] == 2
        assert samples["repro_cache_entries"] == 1

    def test_ingest_counters_move(self, tmp_path):
        service = _small_service(tmp_path)
        before = parse_exposition(metrics.render().decode("utf-8"))
        response = service.handle_request(
            "/v1/ingest?provider=alexa&date=2018-01-03",
            {"Content-Type": "text/csv"},
            method="POST",
            body=b"1,a.com\r\n2,bad..label\r\n3,z.com\r\n")
        assert response.status == 200
        after = parse_exposition(metrics.render().decode("utf-8"))

        def delta(name):
            return after.get(name, 0) - before.get(name, 0)

        assert delta("repro_ingest_days_total") == 1
        assert delta("repro_ingest_rows_total") == 2
        assert delta("repro_ingest_skipped_rows_total") == 1

    def test_store_and_index_families_present(self, tmp_path):
        service = _small_service(tmp_path)
        service.handle_request("/v1/domains/a.com/history")
        samples = _scrape(service)
        assert samples["repro_store_version"] == service.store.version
        assert samples["repro_store_chunks_inflated_total"] > 0
        assert samples["repro_index_lookups_total"] > 0


class TestHealthSatellite:
    def test_health_reports_cache_and_chunk_stats(self, tmp_path):
        service = _small_service(tmp_path)
        target = "/v1/domains/a.com/history"
        service.handle_request(target)
        service.handle_request(target)
        payload = service.handle_request("/v1/health").json()
        cache = payload["cache"]
        assert cache["capacity"] == service.cache_size
        assert cache["entries"] == 1
        assert cache["hits"] == 1 and cache["misses"] == 1
        assert cache["evictions"] == 0
        assert cache["hit_ratio"] == 0.5
        chunks = payload["store_chunks"]
        assert chunks["inflated"] > 0
        assert chunks["bytes_inflated"] > chunks["inflated"]

    def test_hit_ratio_null_before_any_lookup(self, tmp_path):
        service = _small_service(tmp_path)
        payload = service.handle_request("/v1/health").json()
        assert payload["cache"]["hit_ratio"] is None

    def test_evictions_counted(self, tmp_path):
        service = _small_service(tmp_path)
        service.cache_size = 1
        service.handle_request("/v1/domains/a.com/history")
        service.handle_request("/v1/domains/b.com/history")
        payload = service.handle_request("/v1/health").json()
        assert payload["cache"]["evictions"] == 1
        assert payload["cache"]["entries"] == 1


class TestErrorCounters:
    def _delta(self, before, after, name):
        return after.get(name, 0) - before.get(name, 0)

    def test_error_envelopes_counted_by_status(self, tmp_path):
        service = _small_service(tmp_path)
        before = parse_exposition(metrics.render().decode("utf-8"))
        service.handle_request("/v1/providers/nosuch/stability")
        service.handle_request("/nope")
        service.handle_request("/v1/providers/alexa/stability?top_n=zero")
        after = parse_exposition(metrics.render().decode("utf-8"))
        assert self._delta(before, after,
                           'repro_http_errors_total{code="404"}') == 2
        assert self._delta(before, after,
                           'repro_http_errors_total{code="400"}') == 1

    def test_degraded_answers_counted(self, tmp_path):
        service = _small_service(tmp_path)
        before = parse_exposition(metrics.render().decode("utf-8"))
        plan = faults.FaultPlan(7, [
            faults.FaultRule("api.request", "error", max_fires=1)])
        with faults.injected(plan):
            response = service.handle_request("/v1/meta")
        assert response.status == 503
        after = parse_exposition(metrics.render().decode("utf-8"))
        assert self._delta(before, after, "repro_http_degraded_total") == 1
        assert self._delta(before, after,
                           'repro_http_errors_total{code="503"}') == 1

    def test_unhandled_handler_errors_counted(self, tmp_path):
        service = _small_service(tmp_path)
        server = create_server(service)
        try:
            before = parse_exposition(metrics.render().decode("utf-8"))
            try:
                raise RuntimeError("escaped the handler")
            except RuntimeError:
                server.handle_error(None, ("127.0.0.1", 9))
            after = parse_exposition(metrics.render().decode("utf-8"))
            assert len(server.unhandled_errors) == 1
            assert self._delta(before, after,
                               "repro_http_unhandled_errors_total") == 1
            # Client disconnects are not failures: neither recorded nor
            # counted.
            try:
                raise ConnectionResetError("client went away")
            except ConnectionResetError:
                server.handle_error(None, ("127.0.0.1", 9))
            final = parse_exposition(metrics.render().decode("utf-8"))
            assert len(server.unhandled_errors) == 1
            assert self._delta(after, final,
                               "repro_http_unhandled_errors_total") == 0
        finally:
            server.server_close()


class TestWireTracing:
    @pytest.fixture()
    def wire(self, tmp_path):
        service = _small_service(tmp_path)
        server = create_server(service)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield f"http://127.0.0.1:{port}"
        finally:
            server.shutdown()
            server.server_close()

    def test_request_id_echoed_verbatim(self, wire):
        request = urllib.request.Request(
            f"{wire}/v1/meta", headers={"X-Request-Id": "cafe0001deadbeef"})
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.headers["X-Request-Id"] == "cafe0001deadbeef"

    def test_request_id_generated_when_absent(self, wire):
        with urllib.request.urlopen(f"{wire}/v1/meta",
                                    timeout=10) as response:
            generated = response.headers["X-Request-Id"]
        assert generated and len(generated) == 16
        int(generated, 16)
        with urllib.request.urlopen(f"{wire}/v1/meta",
                                    timeout=10) as response:
            assert response.headers["X-Request-Id"] != generated

    def test_request_counters_move(self, wire, tmp_path):
        before = parse_exposition(metrics.render().decode("utf-8"))
        with urllib.request.urlopen(f"{wire}/v1/meta", timeout=10):
            pass
        after = parse_exposition(metrics.render().decode("utf-8"))
        key = 'repro_http_requests_total{method="GET"}'
        assert after.get(key, 0) - before.get(key, 0) == 1
        count_key = "repro_http_request_seconds_count"
        assert after.get(count_key, 0) - before.get(count_key, 0) == 1


class TestReplicaTracing:
    def test_log_request_carries_active_trace_id(self):
        with tracing.trace("abcdef0123456789"):
            request = _log_request("http://leader:1234", since=3, limit=16)
        assert request.get_header("X-request-id") == "abcdef0123456789"
        assert "since=3" in request.full_url

    def test_log_request_generates_id_without_a_trace(self):
        assert tracing.current_trace_id() is None
        request = _log_request("http://leader:1234", since=0, limit=8)
        generated = request.get_header("X-request-id")
        assert generated and len(generated) == 16
        int(generated, 16)


class TestConcurrentScrape:
    def test_scrape_while_ingesting_is_monotone(self, tmp_path):
        # A writer appends days while scrapers poll /v1/metrics: every
        # scrape must parse, and every *_total sample must be monotone
        # non-decreasing per scraper (no torn reads, no resets).
        service = _small_service(tmp_path)
        stop = threading.Event()
        failures = []

        def writer():
            try:
                for day in range(3, 18):
                    body = json.dumps({
                        "provider": "alexa", "date": f"2018-01-{day:02d}",
                        "entries": ["a.com", "b.com", f"w{day}.com"]})
                    response = service.handle_request(
                        "/v1/ingest", {"Content-Type": "application/json"},
                        method="POST", body=body.encode("utf-8"))
                    assert response.status == 200
            except Exception as error:  # noqa: BLE001 — surfaced below
                failures.append(error)
            finally:
                stop.set()

        def scraper():
            previous = {}
            try:
                while True:
                    finished = stop.is_set()
                    samples = _scrape(service)
                    for key, value in samples.items():
                        if "_total" not in key.split("{")[0]:
                            continue
                        assert value >= previous.get(key, 0), key
                        previous[key] = value
                    if finished:
                        return
                    time.sleep(0.001)
            except Exception as error:  # noqa: BLE001 — surfaced below
                failures.append(error)

        threads = [threading.Thread(target=writer)] + \
            [threading.Thread(target=scraper) for _ in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures


class TestDormantOverhead:
    def test_hot_path_instrumentation_under_two_percent(self, tmp_path):
        # The cached read path gained exactly one plain-int increment
        # (the LRU hit counter); everything else lives at the wire layer
        # or on miss/ingest paths.  Same loop-minus-noop best-of-rounds
        # method as benchmarks/run_benchmarks.py --obs, scaled down to
        # test runtime.
        service = _small_service(tmp_path)
        target = "/v1/domains/a.com/history"
        assert service.handle_request(target).status == 200
        rounds, requests, loops = 3, 200, 100_000

        def timed(fn):
            start = time.perf_counter()
            fn()
            return time.perf_counter() - start

        def hammer():
            for _ in range(requests):
                service.handle_request(target)

        request_s = min(timed(hammer) for _ in range(rounds)) / requests

        def instrument():
            for _ in range(loops):
                service._cache_hits += 1

        loop_s = min(timed(instrument) for _ in range(rounds))
        noop_s = min(timed(lambda: [None for _ in range(loops)])
                     for _ in range(rounds))
        overhead = max(0.0, loop_s - noop_s) / loops / request_s
        assert overhead < 0.02, (
            f"hot-path telemetry costs {overhead:.2%} of a cached read")
