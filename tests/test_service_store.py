"""Tests for the on-disk archive store (repro.service.store)."""

import datetime as dt

import pytest

from repro.core.cache import archive_base_domain_sets
from repro.domain.psl import default_list
from repro.providers.base import ListArchive, ListSnapshot
from repro.scenarios.runner import ScenarioReport
from repro.service.store import ArchiveStore, StoreError


@pytest.fixture(scope="module")
def store_root(tmp_path_factory, small_run):
    root = tmp_path_factory.mktemp("store")
    ArchiveStore.from_archives(root, small_run.archives)
    return root


def _snapshot(provider, day, entries):
    return ListSnapshot(provider=provider,
                        date=dt.date(2018, 1, 1) + dt.timedelta(days=day),
                        entries=tuple(entries))


def _make_report(profile="unit_profile"):
    return ScenarioReport(
        profile=profile, description="unit fixture", config={"n_days": 2},
        top_k=10, providers={"alexa": {"days": 2}},
        intersection={"pairs": {}}, recommendations={})


class TestRoundTrip:
    def test_snapshots_survive_reload(self, store_root, small_run):
        store = ArchiveStore(store_root)
        for name, original in small_run.archives.items():
            loaded = store.load_archive(name)
            assert loaded.provider == name
            assert loaded.dates() == original.dates()
            for date in original.dates():
                assert loaded[date].entries == original[date].entries

    def test_manifest_inventory(self, store_root, small_run):
        store = ArchiveStore(store_root)
        assert store.providers() == tuple(sorted(small_run.archives))
        assert len(store) == sum(len(a) for a in small_run.archives.values())
        for name, original in small_run.archives.items():
            assert store.dates(name) == original.dates()

    def test_lazy_single_snapshot(self, store_root, small_run):
        store = ArchiveStore(store_root)
        original = small_run.archives["alexa"]
        date = original.dates()[5]
        assert store.load_snapshot("alexa", date).entries == original[date].entries
        with pytest.raises(KeyError):
            store.load_snapshot("alexa", dt.date(1999, 1, 1))

    def test_iter_snapshots_streams_in_order(self, store_root, small_run):
        store = ArchiveStore(store_root)
        original = small_run.archives["umbrella"]
        streamed = list(store.iter_snapshots("umbrella"))
        assert [s.date for s in streamed] == original.dates()
        assert [s.entries for s in streamed] == [s.entries for s in original]

    def test_unknown_provider(self, store_root):
        store = ArchiveStore(store_root)
        with pytest.raises(KeyError):
            store.load_archive("nosuch")
        assert store.dates("nosuch") == []


class TestWarmStart:
    def test_loaded_archive_is_pre_seeded(self, store_root, small_run):
        store = ArchiveStore(store_root)
        loaded = store.load_archive("majestic", warm=True)
        cache = loaded.__dict__.get("_analysis_cache", {})
        assert any(key[0] == "base-domain-sets" for key in cache), \
            "warm load must seed the delta engine"

    def test_seeded_sets_match_recomputation(self, store_root, small_run):
        store = ArchiveStore(store_root)
        for name, original in small_run.archives.items():
            seeded = archive_base_domain_sets(store.load_archive(name, warm=True))
            fresh = archive_base_domain_sets(original)
            assert dict(seeded) == dict(fresh), name

    def test_cold_load_has_no_seed(self, store_root):
        store = ArchiveStore(store_root)
        loaded = store.load_archive("alexa", warm=False)
        assert "_analysis_cache" not in loaded.__dict__

    def test_psl_change_skips_seeding_but_not_data(self, tmp_path, small_run):
        # Stored base ids are stamped with the PSL version at append time;
        # after a rule change they may be stale, so warm loading must fall
        # back to a cold (still correct) archive.
        original = small_run.archives["alexa"]
        store = ArchiveStore(tmp_path / "pslstore")
        store.append_archive(original)
        default_list().add_rule("store-warmth-test")
        reopened = ArchiveStore(tmp_path / "pslstore")
        loaded = reopened.load_archive("alexa", warm=True)
        assert "_analysis_cache" not in loaded.__dict__
        assert [s.entries for s in loaded] == [s.entries for s in original]


class TestAppendRules:
    def test_append_only_per_provider(self, tmp_path):
        store = ArchiveStore(tmp_path / "s")
        store.append(_snapshot("alexa", 1, ["a.com", "b.com"]))
        with pytest.raises(StoreError, match="append-only"):
            store.append(_snapshot("alexa", 1, ["a.com"]))
        with pytest.raises(StoreError, match="append-only"):
            store.append(_snapshot("alexa", 0, ["a.com"]))
        store.append(_snapshot("alexa", 2, ["a.com", "c.com"]))
        store.append(_snapshot("majestic", 0, ["a.com"]))  # other provider free
        assert [d.day for d in store.dates("alexa")] == [2, 3]

    def test_version_bumps_on_every_append(self, tmp_path):
        store = ArchiveStore(tmp_path / "s")
        assert store.version == 0
        store.append(_snapshot("alexa", 0, ["a.com"]))
        store.append(_snapshot("alexa", 1, ["b.com"]))
        assert store.version == 2

    def test_month_sharding(self, tmp_path):
        store = ArchiveStore(tmp_path / "s")
        archive = ListArchive.from_snapshots(
            [_snapshot("alexa", day, [f"d{i}.com" for i in range(5)])
             for day in (29, 30, 31, 32)])  # spans Jan 30 .. Feb 2
        store.append_archive(archive)
        shards = sorted(p.name for p in (tmp_path / "s" / "shards" / "alexa").iterdir())
        assert shards == ["2018-01.rls", "2018-02.rls"]
        loaded = ArchiveStore(tmp_path / "s").load_archive("alexa")
        assert loaded.dates() == archive.dates()
        assert [s.entries for s in loaded] == [s.entries for s in archive]

    def test_string_table_shares_repeated_domains(self, tmp_path):
        # 50 near-identical days must cost ~one day plus deltas, not 50
        # full copies: the shared string table is the compactness claim.
        entries = [f"domain-{i:04d}.example.com" for i in range(200)]
        store = ArchiveStore(tmp_path / "s")
        for day in range(50):
            rotated = entries[day % 7:] + entries[:day % 7]
            store.append(_snapshot("alexa", day, rotated), sync=False)
        store.flush()
        shard_bytes = sum(p.stat().st_size
                          for p in (tmp_path / "s" / "shards" / "alexa").iterdir())
        one_day_text = sum(len(e) for e in entries)
        assert shard_bytes < one_day_text * 10

    def test_invalid_provider_name_rejected(self, tmp_path):
        store = ArchiveStore(tmp_path / "s")
        for bad in ("../../tmp/evil", "a/b", "a\\b", ".hidden", ""):
            with pytest.raises((StoreError, ValueError)):
                store.append(_snapshot(bad, 0, ["a.com"]))
        assert store.providers() == ()

    def test_unflushed_append_is_discarded_on_reopen(self, tmp_path):
        # A crash between the shard write and the manifest flush must not
        # resurrect the orphan record: the manifest is the durable truth,
        # re-appending the "lost" day succeeds, and warm starts survive.
        store = ArchiveStore(tmp_path / "s")
        store.append(_snapshot("alexa", 0, ["a.com", "b.com"]))
        store.append(_snapshot("alexa", 1, ["b.com", "c.com"]), sync=False)
        # no flush(): simulates the crash
        reopened = ArchiveStore(tmp_path / "s")
        assert [d.day for d in reopened.dates("alexa")] == [1]
        assert len(reopened.load_archive("alexa")) == 1
        reopened.append(_snapshot("alexa", 1, ["c.com", "d.com"]))
        final = ArchiveStore(tmp_path / "s").load_archive("alexa")
        assert [s.entries for s in final] == [("a.com", "b.com"), ("c.com", "d.com")]
        cache = final.__dict__.get("_analysis_cache", {})
        assert any(key[0] == "base-domain-sets" for key in cache)

    def test_report_save_bumps_only_store_version(self, tmp_path):
        store = ArchiveStore(tmp_path / "s")
        store.append(_snapshot("alexa", 0, ["a.com"]))
        data_before = store.data_version
        store.save_report(_make_report("epoch_check"))
        assert store.data_version == data_before
        assert store.version > data_before

    def test_failed_manifest_write_rolls_back_the_tail(self, tmp_path, monkeypatch):
        # If the manifest write itself fails, the just-written shard/table
        # tail must be rolled back: appends always write at EOF, so an
        # orphan record buried under a later successful append would be
        # replayed in the newer record's place.
        store = ArchiveStore(tmp_path / "s")
        store.append(_snapshot("alexa", 0, ["a.com", "b.com"]))
        real_publish = ArchiveStore._publish_manifest

        def failing_publish(self, manifest):
            raise OSError("disk full")

        monkeypatch.setattr(ArchiveStore, "_publish_manifest", failing_publish)
        with pytest.raises(OSError):
            store.append(_snapshot("alexa", 1, ["b.com", "lost.example"]))
        monkeypatch.setattr(ArchiveStore, "_publish_manifest", real_publish)
        assert [d.day for d in store.dates("alexa")] == [1]
        # The next (different) day lands cleanly, in-process and on disk.
        store.append(_snapshot("alexa", 2, ["b.com", "c.com"]))
        for view in (store, ArchiveStore(tmp_path / "s")):
            loaded = view.load_archive("alexa")
            assert [s.entries for s in loaded] == \
                [("a.com", "b.com"), ("b.com", "c.com")]

    def test_post_publish_failure_keeps_the_record(self, tmp_path, monkeypatch):
        # If the failure lands AFTER the manifest rename (e.g. the root
        # directory fsync), the on-disk manifest already names the new
        # record: rolling the data back would brick the store, so the
        # append must instead keep the record and publish in memory.
        store = ArchiveStore(tmp_path / "s")
        store.append(_snapshot("alexa", 0, ["a.com"]))

        def failing_dir_fsync(directory):
            raise OSError("EIO on directory fd")

        monkeypatch.setattr(ArchiveStore, "_fsync_dir",
                            staticmethod(failing_dir_fsync))
        with pytest.raises(OSError):
            store.append(_snapshot("alexa", 1, ["a.com", "kept.example"]))
        monkeypatch.undo()
        assert [d.day for d in store.dates("alexa")] == [1, 2]
        for view in (store, ArchiveStore(tmp_path / "s")):
            loaded = view.load_archive("alexa")
            assert [s.entries for s in loaded] == \
                [("a.com",), ("a.com", "kept.example")]

    def test_failed_data_write_rolls_back_the_table(self, tmp_path, monkeypatch):
        # A failed shard write must also unwind the in-memory table
        # extension: otherwise the next append finds the new domains'
        # store ids in memory, never re-encodes their table records, and
        # publishes a manifest whose entry count outruns the table file.
        store = ArchiveStore(tmp_path / "s")
        store.append(_snapshot("alexa", 0, ["a.com", "b.com"]))
        real_append = ArchiveStore._append_file

        def failing_append(path, data, sync, point="store.file"):
            if path.suffix == ".rls":
                raise OSError("disk full")
            return real_append(path, data, sync, point)

        monkeypatch.setattr(ArchiveStore, "_append_file",
                            staticmethod(failing_append))
        with pytest.raises(OSError):
            store.append(_snapshot("alexa", 1, ["b.com", "lost.example"]))
        monkeypatch.setattr(ArchiveStore, "_append_file",
                            staticmethod(real_append))
        store.append(_snapshot("alexa", 1, ["b.com", "lost.example"]))
        for view in (store, ArchiveStore(tmp_path / "s")):
            loaded = view.load_archive("alexa")
            assert [s.entries for s in loaded] == \
                [("a.com", "b.com"), ("b.com", "lost.example")]

    def test_unresolvable_name_mid_append_rolls_back_table(self, tmp_path):
        # ListSnapshot tolerates malformed names (analyses skip them),
        # but the store cannot normalise their base domains: the append
        # fails mid-table-encoding, and the entries appended before the
        # bad one must be unwound or a later clean append would publish
        # a manifest counting table records never written to disk.
        from repro.domain.name import InvalidDomainError

        store = ArchiveStore(tmp_path / "s")
        store.append(_snapshot("alexa", 0, ["a.com"]))
        bad = _snapshot("alexa", 1, ["new-one.com", "bad..label", "new-two.com"])
        with pytest.raises(InvalidDomainError):
            store.append(bad)
        assert [d.day for d in store.dates("alexa")] == [1]
        store.append(_snapshot("alexa", 1, ["new-one.com", "a.com"]))
        for view in (store, ArchiveStore(tmp_path / "s")):
            loaded = view.load_archive("alexa")
            assert [s.entries for s in loaded] == \
                [("a.com",), ("new-one.com", "a.com")]

    def test_reopen_and_continue_appending(self, tmp_path):
        store = ArchiveStore(tmp_path / "s")
        store.append(_snapshot("alexa", 0, ["a.com", "b.com"]))
        reopened = ArchiveStore(tmp_path / "s")
        reopened.append(_snapshot("alexa", 1, ["b.com", "c.com"]))
        loaded = ArchiveStore(tmp_path / "s").load_archive("alexa")
        assert [s.entries for s in loaded] == [("a.com", "b.com"), ("b.com", "c.com")]


class TestReports:
    def test_report_roundtrip(self, tmp_path):
        store = ArchiveStore(tmp_path / "s")
        report = _make_report()
        store.save_report(report)
        assert store.report_names() == ("unit_profile",)
        assert store.load_report_bytes("unit_profile") == report.to_bytes()

    def test_unknown_report(self, tmp_path):
        store = ArchiveStore(tmp_path / "s")
        with pytest.raises(KeyError):
            store.load_report_bytes("nosuch")

    def test_path_traversal_rejected(self, tmp_path):
        store = ArchiveStore(tmp_path / "s")
        with pytest.raises(StoreError):
            store.load_report_bytes("../../etc/passwd")

    def test_save_bumps_version(self, tmp_path):
        store = ArchiveStore(tmp_path / "s")
        before = store.version
        store.save_report(_make_report())
        assert store.version == before + 1
