"""Tests for the TLS/HSTS prober."""

import pytest

from repro.web.hsts import HstsPolicy
from repro.web.server import HostRegistry, WebHost
from repro.web.tls import TlsProber


@pytest.fixture()
def registry() -> HostRegistry:
    registry = HostRegistry()
    registry.add(WebHost(domain="secure.example", tls_enabled=True,
                         hsts_policy=HstsPolicy(max_age=31536000)))
    registry.add(WebHost(domain="tls-only.example", tls_enabled=True))
    registry.add(WebHost(domain="plain.example", tls_enabled=False))
    registry.add(WebHost(domain="zero-hsts.example", tls_enabled=True,
                         hsts_policy=HstsPolicy(max_age=0)))
    return registry


@pytest.fixture()
def prober(registry) -> TlsProber:
    return TlsProber(registry)


class TestProbe:
    def test_tls_and_hsts(self, prober):
        result = prober.probe("secure.example")
        assert result.connected and result.tls_capable and result.hsts_enabled
        assert result.tls_version == "TLSv1.2"

    def test_tls_without_hsts(self, prober):
        result = prober.probe("tls-only.example")
        assert result.tls_capable and not result.hsts_enabled

    def test_hsts_with_zero_max_age_not_enabled(self, prober):
        assert not prober.probe("zero-hsts.example").hsts_enabled

    def test_plain_http_host(self, prober):
        result = prober.probe("plain.example")
        assert result.connected and not result.tls_capable

    def test_unreachable_host(self, prober):
        result = prober.probe("unknown.example")
        assert not result.connected and not result.tls_capable

    def test_www_prefix_retry(self, registry):
        registry.add(WebHost(domain="www.only-www.example", tls_enabled=True))
        prober = TlsProber(registry)
        assert prober.probe("only-www.example").tls_capable

    def test_www_retry_can_be_disabled(self, registry):
        registry.add(WebHost(domain="www.only-www.example", tls_enabled=True))
        prober = TlsProber(registry, try_www_prefix=False)
        assert not prober.probe("only-www.example").connected


class TestAggregates:
    def test_probe_all(self, prober):
        results = prober.probe_all(["secure.example", "plain.example"])
        assert len(results) == 2

    def test_tls_share(self, prober):
        share = prober.tls_share(["secure.example", "tls-only.example", "plain.example",
                                  "unknown.example"])
        assert share == pytest.approx(50.0)

    def test_hsts_share_of_tls(self, prober):
        share = prober.hsts_share_of_tls(["secure.example", "tls-only.example",
                                          "plain.example"])
        assert share == pytest.approx(50.0)

    def test_empty_inputs(self, prober):
        assert prober.tls_share([]) == 0.0
        assert prober.hsts_share_of_tls([]) == 0.0
