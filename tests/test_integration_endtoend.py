"""End-to-end integration tests: the paper's headline findings must emerge
from a full simulation + analysis run."""

import numpy as np
import pytest

from repro.core.rank_dynamics import churn_by_rank, kendall_tau_series, strong_correlation_share
from repro.core.stability import cumulative_unique_domains, mean_daily_change
from repro.core.structure import structure_summary
from repro.core.intersection import intersection_over_time
from repro.core.weekly import weekday_weekend_ks
from repro.measurement.harness import TargetSet
from repro.measurement.report import build_comparison_table
from repro.stats.summary import DeviationFlag


class TestHeadlineFindings:
    def test_stability_ordering(self, small_run):
        """Majestic is by far the most stable list, Umbrella churns heavily,
        Alexa becomes the most unstable after its structural change."""
        majestic = mean_daily_change(small_run.majestic)
        umbrella = mean_daily_change(small_run.umbrella)
        assert majestic < umbrella
        change_day = small_run.config.alexa_change_day
        snapshots = small_run.alexa.snapshots()
        post_change = np.mean([
            len(a.domain_set() - b.domain_set())
            for a, b in zip(snapshots[change_day:], snapshots[change_day + 1:])])
        assert post_change > umbrella

    def test_intersections_are_small_and_web_lists_agree_most(self, small_run):
        series = intersection_over_time(small_run.archives)
        last = series[max(series)]
        list_size = small_run.config.list_size
        assert last[("alexa", "majestic")] < 0.8 * list_size
        assert last[("alexa", "majestic", "umbrella")] < last[("alexa", "majestic")]
        assert last[("alexa", "umbrella")] < last[("alexa", "majestic")]

    def test_umbrella_structure_differs(self, small_run):
        alexa = structure_summary(small_run.alexa[-1])
        umbrella = structure_summary(small_run.umbrella[-1])
        majestic = structure_summary(small_run.majestic[-1])
        # Only the DNS-based list contains invalid TLDs and deep subdomains.
        assert umbrella.invalid_tld_domains > 0
        assert alexa.invalid_tld_domains == 0
        assert majestic.invalid_tld_domains == 0
        assert umbrella.base_domain_share < 0.6
        assert alexa.base_domain_share > 0.95

    def test_churn_grows_with_rank_depth(self, small_run):
        top_k = small_run.config.top_k
        sizes = [top_k, small_run.config.list_size]
        for archive in (small_run.alexa, small_run.umbrella):
            churn = churn_by_rank(archive, sizes)
            assert churn[sizes[1]] >= churn[sizes[0]]

    def test_cumulative_growth_ordering(self, small_run):
        """Over the period, the volatile lists accumulate far more distinct
        domains than the stable list (Figure 2a)."""
        total_days = small_run.config.n_days
        alexa = list(cumulative_unique_domains(small_run.alexa).values())[-1]
        umbrella = list(cumulative_unique_domains(small_run.umbrella).values())[-1]
        majestic = list(cumulative_unique_domains(small_run.majestic).values())[-1]
        assert majestic < umbrella
        assert majestic < alexa
        assert total_days > 1

    def test_rank_order_correlation_ordering(self, small_run):
        top_k = small_run.config.top_k
        majestic = strong_correlation_share(
            kendall_tau_series(small_run.majestic, top_n=top_k), 0.9)
        umbrella = strong_correlation_share(
            kendall_tau_series(small_run.umbrella, top_n=top_k), 0.9)
        assert majestic > umbrella

    def test_weekly_pattern_stronger_for_dns_list(self, small_run):
        umbrella = weekday_weekend_ks(small_run.umbrella)
        majestic = weekday_weekend_ks(small_run.majestic)
        umbrella_disjoint = sum(1 for v in umbrella.values() if v >= 0.999) / len(umbrella)
        majestic_disjoint = sum(1 for v in majestic.values() if v >= 0.999) / len(majestic)
        assert umbrella_disjoint > 2 * majestic_disjoint

    def test_top_lists_distort_measurement_results(self, small_run, harness):
        """Table 5's headline: in almost all cases top lists significantly
        exceed the general population, most extremely for the Top-1k."""
        table = build_comparison_table(
            small_run, harness=harness, sample_days=(-1,), top_k=100,
            metrics=("ipv6", "caa", "http2", "tls"))
        for characteristic in ("IPv6-enabled", "CAA-enabled", "HTTP2"):
            row = table[characteristic]
            for provider in ("alexa", "umbrella", "majestic"):
                assert row.flag(f"{provider}-1k") is DeviationFlag.EXCEEDS, (
                    characteristic, provider)
            # The Top-1k exaggerates at least as much as the full list.
            assert (row.exaggeration_factor("alexa-1k")
                    >= row.exaggeration_factor("alexa-1M"))

    def test_population_measurement_close_to_ground_truth(self, small_run, harness):
        population = TargetSet.from_zonefile(small_run.zonefile)
        report = harness.measure_dns(population)
        truth = 100.0 * np.mean([d.ipv6_enabled for d in small_run.zonefile.domains])
        assert report.ipv6_share == pytest.approx(truth, abs=1e-6)
