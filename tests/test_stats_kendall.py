"""Tests for Kendall's tau."""

import pytest

from repro.stats.kendall import kendall_tau, kendall_tau_ranked_lists

try:
    from scipy import stats as scipy_stats
except ImportError:  # pragma: no cover - scipy is installed in CI
    scipy_stats = None


class TestKendallTau:
    def test_perfect_agreement(self):
        assert kendall_tau([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        assert kendall_tau([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)

    def test_partial(self):
        # One discordant pair out of three.
        tau = kendall_tau([1, 2, 3], [1, 3, 2])
        assert tau == pytest.approx(1 / 3)

    def test_tau_a_equals_b_without_ties(self):
        x = [3, 1, 4, 1.5, 5, 9, 2.6]
        y = [2, 7, 1, 8, 2.8, 1.9, 4]
        assert kendall_tau(x, y, "a") == pytest.approx(kendall_tau(x, y, "b"))

    def test_ties_handled(self):
        tau = kendall_tau([1, 1, 2, 3], [1, 2, 3, 4], variant="b")
        assert 0 < tau <= 1.0

    def test_all_tied_returns_zero(self):
        assert kendall_tau([1, 1, 1], [1, 2, 3], variant="b") == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            kendall_tau([1, 2], [1, 2, 3])

    def test_too_short(self):
        with pytest.raises(ValueError):
            kendall_tau([1], [1])

    def test_unknown_variant(self):
        with pytest.raises(ValueError):
            kendall_tau([1, 2], [1, 2], variant="c")

    @pytest.mark.skipif(scipy_stats is None, reason="scipy not available")
    def test_matches_scipy(self):
        import numpy as np
        rng = np.random.default_rng(42)
        for _ in range(10):
            x = rng.integers(0, 20, size=50).astype(float)
            y = rng.integers(0, 20, size=50).astype(float)
            expected = scipy_stats.kendalltau(x, y).statistic
            assert kendall_tau(list(x), list(y)) == pytest.approx(expected, abs=1e-9)


class TestRankedLists:
    def test_identical_lists(self):
        assert kendall_tau_ranked_lists(["a", "b", "c"], ["a", "b", "c"]) == pytest.approx(1.0)

    def test_reversed_lists(self):
        assert kendall_tau_ranked_lists(["a", "b", "c"], ["c", "b", "a"]) == pytest.approx(-1.0)

    def test_partially_overlapping(self):
        tau = kendall_tau_ranked_lists(["a", "b", "c", "d"], ["b", "a", "x", "y"])
        # Only a and b are common, and their order is swapped.
        assert tau == pytest.approx(-1.0)

    def test_too_few_common(self):
        with pytest.raises(ValueError):
            kendall_tau_ranked_lists(["a", "b"], ["c", "d"])

    def test_no_restriction_mode(self):
        tau = kendall_tau_ranked_lists(["a", "b", "c"], ["a", "b", "c"],
                                       restrict_to_common=False)
        assert tau == pytest.approx(1.0)
