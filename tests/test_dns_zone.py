"""Tests for the authoritative zone database."""

import pytest

from repro.dns.errors import ZoneConfigurationError
from repro.dns.records import RData, Rcode, RecordType, ResourceRecord
from repro.dns.zone import ZoneDatabase


@pytest.fixture()
def zone() -> ZoneDatabase:
    db = ZoneDatabase()
    db.add_address("example.com", "192.0.2.10")
    db.add_address("example.com", "2001:db8::10")
    db.add_address("www.example.com", "192.0.2.10")
    db.add_caa("example.com", "issue", "letsencrypt.org")
    db.add_cname("cdn.example.com", "edge.cdnprovider.net")
    db.add_address("edge.cdnprovider.net", "198.51.100.5")
    return db


class TestQueries:
    def test_a_lookup(self, zone):
        response = zone.query("example.com", RecordType.A)
        assert response.rcode is Rcode.NOERROR
        assert [r.value for r in response.answers] == ["192.0.2.10"]

    def test_aaaa_lookup(self, zone):
        response = zone.query("example.com", RecordType.AAAA)
        assert [r.value for r in response.answers] == ["2001:db8::10"]

    def test_caa_lookup(self, zone):
        response = zone.query("example.com", RecordType.CAA)
        assert response.answers[0].rdata.caa_tag == "issue"

    def test_nxdomain_for_unknown_name(self, zone):
        response = zone.query("nonexistent.example.org", RecordType.A)
        assert response.rcode is Rcode.NXDOMAIN

    def test_nodata_for_existing_name_without_type(self, zone):
        response = zone.query("www.example.com", RecordType.CAA)
        assert response.rcode is Rcode.NOERROR
        assert response.is_empty

    def test_ancestor_of_existing_name_is_not_nxdomain(self, zone):
        # cdn.example.com exists, so example.com's parent "com" exists too.
        response = zone.query("com", RecordType.A)
        assert response.rcode is Rcode.NOERROR

    def test_cname_returned_for_other_qtypes(self, zone):
        response = zone.query("cdn.example.com", RecordType.A)
        assert response.rcode is Rcode.NOERROR
        assert response.answers[0].rtype is RecordType.CNAME

    def test_case_insensitive(self, zone):
        assert not zone.query("EXAMPLE.COM.", RecordType.A).is_empty


class TestMutation:
    def test_contains(self, zone):
        assert "example.com" in zone
        assert "missing.test" not in zone

    def test_cname_conflicts_rejected(self):
        db = ZoneDatabase()
        db.add_address("a.com", "192.0.2.1")
        with pytest.raises(ZoneConfigurationError):
            db.add_cname("a.com", "b.com")

    def test_other_type_on_cname_rejected(self):
        db = ZoneDatabase()
        db.add_cname("a.com", "b.com")
        with pytest.raises(ZoneConfigurationError):
            db.add_address("a.com", "192.0.2.1")

    def test_duplicate_cname_rejected(self):
        db = ZoneDatabase()
        db.add_cname("a.com", "b.com")
        with pytest.raises(ZoneConfigurationError):
            db.add_cname("a.com", "c.com")

    def test_remove_name(self, zone):
        zone.remove_name("www.example.com")
        response = zone.query("www.example.com", RecordType.A)
        assert response.rcode is Rcode.NXDOMAIN

    def test_remove_keeps_existing_descendants(self, zone):
        zone.remove_name("example.com")
        # www.example.com still exists, so example.com is NOERROR/NODATA.
        assert zone.query("example.com", RecordType.A).rcode is Rcode.NOERROR

    def test_records_accessor(self, zone):
        assert len(zone.records("example.com")) == 3
        assert len(zone.records("example.com", RecordType.A)) == 1

    def test_bulk_load(self):
        db = ZoneDatabase()
        count = db.bulk_load([
            ResourceRecord("a.com", RecordType.A, RData.for_address("192.0.2.1")),
            ResourceRecord("b.com", RecordType.A, RData.for_address("192.0.2.2")),
        ])
        assert count == 2
        assert len(db) == 2

    def test_len_counts_names_with_records(self, zone):
        # example.com, www.example.com, cdn.example.com, edge.cdnprovider.net
        assert len(zone) == 4
