"""Tests for the DNS measurement (Section 8.1)."""

import pytest

from repro.measurement.dns_measure import DnsMeasurement


@pytest.fixture(scope="module")
def measurement(small_run) -> DnsMeasurement:
    return DnsMeasurement(small_run.internet)


class TestSingleDomains:
    def test_nxdomain_counted(self, measurement, internet):
        missing = next(d for d in internet.domains if not d.exists)
        result = measurement.measure([missing.name])
        assert result.nxdomain == 1
        assert result.nxdomain_share == pytest.approx(100.0)

    def test_ipv6_detection_matches_ground_truth(self, measurement, internet):
        enabled = next(d for d in internet.domains if d.ipv6_enabled)
        disabled = next(d for d in internet.domains if d.exists and not d.ipv6_enabled)
        result = measurement.measure([enabled.name, disabled.name])
        assert result.ipv6_enabled == 1

    def test_caa_detection(self, measurement, internet):
        with_caa = next(d for d in internet.domains if d.caa_enabled)
        without = next(d for d in internet.domains if d.exists and not d.caa_enabled)
        result = measurement.measure([with_caa.name, without.name])
        assert result.caa_enabled == 1

    def test_cdn_detection_via_www_cname(self, measurement, internet):
        cdn_domain = next(d for d in internet.domains if d.cdn_cname)
        result = measurement.measure([cdn_domain.name])
        assert result.cdn == 1
        assert result.cname == 1
        assert cdn_domain.cdn_provider in result.cdn_providers

    def test_as_mapping(self, measurement, internet):
        domain = next(d for d in internet.domains if d.exists)
        result = measurement.measure([domain.name])
        assert result.unique_as_v4 == 1
        info = next(iter(result.as_counts_v4))
        assert info.asn == domain.provider.asn


class TestAggregates:
    def test_share_computation(self, measurement, internet):
        names = [d.name for d in internet.domains[:100]]
        result = measurement.measure(names, target="sample")
        assert result.target == "sample"
        assert result.total == 100
        assert 0 <= result.nxdomain_share <= 100
        assert 0 <= result.ipv6_share <= 100

    def test_empty_target(self, measurement):
        result = measurement.measure([])
        assert result.total == 0
        assert result.nxdomain_share == 0.0
        assert result.top_as_share() == 0.0
        assert result.top_as() == {}
        assert result.top_cdns() == {}

    def test_unknown_share_attribute(self, measurement, internet):
        result = measurement.measure([internet.domains[0].name])
        with pytest.raises(AttributeError):
            result.share("bogus")

    def test_top_as_share_bounded(self, measurement, internet):
        names = [d.name for d in internet.domains[:200] if d.exists]
        result = measurement.measure(names)
        assert 0 < result.top_as_share(5) <= 100
        assert sum(result.top_as(3).values()) <= 1.0 + 1e-9

    def test_lists_exceed_population_on_adoption(self, measurement, small_run):
        top = measurement.measure(list(small_run.alexa[-1].top(100)), target="alexa-100")
        population = measurement.measure(small_run.zonefile.names, target="pop")
        assert top.ipv6_share > population.ipv6_share
        assert top.caa_share > population.caa_share
        assert top.cdn_share > population.cdn_share

    def test_umbrella_nxdomain_exceeds_other_lists(self, measurement, small_run):
        umbrella = measurement.measure(list(small_run.umbrella[-1]))
        alexa = measurement.measure(list(small_run.alexa[-1]))
        majestic = measurement.measure(list(small_run.majestic[-1]))
        assert umbrella.nxdomain_share > majestic.nxdomain_share > alexa.nxdomain_share
