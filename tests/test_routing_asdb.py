"""Tests for the origin-AS database."""

import pytest

from repro.routing.asdb import AsDatabase, AsInfo


@pytest.fixture()
def asdb() -> AsDatabase:
    db = AsDatabase()
    db.announce("23.0.0.0/12", 20940, "Akamai")
    db.announce("104.16.0.0/12", 13335, "Cloudflare")
    db.announce("172.217.0.0/16", 15169, "Google")
    db.announce("2607:f8b0::/32", 15169, "Google")
    db.announce("160.153.0.0/16", 26496, "GoDaddy")
    return db


class TestAsInfo:
    def test_positive_asn_required(self):
        with pytest.raises(ValueError):
            AsInfo(asn=0, name="x")

    def test_str(self):
        assert str(AsInfo(asn=13335, name="Cloudflare")) == "Cloudflare (13335)"


class TestAnnouncements:
    def test_origin_lookup(self, asdb):
        assert asdb.origin("104.16.1.1").asn == 13335
        assert asdb.origin("172.217.5.9").name == "Google"

    def test_ipv6_origin(self, asdb):
        assert asdb.origin("2607:f8b0::1234").asn == 15169

    def test_unannounced_space(self, asdb):
        assert asdb.origin("203.0.113.1") is None
        assert not asdb.is_routed("203.0.113.1")

    def test_is_routed(self, asdb):
        assert asdb.is_routed("23.1.2.3")

    def test_len_counts_prefixes(self, asdb):
        assert len(asdb) == 5

    def test_autonomous_systems_sorted(self, asdb):
        asns = [info.asn for info in asdb.autonomous_systems]
        assert asns == sorted(asns)
        assert 15169 in asns

    def test_name_upgrade(self):
        db = AsDatabase()
        db.announce("10.0.0.0/8", 65000)
        assert db.origin("10.0.0.1").name == "AS65000"
        db.announce("11.0.0.0/8", 65000, "Named")
        assert db.origin("11.0.0.1").name == "Named"

    def test_bulk_announce(self):
        db = AsDatabase()
        count = db.bulk_announce([("10.0.0.0/8", 1, "A"), ("11.0.0.0/8", 2, "B")])
        assert count == 2
        assert db.origin("11.1.1.1").name == "B"


class TestAggregates:
    def test_origin_counts(self, asdb):
        counts = asdb.origin_counts(["23.0.0.1", "23.0.0.2", "104.16.0.1", "203.0.113.1"])
        by_name = {info.name: count for info, count in counts.items()}
        assert by_name == {"Akamai": 2, "Cloudflare": 1}

    def test_unique_as_count(self, asdb):
        assert asdb.unique_as_count(["23.0.0.1", "104.16.0.1", "172.217.0.1"]) == 3

    def test_top_as_share(self, asdb):
        addresses = ["23.0.0.1"] * 6 + ["104.16.0.1"] * 3 + ["172.217.0.1"]
        shares = asdb.top_as_share(addresses, top_n=2)
        names = [info.name for info in shares]
        assert names == ["Akamai", "Cloudflare"]
        assert shares[list(shares)[0]] == pytest.approx(0.6)

    def test_top_as_share_empty(self, asdb):
        assert asdb.top_as_share([]) == {}
