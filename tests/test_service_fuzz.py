"""Wire-level fuzz tests for the HTTP serving layer.

The serving contract under hostile input: every answerable request gets
a JSON error envelope with a 4xx status, nothing a client sends raises
out of a handler thread (``server.unhandled_errors`` is the tripwire),
and resource-shaped attacks — oversized bodies, truncated chunk
streams, half-sent bodies — neither stall a thread nor desync a
connection.
"""

import datetime as dt
import json
import random
import socket
import string
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.providers.base import ListArchive, ListSnapshot
from repro.service.api import QueryService, create_server
from repro.service.store import ArchiveStore


@pytest.fixture(scope="module")
def fuzz_server(tmp_path_factory):
    root = tmp_path_factory.mktemp("fuzzstore")
    store = ArchiveStore(root / "s")
    store.append_archive(ListArchive.from_snapshots([
        ListSnapshot("alexa", dt.date(2018, 1, 1) + dt.timedelta(days=day),
                     (f"a{day}.example.com", "b.example.com", "c.example.org"))
        for day in range(3)]))
    service = QueryService(store)
    server = create_server(service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    assert server.unhandled_errors == [], server.unhandled_errors
    server.shutdown()
    server.server_close()


def _port(server) -> int:
    return server.server_address[1]


def _raw_exchange(server, payload: bytes, timeout=10) -> bytes:
    """Send raw bytes, half-close, read the full response."""
    with socket.create_connection(("127.0.0.1", _port(server)),
                                  timeout=timeout) as sock:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        chunks = b""
        while True:
            piece = sock.recv(65536)
            if not piece:
                return chunks
            chunks += piece


def _assert_4xx_envelope(response: bytes, context: str) -> None:
    """The response is a 4xx and (when a body exists) a JSON envelope.

    Requests whose line never parsed are answered as HTTP/0.9 by the
    stdlib (no status line, body only) — the envelope still carries the
    status.
    """
    assert response, f"{context}: server sent nothing"
    if response.startswith(b"HTTP/1.1 "):
        status = int(response.split(b" ", 2)[1])
        body = response.split(b"\r\n\r\n", 1)[1] if b"\r\n\r\n" in response else b""
    else:
        status, body = None, response
    if body:
        envelope = json.loads(body.decode("utf-8", "replace"))
        assert 400 <= envelope["error"]["status"] < 500, context
        if status is not None:
            assert envelope["error"]["status"] == status, context
    assert status is None or 400 <= status < 500, f"{context}: got {status}"


class TestMalformedRequestLines:
    def test_handpicked_garbage(self, fuzz_server):
        for payload in (
                b"GARBAGE\r\n\r\n",
                b"GET\r\n\r\n",
                b"GET /v1/meta\r\nHost: x\r\n\r\n",  # missing version → 0.9
                b"GET /v1/meta HTTP/9.9\r\n\r\n",
                b"\x00\x01\x02\r\n\r\n",
                b"GET " + b"/" * 70000 + b" HTTP/1.1\r\n\r\n",
        ):
            response = _raw_exchange(fuzz_server, payload)
            if payload.startswith(b"GET /v1/meta\r\n"):
                # A valid HTTP/0.9 simple request: bare 200 body, no
                # status line — the one non-4xx in the set.
                assert response.lstrip().startswith(b"{")
                continue
            if payload == b"GET /v1/meta HTTP/9.9\r\n\r\n":
                # Version negotiation failed before HTTP/1.1 framing was
                # agreed: a bare 505 JSON envelope, no status line.
                envelope = json.loads(response.decode("utf-8"))
                assert envelope["error"]["status"] == 505
                continue
            _assert_4xx_envelope(response, repr(payload[:40]))
        assert fuzz_server.unhandled_errors == []

    def test_seeded_random_request_lines(self, fuzz_server):
        rng = random.Random(0x5EED)
        alphabet = string.ascii_letters + string.digits + "/?#%&=+*()[]{}<>.,;:!@"
        for trial in range(25):
            line = "".join(rng.choices(alphabet, k=rng.randint(1, 120)))
            response = _raw_exchange(fuzz_server, line.encode() + b"\r\n\r\n")
            _assert_4xx_envelope(response, f"trial {trial}: {line[:40]!r}")
        assert fuzz_server.unhandled_errors == []


class TestIngestBodies:
    def _post(self, server, body: bytes, target="/v1/ingest",
              content_type="application/json"):
        request = urllib.request.Request(
            f"http://127.0.0.1:{_port(server)}{target}", data=body,
            method="POST", headers={"Content-Type": content_type})
        try:
            with urllib.request.urlopen(request, timeout=10) as wire:
                return wire.status, wire.read()
        except urllib.error.HTTPError as error:
            return error.code, error.read()

    def test_seeded_random_bodies_are_400(self, fuzz_server):
        rng = random.Random(0xF00D)
        for trial in range(25):
            body = bytes(rng.randrange(256) for _ in range(rng.randint(1, 300)))
            status, payload = self._post(fuzz_server, body)
            assert status == 400, f"trial {trial}: {status}"
            assert json.loads(payload)["error"]["status"] == 400
        assert fuzz_server.unhandled_errors == []

    def test_structurally_invalid_documents_are_400(self, fuzz_server):
        documents = [
            b"[]", b'"entries"', b"{}",
            b'{"provider": "alexa"}',
            b'{"provider": "alexa", "date": "2018-13-99", "entries": ["a.com"]}',
            b'{"provider": "alexa", "date": "2018-02-01", "entries": []}',
            b'{"provider": "alexa", "date": "2018-02-01", "entries": "a.com"}',
            b'{"provider": "alexa", "date": "2018-02-01", "entries": [42]}',
            b'{"provider": "alexa", "date": "2018-02-01", "entries": ["' +
            b"x" * 300 + b'.com"]}',
            b'{"provider": "alexa", "date": "2018-02-01", "entries": ["a..com"]}',
            # Structurally fine but outside the wire charset: printable
            # junk must not occupy append-only interner id space.
            b'{"provider": "alexa", "date": "2018-02-01", "entries": ["q!z#a.x%y"]}',
            b'{"provider": "alexa", "date": "2018-02-01", "entries": ["a|b.com"]}',
            b'{"provider": "", "date": "2018-02-01", "entries": ["a.com"]}',
            b'{"provider": "a/b", "date": "2018-02-01", "entries": ["a.com"]}',
            b'{"provider": "alexa", "date": "2018-02-01", "entries": ["a.com"], '
            b'"extra": 1}',
        ]
        for document in documents:
            status, payload = self._post(fuzz_server, document)
            assert status == 400, (document[:60], status, payload[:120])
            assert json.loads(payload)["error"]["status"] == 400
        # Out-of-order (stale) days are a conflict, not a bad request.
        status, _ = self._post(
            fuzz_server,
            b'{"provider": "alexa", "date": "2018-01-01", "entries": ["a.com"]}')
        assert status == 409
        assert fuzz_server.unhandled_errors == []

    def test_oversized_declared_body_is_413_without_reading(self, fuzz_server):
        started = time.monotonic()
        response = _raw_exchange(
            fuzz_server,
            b"POST /v1/ingest HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 999999999\r\n\r\ntiny")
        assert time.monotonic() - started < 8, "413 path read the body"
        assert response.startswith(b"HTTP/1.1 413"), response[:40]
        assert fuzz_server.unhandled_errors == []

    def test_truncated_chunked_body_is_4xx(self, fuzz_server):
        response = _raw_exchange(
            fuzz_server,
            b"POST /v1/ingest HTTP/1.1\r\nHost: x\r\n"
            b"Transfer-Encoding: chunked\r\n\r\n10\r\nonly-part-of-a-chu")
        _assert_4xx_envelope(response, "truncated chunked")
        assert fuzz_server.unhandled_errors == []

    def test_body_shorter_than_declared_is_400(self, fuzz_server):
        response = _raw_exchange(
            fuzz_server,
            b"POST /v1/ingest HTTP/1.1\r\nHost: x\r\n"
            b"Content-Length: 500\r\n\r\nnot 500 bytes")
        assert response.startswith(b"HTTP/1.1 400"), response[:40]
        assert fuzz_server.unhandled_errors == []

    def test_missing_content_length_is_411(self, fuzz_server):
        response = _raw_exchange(
            fuzz_server, b"POST /v1/ingest HTTP/1.1\r\nHost: x\r\n\r\n")
        assert response.startswith(b"HTTP/1.1 411"), response[:40]
        assert fuzz_server.unhandled_errors == []


class TestHeaderAndParamFuzz:
    def test_bad_if_none_match_values_never_error(self, fuzz_server):
        rng = random.Random(0xE7A6)
        alphabet = string.printable.replace("\r", "").replace("\n", "")
        for trial in range(20):
            value = "".join(rng.choices(alphabet, k=rng.randint(1, 80)))
            response = _raw_exchange(
                fuzz_server,
                b"GET /v1/meta HTTP/1.1\r\nHost: x\r\n"
                b"If-None-Match: " + value.encode() + b"\r\n\r\n")
            assert (response.startswith(b"HTTP/1.1 200")
                    or response.startswith(b"HTTP/1.1 304")), \
                f"trial {trial}: {response[:40]!r}"
        # The exact stored ETag still revalidates among the noise.
        with urllib.request.urlopen(
                f"http://127.0.0.1:{_port(fuzz_server)}/v1/meta",
                timeout=10) as wire:
            etag = wire.headers["ETag"]
        response = _raw_exchange(
            fuzz_server,
            b"GET /v1/meta HTTP/1.1\r\nHost: x\r\nIf-None-Match: "
            + etag.encode() + b"\r\n\r\n")
        assert response.startswith(b"HTTP/1.1 304")
        assert fuzz_server.unhandled_errors == []

    def test_unknown_query_params_are_400(self, fuzz_server):
        targets = [
            "/v1/meta?verbose=1",
            "/v1/meta?verbose=",  # blank values must not slip past
            "/v1/domains/a0.example.com/history?frobnicate=2",
            "/v1/domains/a0.example.com/history?topk=10",  # typo of top_k
            "/v1/providers/alexa/stability?top_m=5",
            "/v1/compare?providers=alexa&provider=alexa",
            "/v1/scenarios/missing/report?format=xml",
        ]
        for target in targets:
            request = urllib.request.Request(
                f"http://127.0.0.1:{_port(fuzz_server)}{target}")
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=10)
            assert excinfo.value.code == 400, target
            envelope = json.loads(excinfo.value.read())
            assert "unknown query parameter" in envelope["error"]["message"]
        # A known parameter with a blank value fails validation loudly
        # instead of silently serving the default.
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                f"http://127.0.0.1:{_port(fuzz_server)}"
                "/v1/providers/alexa/stability?top_n=", timeout=10)
        assert excinfo.value.code == 400
        assert fuzz_server.unhandled_errors == []

    def test_get_with_body_keeps_keepalive_in_sync(self, fuzz_server):
        # A GET carrying Content-Length is unusual but legal; its body
        # must be drained, or the next pipelined request on the same
        # connection would be parsed starting at the body bytes.
        with socket.create_connection(("127.0.0.1", _port(fuzz_server)),
                                      timeout=10) as sock:
            sock.sendall(
                b"GET /v1/meta HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n"
                b"\r\nhello"
                b"GET /v1/meta HTTP/1.1\r\nHost: x\r\n\r\n")
            sock.shutdown(socket.SHUT_WR)
            data = b""
            while True:
                piece = sock.recv(65536)
                if not piece:
                    break
                data += piece
        assert data.count(b"HTTP/1.1 200") == 2, data[:200]
        assert b"501" not in data.split(b"\r\n")[0]
        assert fuzz_server.unhandled_errors == []

    def test_internal_errors_answer_generic_500(self, fuzz_server,
                                                monkeypatch):
        # An unexpected exception answers a 500 envelope naming only the
        # exception type — str(error) can carry server-side paths.
        service = fuzz_server.RequestHandlerClass.service

        def explode():
            raise OSError("[Errno 28] No space left on device: '/srv/secret'")

        monkeypatch.setattr(service, "meta_payload", explode)
        service.clear_cache()
        request = urllib.request.Request(
            f"http://127.0.0.1:{_port(fuzz_server)}/v1/meta")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 500
        body = excinfo.value.read().decode("utf-8")
        assert "/srv/secret" not in body
        assert "OSError" in body
        assert any(isinstance(e, OSError) for e in service.internal_errors)
        service.clear_cache()
        assert fuzz_server.unhandled_errors == []

    def test_unsupported_methods_answer_envelopes(self, fuzz_server):
        # PUT/DELETE/PATCH → 405 with Allow; never a raw 501 HTML page.
        for method, allow in (("PUT", "GET, HEAD"), ("DELETE", "GET, HEAD"),
                              ("PATCH", "POST")):
            target = "/v1/ingest" if allow == "POST" else "/v1/meta"
            response = _raw_exchange(
                fuzz_server,
                f"{method} {target} HTTP/1.1\r\nHost: x\r\n\r\n".encode())
            assert response.startswith(b"HTTP/1.1 405"), (method, response[:40])
            assert f"Allow: {allow}".encode() in response, (method, response)
        assert fuzz_server.unhandled_errors == []
