"""Property-based parity tests for :class:`repro.service.index.DomainIndex`.

The index's whole contract is "same answers as a brute-force scan over the
archive's snapshots, without the scan".  For arbitrary small archives this
asserts exactly that — for rank history (windowed and full), longevity,
days-in-top-k and base-domain membership intervals — and that the answers
survive incremental ``add()`` updates and an
:class:`~repro.service.store.ArchiveStore` round trip.
"""

from __future__ import annotations

import datetime as dt
import pathlib
import tempfile
from typing import Optional

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import snapshot_base_domains
from repro.providers.base import ListArchive, ListSnapshot
from repro.service.index import DomainIndex
from repro.service.store import ArchiveStore

# --------------------------------------------------------------------------
# Strategies: a pool of FQDNs (several per base domain, so base-level and
# FQDN-level views genuinely differ), archives as per-day subsets.
# --------------------------------------------------------------------------

_POOL = tuple(
    f"{host}.d{i}.{tld}" if host else f"d{i}.{tld}"
    for i in range(8)
    for tld in ("com", "co.uk")
    for host in ("", "www", "mail")
)

_day_entries = st.lists(st.sampled_from(_POOL), min_size=1, max_size=18,
                        unique=True)
_archive_days = st.lists(_day_entries, min_size=2, max_size=7)


def _build_archive(days: list[list[str]], provider: str = "prop") -> ListArchive:
    start = dt.date(2018, 1, 28)  # spans a month boundary for the store
    return ListArchive.from_snapshots(
        [ListSnapshot(provider=provider, date=start + dt.timedelta(days=i),
                      entries=tuple(entries))
         for i, entries in enumerate(days)])


# --------------------------------------------------------------------------
# Brute-force oracles (the archive scan the index is meant to replace)
# --------------------------------------------------------------------------

def _scan_history(archive: ListArchive, domain: str,
                  start: Optional[dt.date] = None,
                  end: Optional[dt.date] = None) -> list[tuple[dt.date, int]]:
    observations = []
    for snapshot in archive:
        if start is not None and snapshot.date < start:
            continue
        if end is not None and snapshot.date > end:
            continue
        if domain in snapshot.domain_set():
            observations.append(
                (snapshot.date, snapshot.entries.index(domain) + 1))
    return observations


def _scan_base_intervals(archive: ListArchive, base: str):
    intervals, entered, last_present = [], None, None
    for snapshot in archive:
        present = base in snapshot_base_domains(snapshot)
        if present:
            if entered is None:
                entered = snapshot.date
            last_present = snapshot.date
        elif entered is not None:
            intervals.append((entered, last_present))
            entered = None
    if entered is not None:
        intervals.append((entered, None))
    return intervals


def _assert_parity(index: DomainIndex, archive: ListArchive,
                   provider: str = "prop") -> None:
    dates = archive.dates()
    window = (dates[len(dates) // 3], dates[2 * len(dates) // 3])
    for domain in _POOL + ("never-listed.example",):
        expected = _scan_history(archive, domain)
        assert index.history(domain, provider) == expected, domain
        assert (index.history(domain, provider, start=window[0], end=window[1])
                == _scan_history(archive, domain, *window)), domain
        longevity = index.longevity(domain, provider)
        assert longevity.days_listed == len(expected)
        assert longevity.first_seen == (expected[0][0] if expected else None)
        assert longevity.last_seen == (expected[-1][0] if expected else None)
        for k in (1, 3, 10):
            assert (index.days_in_top_k(domain, provider, k)
                    == sum(1 for _, rank in expected if rank <= k)), (domain, k)
        for date in dates:
            scan_rank = next((r for d, r in expected if d == date), None)
            assert index.rank_on(domain, provider, date) == scan_rank
    bases = {base for snapshot in archive
             for base in snapshot_base_domains(snapshot)}
    for base in sorted(bases) + ["never-listed.example"]:
        assert (index.base_intervals(base, provider)
                == _scan_base_intervals(archive, base)), base


class TestIndexParity:
    @given(_archive_days)
    @settings(max_examples=30, deadline=None)
    def test_from_archive_matches_scan(self, days):
        archive = _build_archive(days)
        _assert_parity(DomainIndex.from_archive(archive), archive)

    @given(_archive_days)
    @settings(max_examples=30, deadline=None)
    def test_incremental_add_matches_scan(self, days):
        # Index the first day, then add() the rest one at a time — the
        # incremental path must answer like the bulk one at every step.
        archive = _build_archive(days)
        snapshots = archive.snapshots()
        index = DomainIndex()
        for upto, snapshot in enumerate(snapshots, start=1):
            index.add(snapshot)
            prefix = ListArchive.from_snapshots(snapshots[:upto])
            if upto in (1, len(snapshots)):
                _assert_parity(index, prefix)

    @given(_archive_days)
    @settings(max_examples=15, deadline=None)
    def test_store_round_trip_matches_scan(self, days):
        archive = _build_archive(days)
        with tempfile.TemporaryDirectory() as tmp:
            store = ArchiveStore(pathlib.Path(tmp) / "s")
            store.append_archive(archive)
            reopened = ArchiveStore(pathlib.Path(tmp) / "s")
            index = DomainIndex.from_store(reopened)
        _assert_parity(index, archive)


class TestIndexRules:
    def test_out_of_order_add_rejected(self):
        archive = _build_archive([["d0.com"], ["d1.com"]])
        index = DomainIndex()
        index.add(archive[1])
        import pytest

        with pytest.raises(ValueError, match="append-only"):
            index.add(archive[0])

    def test_unknown_provider_raises(self):
        index = DomainIndex.from_archive(_build_archive([["d0.com"]]))
        import pytest

        with pytest.raises(KeyError):
            index.history("d0.com", "nosuch")
        with pytest.raises(ValueError):
            index.days_in_top_k("d0.com", "prop", 0)

    def test_multi_provider_isolation(self):
        a = _build_archive([["d0.com", "d1.com"]], provider="alexa")
        b = _build_archive([["d1.com", "d0.com"]], provider="majestic")
        index = DomainIndex.from_archives({"alexa": a, "majestic": b})
        assert index.providers() == ("alexa", "majestic")
        assert index.history("d0.com", "alexa")[0][1] == 1
        assert index.history("d0.com", "majestic")[0][1] == 2
        assert index.domain_count("alexa") == 2
