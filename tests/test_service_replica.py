"""Follower replication: convergence, byte identity, staleness, roles.

The consistency guarantee under test: a follower that replays the
leader's mutation log through the ordinary append machinery converges
to *byte-identical* store files — and therefore byte-identical ``/v1``
payloads at every shared version.  No fault injection here (that is
``test_service_chaos.py``); this suite pins the happy-path protocol.
"""

import datetime as dt
import json
import tempfile
from pathlib import Path

import pytest

from repro.service.api import QueryService, json_bytes
from repro.service.replica import Replica, ReplicaError
from repro.service.store import ArchiveStore
from repro.providers.base import ListSnapshot

BASE_DATE = dt.date(2018, 5, 1)


def _snapshot(provider: str, day: int, extra: tuple = ()) -> ListSnapshot:
    entries = (f"{provider}-day{day}.com", "shared.org",
               f"rotating-{day % 3}.net") + extra
    return ListSnapshot(provider, BASE_DATE + dt.timedelta(days=day), entries)


@pytest.fixture()
def leader(tmp_path: Path):
    store = ArchiveStore(tmp_path / "leader")
    for day in range(3):
        store.append(_snapshot("alexa", day))
        store.append(_snapshot("umbrella", day))
    return QueryService(store)


def _in_process_fetch(leader_service):
    def fetch(since, limit):
        response = leader_service.handle_request(
            f"/v1/replication/log?since={since}&max={limit}")
        assert response.status == 200, response.body
        return response.json()
    return fetch


def _follower(tmp_path: Path, leader_service, **kwargs):
    store = ArchiveStore(tmp_path / "follower")
    service = QueryService(store, role="follower")
    replica = Replica(store, _in_process_fetch(leader_service),
                      sleep=lambda s: None, **kwargs)
    service.attach_replica(replica)
    return store, service, replica


def _assert_stores_byte_identical(left: Path, right: Path) -> None:
    assert (left / "interner.tbl").read_bytes() == \
        (right / "interner.tbl").read_bytes()
    left_shards = sorted(p.relative_to(left) for p in left.rglob("*.rls"))
    right_shards = sorted(p.relative_to(right) for p in right.rglob("*.rls"))
    assert left_shards == right_shards
    for shard in left_shards:
        assert (left / shard).read_bytes() == (right / shard).read_bytes()


class TestBootstrap:
    def test_fresh_follower_converges(self, leader, tmp_path):
        store, _, replica = _follower(tmp_path, leader, batch=2)
        applied = replica.sync_to_leader()
        assert applied == 6
        assert store.version == leader.store.version
        assert replica.staleness() == 0
        _assert_stores_byte_identical(leader.store.root, store.root)

    def test_payloads_byte_identical(self, leader, tmp_path):
        _, service, replica = _follower(tmp_path, leader)
        replica.sync_to_leader()
        for target in ("/v1/meta", "/v1/providers/alexa/stability",
                       "/v1/domains/shared.org/history",
                       "/v1/compare?providers=alexa,umbrella",
                       "/v1/replication/log?since=0&max=256"):
            assert leader.handle_request(target).body == \
                service.handle_request(target).body, target

    def test_incremental_tail(self, leader, tmp_path):
        store, _, replica = _follower(tmp_path, leader)
        replica.sync_to_leader()
        leader.ingest(_snapshot("alexa", 3))
        assert replica.staleness() == 0  # not yet observed
        applied = replica.sync_once()
        assert applied == 1
        assert store.version == leader.store.version
        _assert_stores_byte_identical(leader.store.root, store.root)

    def test_report_replication(self, leader, tmp_path):
        document = json_bytes({"profile": "demo", "metrics": {"x": 1.25}})
        leader.store.save_report_bytes("demo", document)
        store, service, replica = _follower(tmp_path, leader)
        replica.sync_to_leader()
        assert store.load_report_bytes("demo") == document
        target = "/v1/scenarios/demo/report"
        assert leader.handle_request(target).body == \
            service.handle_request(target).body

    def test_idempotent_redelivery(self, leader, tmp_path):
        store, _, replica = _follower(tmp_path, leader)
        replica.sync_to_leader()
        version = store.version
        # Re-deliver the whole log: every entry must be skipped.
        payload = _in_process_fetch(leader)(0, 256)
        for entry in payload["entries"]:
            assert replica._apply(entry) is False
        assert store.version == version

    def test_gap_detection(self, leader, tmp_path):
        store, _, replica = _follower(tmp_path, leader)
        entry = _in_process_fetch(leader)(0, 256)["entries"][2]
        assert entry["version"] == 3 > store.version + 1
        with pytest.raises(ReplicaError, match="gap"):
            replica._apply(entry)

    def test_restart_resumes_from_durable_version(self, leader, tmp_path):
        store, _, replica = _follower(tmp_path, leader, batch=2)
        replica.sync_to_leader()
        leader.ingest(_snapshot("umbrella", 3))
        # Simulated restart: reopen the store, rebuild the tailer.
        store.close()
        reopened = ArchiveStore(tmp_path / "follower", create=False)
        replica2 = Replica(reopened, _in_process_fetch(leader),
                           sleep=lambda s: None)
        replica2.sync_to_leader()
        assert reopened.version == leader.store.version
        _assert_stores_byte_identical(leader.store.root, reopened.root)


class TestStatusAndHealth:
    def test_status_shape(self, leader, tmp_path):
        _, _, replica = _follower(tmp_path, leader, max_staleness=1)
        status = replica.status()
        assert status["staleness"] is None  # never synced
        assert not replica.ready()
        replica.sync_to_leader()
        status = replica.status()
        assert status["staleness"] == 0
        assert status["leader_version"] == leader.store.version
        assert status["breaker"] == "closed"
        assert status["last_error"] is None
        assert status["entries_applied"] == 6
        assert replica.ready()

    def test_ready_endpoint_tracks_replica(self, leader, tmp_path):
        _, service, replica = _follower(tmp_path, leader)
        assert service.handle_request("/v1/ready").status == 503
        replica.sync_to_leader()
        response = service.handle_request("/v1/ready")
        assert response.status == 200
        assert response.json()["ready"] is True
        assert response.headers["Cache-Control"] == "no-store"

    def test_health_reports_degraded_on_sync_failure(self, leader, tmp_path):
        store = ArchiveStore(tmp_path / "follower")
        service = QueryService(store, role="follower")

        def broken_fetch(since, limit):
            raise ConnectionRefusedError("leader down")

        from repro.util.retry import RetryPolicy
        replica = Replica(store, broken_fetch, sleep=lambda s: None,
                          policy=RetryPolicy(max_attempts=2, base_delay=0.0,
                                             max_delay=0.0))
        service.attach_replica(replica)
        from repro.util.retry import RetryExhaustedError
        with pytest.raises(RetryExhaustedError):
            replica.sync_once()
        health = service.handle_request("/v1/health").json()
        assert health["status"] == "degraded"
        assert "ConnectionRefusedError" in health["replication"]["last_error"]

    def test_health_is_never_cached(self, leader, tmp_path):
        _, service, replica = _follower(tmp_path, leader)
        before = service.handle_request("/v1/health").json()
        replica.sync_to_leader()
        after = service.handle_request("/v1/health").json()
        # Staleness moved with no store-version change on the leader:
        # a memoised body would still show the pre-sync state.
        assert before["replication"]["staleness"] is None
        assert after["replication"]["staleness"] == 0

    def test_leader_health(self, leader):
        health = leader.handle_request("/v1/health").json()
        assert health["role"] == "leader"
        assert health["status"] == "ok"
        assert "replication" not in health
        assert leader.handle_request("/v1/ready").status == 200


class TestRoles:
    def test_follower_rejects_ingest(self, leader, tmp_path):
        _, service, _ = _follower(tmp_path, leader)
        body = json.dumps({"provider": "x", "date": "2018-06-01",
                           "entries": ["a.com"]}).encode()
        response = service.handle_request("/v1/ingest", method="POST",
                                          body=body)
        assert response.status == 403
        assert "follower" in response.json()["error"]["message"]

    def test_leader_is_default_role(self, leader):
        assert leader.role == "leader"

    def test_unknown_role_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            QueryService(ArchiveStore(tmp_path / "s"), role="observer")

    def test_leader_behind_replica_refused(self, leader, tmp_path):
        store, _, replica = _follower(tmp_path, leader)
        replica.sync_to_leader()
        store.append(_snapshot("alexa", 9))  # local divergence
        with pytest.raises(ReplicaError, match="behind"):
            replica.sync_once()


class TestReplicationEndpoint:
    def test_batching_and_remaining(self, leader):
        first = leader.handle_request(
            "/v1/replication/log?since=0&max=4").json()
        assert len(first["entries"]) == 4
        assert first["remaining"] == 2
        second = leader.handle_request(
            "/v1/replication/log?since=4&max=4").json()
        assert len(second["entries"]) == 2
        assert second["remaining"] == 0
        versions = [e["version"] for e in first["entries"] + second["entries"]]
        assert versions == list(range(1, 7))

    def test_since_at_head_is_empty(self, leader):
        payload = leader.handle_request(
            f"/v1/replication/log?since={leader.store.version}").json()
        assert payload["entries"] == []
        assert payload["remaining"] == 0

    def test_log_is_cacheable(self, leader):
        target = "/v1/replication/log?since=0"
        assert leader.handle_request(target).headers["X-Repro-Cache"] == "miss"
        assert leader.handle_request(target).headers["X-Repro-Cache"] == "hit"

    def test_validation(self, leader):
        assert leader.handle_request(
            "/v1/replication/log?since=-1").status == 400
        assert leader.handle_request(
            "/v1/replication/log?max=0").status == 400
        assert leader.handle_request(
            "/v1/replication/log?max=100000").status == 400
        assert leader.handle_request(
            "/v1/replication/log?bogus=1").status == 400
