"""Wire-level keep-alive semantics of the /v1 HTTP layer.

The contract these tests lock down: a *clean* client error — 404 on an
unknown route, 400 on a bad parameter, 405 on a disallowed method with
no body pending — answers inside the persistent connection and keeps
it open, because the handler's parser state is still perfectly aligned
with the stream.  Only *protocol-level* failures, where the server can
no longer trust its position in the byte stream (chunked bodies, a
missing or oversized Content-Length, a body shorter than declared),
tear the connection down with ``Connection: close``.

A benchmark client reusing connections (the worker-pool speedup rides
on this) must not lose its connection to a stray 404.
"""

import datetime as dt
import json
import socket

import pytest

from repro.providers.base import ListArchive, ListSnapshot
from repro.service.api import QueryService, create_server
from repro.service.store import ArchiveStore


@pytest.fixture(scope="module")
def keepalive_server(tmp_path_factory):
    snapshots = [
        ListSnapshot("alexa", dt.date(2018, 5, 1) + dt.timedelta(days=day),
                     ("a.com", "b.org", "c.net"))
        for day in range(3)
    ]
    store = ArchiveStore.from_archives(
        tmp_path_factory.mktemp("keepalive"),
        {"alexa": ListArchive.from_snapshots(snapshots)})
    server = create_server(QueryService(store))
    import threading

    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    store.close()


def _read_response(reader) -> tuple[int, dict, bytes]:
    """Parse one framed HTTP response off a socket file."""
    status_line = reader.readline()
    assert status_line.startswith(b"HTTP/1.1 "), status_line
    status = int(status_line.split()[1])
    headers: dict[str, str] = {}
    while True:
        line = reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        assert line, "connection closed mid-headers"
        key, _, value = line.decode("latin-1").partition(":")
        headers[key.strip().lower()] = value.strip()
    body = reader.read(int(headers.get("content-length", 0)))
    return status, headers, body


def _request(port: int, payloads: list[bytes]) -> list[tuple[int, dict, bytes]]:
    """Send several requests over ONE connection; collect the answers.

    Stops early when the server closed the connection (EOF instead of a
    status line) — the caller asserts on how many answers arrived.
    """
    responses = []
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        reader = sock.makefile("rb")
        for payload in payloads:
            sock.sendall(payload)
            try:
                responses.append(_read_response(reader))
            except AssertionError:
                break
    return responses


def _get(path: str, extra: str = "") -> bytes:
    return (f"GET {path} HTTP/1.1\r\nHost: t\r\n{extra}\r\n").encode()


def _port(server) -> int:
    return server.server_address[1]


class TestCleanErrorsKeepAlive:
    def test_404_then_200_on_one_connection(self, keepalive_server):
        """The satellite's wire test: a 404 must not cost the connection."""
        responses = _request(_port(keepalive_server), [
            _get("/v1/nope"),
            _get("/v1/meta"),
        ])
        assert [status for status, _, _ in responses] == [404, 200]
        status, headers, body = responses[0]
        assert headers.get("connection") != "close"
        assert json.loads(body)["error"]["status"] == 404
        assert json.loads(responses[1][2])["providers"]["alexa"]["days"] == 3

    def test_400_bad_param_keeps_connection(self, keepalive_server):
        responses = _request(_port(keepalive_server), [
            _get("/v1/domains/a.com/history?top_k=wat"),
            _get("/v1/meta"),
        ])
        assert [status for status, _, _ in responses] == [400, 200]
        assert responses[0][1].get("connection") != "close"

    def test_405_without_body_keeps_connection(self, keepalive_server):
        responses = _request(_port(keepalive_server), [
            (b"PUT /v1/meta HTTP/1.1\r\nHost: t\r\n"
             b"Content-Length: 0\r\n\r\n"),
            _get("/v1/meta"),
        ])
        assert [status for status, _, _ in responses] == [405, 200]
        assert "GET" in responses[0][1]["allow"]

    def test_many_mixed_requests_one_connection(self, keepalive_server):
        """A burst mixing hits and clean misses all rides one socket."""
        cycle = [_get("/v1/meta"), _get("/v1/nope"),
                 _get("/v1/providers/alexa/stability"),
                 _get("/v1/does/not/exist")]
        responses = _request(_port(keepalive_server), cycle * 5)
        assert len(responses) == 20
        assert [status for status, _, _ in responses] == \
            [200, 404, 200, 404] * 5


class TestProtocolFailuresClose:
    def test_411_missing_length_closes(self, keepalive_server):
        responses = _request(_port(keepalive_server), [
            b"POST /v1/ingest HTTP/1.1\r\nHost: t\r\n\r\n",
            _get("/v1/meta"),
        ])
        assert [status for status, _, _ in responses] == [411]
        assert responses[0][1]["connection"] == "close"

    def test_413_oversized_closes(self, keepalive_server):
        responses = _request(_port(keepalive_server), [
            (b"POST /v1/ingest HTTP/1.1\r\nHost: t\r\n"
             b"Content-Length: 99999999999\r\n\r\n"),
            _get("/v1/meta"),
        ])
        assert [status for status, _, _ in responses] == [413]
        assert responses[0][1]["connection"] == "close"

    def test_chunked_body_closes(self, keepalive_server):
        responses = _request(_port(keepalive_server), [
            (b"POST /v1/ingest HTTP/1.1\r\nHost: t\r\n"
             b"Transfer-Encoding: chunked\r\n\r\n"),
            _get("/v1/meta"),
        ])
        assert [status for status, _, _ in responses] == [400]
        assert responses[0][1]["connection"] == "close"


class TestIfNoneMatchRFC7232:
    """RFC 7232 §3.2 revalidation: ETag lists, ``*``, weak prefixes."""

    def _etag(self, port: int) -> str:
        responses = _request(port, [_get("/v1/meta")])
        assert responses[0][0] == 200
        return responses[0][1]["etag"]

    def test_etag_inside_comma_list_revalidates(self, keepalive_server):
        port = _port(keepalive_server)
        etag = self._etag(port)
        responses = _request(port, [
            _get("/v1/meta",
                 f'If-None-Match: "deadbeef", {etag}, "cafef00d"\r\n'),
            _get("/v1/meta"),
        ])
        # The 304 answers in-connection and keep-alive survives it.
        assert [status for status, _, _ in responses] == [304, 200]
        assert responses[0][2] == b""

    def test_weak_prefix_is_ignored(self, keepalive_server):
        port = _port(keepalive_server)
        etag = self._etag(port)
        responses = _request(port, [
            _get("/v1/meta", f"If-None-Match: W/{etag}\r\n")])
        assert responses[0][0] == 304

    def test_star_matches_any_representation(self, keepalive_server):
        responses = _request(_port(keepalive_server), [
            _get("/v1/meta", "If-None-Match: *\r\n")])
        assert responses[0][0] == 304

    def test_list_without_match_serves_200(self, keepalive_server):
        responses = _request(_port(keepalive_server), [
            _get("/v1/meta",
                 'If-None-Match: "deadbeef", W/"cafef00d"\r\n')])
        assert responses[0][0] == 200
        assert responses[0][2]

    def test_etag_substring_does_not_match(self, keepalive_server):
        # A candidate equal to a *prefix* of the stored opaque tag must
        # not revalidate — comparison is whole-tag, not substring.
        port = _port(keepalive_server)
        etag = self._etag(port)
        truncated = etag[:-2] + '"'
        responses = _request(port, [
            _get("/v1/meta", f"If-None-Match: {truncated}\r\n")])
        assert responses[0][0] == 200


class TestNoDelay:
    def test_handler_disables_nagle(self, keepalive_server):
        """TCP_NODELAY is the keep-alive throughput fix: without it every
        small response waits out the client's delayed ACK (~40 ms)."""
        assert keepalive_server.RequestHandlerClass.disable_nagle_algorithm
