"""Tests for DNS record and response models."""

import pytest

from repro.dns.records import DnsResponse, RData, Rcode, RecordType, ResourceRecord


class TestRData:
    def test_address(self):
        assert RData.for_address("192.0.2.1").address == "192.0.2.1"

    def test_target_normalised(self):
        assert RData.for_target("CDN.Example.COM.").target == "cdn.example.com"

    def test_caa_tags(self):
        rdata = RData.for_caa("issue", "letsencrypt.org")
        assert rdata.caa_tag == "issue"
        assert rdata.caa_value == "letsencrypt.org"

    def test_caa_invalid_tag(self):
        with pytest.raises(ValueError):
            RData.for_caa("grant", "x")

    def test_text(self):
        assert RData.for_text("v=spf1 -all").text == "v=spf1 -all"


class TestResourceRecord:
    def test_name_normalised(self):
        record = ResourceRecord("WWW.Example.COM.", RecordType.A, RData.for_address("192.0.2.1"))
        assert record.name == "www.example.com"

    def test_a_record_requires_ipv4(self):
        with pytest.raises(ValueError):
            ResourceRecord("a.com", RecordType.A, RData.for_address("2001:db8::1"))

    def test_aaaa_record_requires_ipv6(self):
        with pytest.raises(ValueError):
            ResourceRecord("a.com", RecordType.AAAA, RData.for_address("192.0.2.1"))

    def test_cname_requires_target(self):
        with pytest.raises(ValueError):
            ResourceRecord("a.com", RecordType.CNAME, RData())

    def test_caa_requires_tag(self):
        with pytest.raises(ValueError):
            ResourceRecord("a.com", RecordType.CAA, RData())

    def test_negative_ttl_rejected(self):
        with pytest.raises(ValueError):
            ResourceRecord("a.com", RecordType.A, RData.for_address("192.0.2.1"), ttl=-1)

    def test_value_rendering(self):
        a = ResourceRecord("a.com", RecordType.A, RData.for_address("192.0.2.1"))
        cname = ResourceRecord("a.com", RecordType.CNAME, RData.for_target("b.com"))
        caa = ResourceRecord("a.com", RecordType.CAA, RData.for_caa("issue", "ca.example"))
        assert a.value == "192.0.2.1"
        assert cname.value == "b.com"
        assert "issue" in caa.value and "ca.example" in caa.value


class TestDnsResponse:
    def test_nxdomain_flag(self):
        response = DnsResponse("a.com", RecordType.A, Rcode.NXDOMAIN)
        assert response.is_nxdomain
        assert not response.is_empty

    def test_nodata(self):
        response = DnsResponse("a.com", RecordType.AAAA, Rcode.NOERROR, answers=[])
        assert response.is_empty
        assert not response.is_nxdomain

    def test_with_answers(self):
        record = ResourceRecord("a.com", RecordType.A, RData.for_address("192.0.2.1"))
        response = DnsResponse("a.com", RecordType.A, Rcode.NOERROR, answers=[record])
        assert not response.is_empty

    def test_rcode_str(self):
        assert str(Rcode.NXDOMAIN) == "NXDOMAIN"
        assert str(RecordType.AAAA) == "AAAA"
