"""Tests for the weekly-pattern analysis (Section 6.2)."""

import datetime as dt

import pytest

from repro.core.weekly import (
    sld_group_dynamics,
    weekday_weekend_ks,
    within_group_ks,
)
from repro.providers.base import ListArchive, ListSnapshot


def build_archive(daily_entries, start=dt.date(2018, 1, 1)) -> ListArchive:
    archive = ListArchive(provider="toy")
    for day, entries in enumerate(daily_entries):
        archive.add(ListSnapshot(provider="toy", entries=tuple(entries),
                                 date=start + dt.timedelta(days=day)))
    return archive


@pytest.fixture()
def weekly_archive() -> ListArchive:
    """Two weeks where leisure.com ranks first on weekends, last on weekdays.

    January 1st 2018 was a Monday, so days 5, 6, 12, 13 are weekends.
    """
    weekday = ["office.com", "news.com", "leisure.com"]
    weekend = ["leisure.com", "news.com", "office.com"]
    entries = []
    for day in range(14):
        is_weekend = (dt.date(2018, 1, 1) + dt.timedelta(days=day)).weekday() >= 5
        entries.append(weekend if is_weekend else weekday)
    return build_archive(entries)


class TestWeekdayWeekendKs:
    def test_disjoint_rank_distributions(self, weekly_archive):
        distances = weekday_weekend_ks(weekly_archive)
        assert distances["leisure.com"] == pytest.approx(1.0)
        assert distances["office.com"] == pytest.approx(1.0)
        assert distances["news.com"] == pytest.approx(0.0)

    def test_min_observations_filter(self, weekly_archive):
        # Requiring more weekend observations than exist drops all domains.
        assert weekday_weekend_ks(weekly_archive, min_observations=10) == {}

    def test_within_group_control_is_small(self, weekly_archive):
        control = within_group_ks(weekly_archive)
        assert control
        assert max(control.values()) <= 0.2

    def test_custom_weekend_definition(self, weekly_archive):
        # Treating Monday as the weekend breaks the clean separation.
        distances = weekday_weekend_ks(weekly_archive, weekend=(0,))
        assert distances["leisure.com"] < 1.0

    def test_simulated_lists_ordering(self, small_run):
        # The DNS-based list shows a much stronger weekend effect than the
        # backlink-based list (Figure 3a).
        umbrella = weekday_weekend_ks(small_run.umbrella)
        majestic = weekday_weekend_ks(small_run.majestic)
        share_umbrella = sum(1 for v in umbrella.values() if v >= 0.999) / len(umbrella)
        share_majestic = sum(1 for v in majestic.values() if v >= 0.999) / len(majestic)
        assert share_umbrella > share_majestic


class TestSldGroupDynamics:
    def test_group_detection(self):
        # blogs-* domains appear only on weekends (2018-01-06/07 are weekend).
        weekday = ["office.com", "work.org"]
        weekend = ["blogs.com", "blogs.de", "blogs.fr", "office.com"]
        entries = []
        for day in range(14):
            is_weekend = (dt.date(2018, 1, 1) + dt.timedelta(days=day)).weekday() >= 5
            entries.append(weekend if is_weekend else weekday)
        archive = build_archive(entries)
        groups = sld_group_dynamics(archive, threshold=0.4, min_group_size=2)
        assert "blogs" in groups
        assert groups["blogs"].more_popular_on_weekends
        assert groups["blogs"].weekend_mean > groups["blogs"].weekday_mean
        assert groups["blogs"].relative_change > 0.4

    def test_stable_groups_not_reported(self, weekly_archive):
        groups = sld_group_dynamics(weekly_archive, threshold=0.4, min_group_size=1)
        assert groups == {}

    def test_series_dates_sorted(self):
        weekend = ["blogs.com", "blogs.de", "blogs.fr"]
        weekday = ["office.com", "work.org", "mail.net"]
        entries = []
        for day in range(10):
            is_weekend = (dt.date(2018, 1, 1) + dt.timedelta(days=day)).weekday() >= 5
            entries.append(weekend if is_weekend else weekday)
        archive = build_archive(entries)
        groups = sld_group_dynamics(archive, min_group_size=2)
        for dynamics in groups.values():
            dates = list(dynamics.series)
            assert dates == sorted(dates)
