"""Tests for the structure analysis (Section 5.1 / Table 2)."""

import datetime as dt

import pytest

from repro.core.structure import (
    alias_count,
    base_domain_share,
    normalise_to_base_domains,
    structure_summary,
    subdomain_depth_distribution,
    summarise_archive,
)
from repro.providers.base import ListArchive, ListSnapshot


def make_snapshot(entries, provider="test", day=0) -> ListSnapshot:
    return ListSnapshot(provider=provider, entries=tuple(entries),
                        date=dt.date(2018, 4, 1) + dt.timedelta(days=day))


class TestNormalisation:
    def test_subdomains_collapse_to_base(self):
        bases = normalise_to_base_domains(["www.a.com", "a.com", "api.b.org"])
        assert bases == {"a.com", "b.org"}

    def test_bare_suffix_kept(self):
        assert "localdomain" in normalise_to_base_domains(["localdomain"])

    def test_base_domain_share(self):
        assert base_domain_share(["a.com", "www.a.com"]) == pytest.approx(0.5)
        assert base_domain_share([]) == 0.0


class TestDepthDistribution:
    def test_shares(self):
        shares, max_depth = subdomain_depth_distribution(
            ["a.com", "www.a.com", "x.y.a.com", "b.com"])
        assert shares[0] == pytest.approx(0.5)
        assert shares[1] == pytest.approx(0.25)
        assert shares[2] == pytest.approx(0.25)
        assert max_depth == 2

    def test_empty(self):
        shares, max_depth = subdomain_depth_distribution([])
        assert shares == {} and max_depth == 0


class TestAliases:
    def test_counts_extra_tld_copies(self):
        # google.com + google.de + google.fr -> 2 aliases.
        assert alias_count(["google.com", "google.de", "google.fr", "other.com"]) == 2

    def test_zero_without_duplicates(self):
        assert alias_count(["a.com", "b.com"]) == 0

    def test_subdomains_grouped_by_sld(self):
        assert alias_count(["www.google.com", "google.de"]) == 1


class TestStructureSummary:
    def test_summary_fields(self):
        snapshot = make_snapshot(["a.com", "www.a.com", "b.de", "junk.localdomain",
                                  "a.org"])
        summary = structure_summary(snapshot)
        assert summary.size == 5
        assert summary.valid_tlds == 3  # com, de, org
        assert summary.invalid_tlds == 1
        assert summary.invalid_tld_domains == 1
        assert summary.base_domains == 4
        assert summary.max_depth == 1
        assert summary.aliases == 1  # a.com / a.org share the SLD "a"
        assert summary.base_domain_share == pytest.approx(0.8)
        assert summary.depth_share(1) == pytest.approx(0.2)
        assert summary.depth_share(7) == 0.0

    def test_umbrella_style_snapshot_has_lower_base_share(self, small_run):
        alexa = structure_summary(small_run.alexa[-1])
        umbrella = structure_summary(small_run.umbrella[-1])
        assert umbrella.base_domain_share < alexa.base_domain_share
        assert umbrella.max_depth > alexa.max_depth
        assert umbrella.invalid_tld_domains > 0
        assert alexa.invalid_tld_domains == 0


class TestArchiveSummary:
    def test_aggregation(self):
        archive = ListArchive(provider="test")
        archive.add(make_snapshot(["a.com", "b.de"], day=0))
        archive.add(make_snapshot(["a.com", "c.fr"], day=1))
        summary = summarise_archive(archive)
        assert summary.days == 2
        assert summary.tld_coverage.mean == pytest.approx(2.0)
        assert summary.base_domains.mean == pytest.approx(2.0)
        assert summary.max_depth == 0

    def test_sampling(self):
        archive = ListArchive(provider="test")
        for day in range(6):
            archive.add(make_snapshot([f"d{day}.com"], day=day))
        summary = summarise_archive(archive, sample_every=3)
        assert summary.days == 2

    def test_invalid_sampling(self):
        archive = ListArchive(provider="test")
        archive.add(make_snapshot(["a.com"]))
        with pytest.raises(ValueError):
            summarise_archive(archive, sample_every=0)

    def test_empty_archive_rejected(self):
        with pytest.raises(ValueError):
            summarise_archive(ListArchive(provider="test"))
