"""Tests for the simulation orchestrator."""

from repro.population.config import SimulationConfig
from repro.providers.simulation import clear_simulation_cache, run_simulation


class TestRunSimulation:
    def test_archives_cover_all_days(self, small_run):
        for archive in small_run.archives.values():
            assert len(archive) == small_run.config.n_days

    def test_all_three_providers_present(self, small_run):
        assert set(small_run.archives) == {"alexa", "umbrella", "majestic"}
        assert small_run.alexa.provider == "alexa"
        assert small_run.umbrella.provider == "umbrella"
        assert small_run.majestic.provider == "majestic"

    def test_zonefile_attached(self, small_run):
        assert len(small_run.zonefile) > 0

    def test_provider_accessor(self, small_run):
        assert small_run.provider("alexa").name == "alexa"
        assert small_run.archive("majestic") is small_run.majestic

    def test_cache_returns_same_instance(self, small_config, small_run):
        assert run_simulation(small_config) is small_run

    def test_cache_can_be_bypassed_and_cleared(self):
        config = SimulationConfig.small(n_domains=600, list_size=150, top_k=30, n_days=3,
                                        new_domains_per_day=2)
        first = run_simulation(config)
        assert run_simulation(config) is first
        fresh = run_simulation(config, use_cache=False)
        assert fresh is not first
        clear_simulation_cache()
        assert run_simulation(config) is not first
        clear_simulation_cache()

    def test_snapshot_dates_aligned_across_providers(self, small_run):
        dates = [tuple(a.dates()) for a in small_run.archives.values()]
        assert len(set(dates)) == 1
