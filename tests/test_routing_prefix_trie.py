"""Tests for the longest-prefix-match trie."""

import pytest

from repro.routing.prefix_trie import IpPrefix, PrefixTrie


class TestIpPrefix:
    def test_parse_ipv4(self):
        prefix = IpPrefix.parse("192.0.2.0/24")
        assert prefix.version == 4
        assert prefix.prefix_length == 24

    def test_parse_ipv6(self):
        prefix = IpPrefix.parse("2001:db8::/32")
        assert prefix.version == 6

    def test_invalid_prefix_rejected(self):
        with pytest.raises(ValueError):
            IpPrefix.parse("192.0.2.1/24")  # host bits set
        with pytest.raises(ValueError):
            IpPrefix.parse("not-a-prefix")

    def test_contains(self):
        prefix = IpPrefix.parse("10.0.0.0/8")
        assert prefix.contains("10.1.2.3")
        assert not prefix.contains("11.0.0.1")
        assert not prefix.contains("2001:db8::1")

    def test_bits_length(self):
        assert len(IpPrefix.parse("192.0.2.0/24").bits()) == 24
        assert len(IpPrefix.parse("2001:db8::/32").bits()) == 32


class TestPrefixTrie:
    def test_exact_lookup(self):
        trie: PrefixTrie[str] = PrefixTrie()
        trie.insert("192.0.2.0/24", "AS1")
        assert trie.lookup("192.0.2.55") == "AS1"

    def test_longest_match_wins(self):
        trie: PrefixTrie[str] = PrefixTrie()
        trie.insert("10.0.0.0/8", "coarse")
        trie.insert("10.20.0.0/16", "specific")
        assert trie.lookup("10.20.3.4") == "specific"
        assert trie.lookup("10.99.3.4") == "coarse"

    def test_longest_match_returns_length(self):
        trie: PrefixTrie[str] = PrefixTrie()
        trie.insert("10.0.0.0/8", "coarse")
        length, value = trie.longest_match("10.1.1.1")
        assert length == 8
        assert value == "coarse"

    def test_no_match(self):
        trie: PrefixTrie[str] = PrefixTrie()
        trie.insert("10.0.0.0/8", "x")
        assert trie.lookup("192.0.2.1") is None
        assert trie.longest_match("192.0.2.1") is None

    def test_ipv6_and_ipv4_do_not_collide(self):
        trie: PrefixTrie[str] = PrefixTrie()
        trie.insert("0.0.0.0/0", "v4-default")
        trie.insert("::/0", "v6-default")
        assert trie.lookup("8.8.8.8") == "v4-default"
        assert trie.lookup("2001:db8::1") == "v6-default"

    def test_reinsert_overwrites(self):
        trie: PrefixTrie[str] = PrefixTrie()
        trie.insert("192.0.2.0/24", "old")
        trie.insert("192.0.2.0/24", "new")
        assert trie.lookup("192.0.2.1") == "new"
        assert len(trie) == 1

    def test_len(self):
        trie: PrefixTrie[str] = PrefixTrie()
        trie.insert("10.0.0.0/8", "a")
        trie.insert("2001:db8::/32", "b")
        assert len(trie) == 2

    def test_iteration_yields_all_values(self):
        trie: PrefixTrie[str] = PrefixTrie()
        trie.insert("10.0.0.0/8", "a")
        trie.insert("10.20.0.0/16", "b")
        trie.insert("2001:db8::/32", "c")
        values = {value for _, value in trie}
        assert values == {"a", "b", "c"}

    def test_accepts_ip_prefix_objects(self):
        trie: PrefixTrie[str] = PrefixTrie()
        trie.insert(IpPrefix.parse("198.51.100.0/24"), "doc")
        assert trie.lookup("198.51.100.99") == "doc"

    def test_matches_ipaddress_reference(self):
        # Cross-check against the ipaddress module on a batch of prefixes.
        import ipaddress
        import random
        random.seed(99)
        prefixes = ["23.0.0.0/12", "104.16.0.0/12", "172.217.0.0/16",
                    "52.0.0.0/11", "151.101.0.0/16", "13.64.0.0/11"]
        trie: PrefixTrie[str] = PrefixTrie()
        for prefix in prefixes:
            trie.insert(prefix, prefix)
        networks = [ipaddress.ip_network(p) for p in prefixes]
        for _ in range(200):
            address = ipaddress.IPv4Address(random.getrandbits(32))
            expected = None
            best_len = -1
            for network in networks:
                if address in network and network.prefixlen > best_len:
                    expected = str(network)
                    best_len = network.prefixlen
            assert trie.lookup(str(address)) == expected
