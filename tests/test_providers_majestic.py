"""Tests for the Majestic-style provider."""

import numpy as np

from repro.providers.majestic import MajesticProvider


class TestSnapshots:
    def test_full_list_size(self, small_run):
        assert len(small_run.majestic[0]) == small_run.config.list_size

    def test_most_stable_list(self, small_run):
        def mean_churn(archive):
            snapshots = archive.snapshots()
            return np.mean([len(a.domain_set() - b.domain_set()) / len(a)
                            for a, b in zip(snapshots, snapshots[1:])])
        majestic = mean_churn(small_run.majestic)
        assert majestic < 0.02
        assert majestic < mean_churn(small_run.alexa)
        assert majestic < mean_churn(small_run.umbrella)

    def test_includes_dead_domains(self, small_run, internet):
        # Backlinks persist after domain closure, so Majestic lists some
        # dead (NXDOMAIN) domains — its NXDOMAIN share exceeds Alexa's.
        dead = {d.name for d in internet.domains if d.dead}
        listed = set()
        for snapshot in small_run.majestic.snapshots():
            listed |= snapshot.domain_set() & dead
        alexa_listed = set()
        for snapshot in small_run.alexa.snapshots():
            alexa_listed |= snapshot.domain_set() & dead
        assert len(listed) > len(alexa_listed)

    def test_no_weekly_pattern(self, small_run):
        config = small_run.config
        snapshots = small_run.majestic.snapshots()
        changes = [len(a.domain_set() - b.domain_set())
                   for a, b in zip(snapshots, snapshots[1:])]
        weekend = [c for day, c in enumerate(changes, start=1) if config.is_weekend(day)]
        weekday = [c for day, c in enumerate(changes, start=1) if not config.is_weekend(day)]
        if weekend and weekday:
            # No systematic weekend amplification (allow generous noise).
            assert np.mean(weekend) < 3 * max(1.0, np.mean(weekday))

    def test_deterministic(self, small_run, internet, traffic):
        provider = MajesticProvider(internet, traffic, config=small_run.config)
        assert provider.snapshot(4).entries == small_run.majestic[4].entries

    def test_normalisation_ablation_changes_order(self, small_run, internet, traffic):
        normalised = MajesticProvider(internet, traffic, config=small_run.config,
                                      normalise_by_subnet=True)
        raw = MajesticProvider(internet, traffic, config=small_run.config,
                               normalise_by_subnet=False)
        assert normalised.snapshot(5).entries != raw.snapshot(5).entries

    def test_windowed_score_nonnegative(self, small_run, internet, traffic):
        provider = MajesticProvider(internet, traffic, config=small_run.config)
        assert (provider.windowed_score(6) >= 0).all()
