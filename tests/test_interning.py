"""Tests for the interned-domain columnar core (:mod:`repro.interning`).

Three groups:

* property-based round trips through the interner (domain ↔ id must be a
  bijection, stable under re-interning and arbitrary interleaving);
* the PSL-version-stamped base-id column (parity with the string
  normalisation rule, invalidation on ``add_rule``);
* id-lane vs string-lane parity of the set operations on real scenario
  archives (the columnar fast paths must count exactly what the string
  pipeline counts).
"""

from __future__ import annotations

import datetime as dt
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cache import (
    archive_base_domain_sets,
    archive_base_id_sets,
    snapshot_base_domains,
    snapshot_base_ids,
)
from repro.core.intersection import intersection_over_time
from repro.core.structure import normalise_to_base_domains
from repro.domain.psl import PublicSuffixList
from repro.interning import DomainInterner, base_of, default_interner
from repro.providers.base import ListArchive, ListSnapshot

START = dt.date(2018, 4, 1)

_LABEL = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
                 min_size=1, max_size=8).filter(
    lambda s: not s.startswith("-") and not s.endswith("-"))
_DOMAIN = st.builds(".".join, st.lists(_LABEL, min_size=1, max_size=4))


class TestInternerRoundTrip:
    @given(st.lists(_DOMAIN, min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_domain_id_bijection(self, names):
        interner = DomainInterner()
        ids = [interner.intern(name) for name in names]
        # Same string -> same id; different string -> different id.
        for name, domain_id in zip(names, ids):
            assert interner.intern(name) == domain_id
            assert interner.domain(domain_id) == name
            assert interner.id_of(name) == domain_id
        assert len({interner.intern(n) for n in set(names)}) == len(set(names))
        # intern_many round-trips the full (ordered, possibly repeating) list.
        column = interner.intern_many(names)
        assert list(column) == ids
        assert interner.domains(column) == tuple(names)

    @given(st.lists(_DOMAIN, min_size=1, max_size=30),
           st.lists(_DOMAIN, min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_ids_stable_under_interleaving(self, first, second):
        # Interning more names never changes ids handed out earlier.
        interner = DomainInterner()
        before = {name: interner.intern(name) for name in first}
        interner.intern_many(second)
        for name, domain_id in before.items():
            assert interner.intern(name) == domain_id

    def test_ids_are_dense_and_boxed_ints_shared(self):
        interner = DomainInterner()
        ids = [interner.intern(f"d{i}.com") for i in range(100)]
        assert ids == list(range(100))
        assert len(interner) == 100
        id_set_a = interner.id_set(interner.intern_many(["d3.com", "d7.com"]))
        id_set_b = interner.id_set(interner.intern_many(["d3.com", "d99.com"]))
        (shared,) = id_set_a & id_set_b
        # The boxed int object is the interner's shared one, not a fresh box.
        assert any(member is interner.boxed[3] for member in id_set_a)
        assert shared == 3

    def test_unknown_lookups(self):
        interner = DomainInterner()
        assert interner.id_of("never-seen.example") is None
        assert "never-seen.example" not in interner
        with pytest.raises(IndexError):
            interner.domain(12345)


class TestBaseIdColumn:
    @given(st.lists(_DOMAIN, min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_parity_with_string_normalisation(self, names):
        interner = DomainInterner()
        psl = PublicSuffixList()
        column = interner.base_column(psl)
        for name in names:
            domain_id = interner.intern(name)
            assert interner.domain(column.base_id(domain_id)) == base_of(name, psl)

    def test_matches_pipeline_rule(self):
        interner = DomainInterner()
        psl = PublicSuffixList()
        column = interner.base_column(psl)
        for name, expected in [("www.net.in.tum.de", "tum.de"),
                               ("a.b.blogspot.com", "b.blogspot.com"),
                               ("co.uk", "co.uk"),       # bare suffix maps to itself
                               ("example.co.uk", "example.co.uk")]:
            assert interner.domain(column.base_id(interner.intern(name))) == expected

    def test_psl_bump_invalidates_column(self):
        interner = DomainInterner()
        psl = PublicSuffixList(["com"])
        domain_id = interner.intern("a.faketld.zz")
        before = interner.base_column(psl)
        assert interner.domain(before.base_id(domain_id)) == "faketld.zz"
        psl.add_rule("faketld.zz")
        after = interner.base_column(psl)
        # New rule-set version => new column object, recomputed answer,
        # and the superseded generation is evicted rather than retained.
        assert after is not before
        assert after.psl_key == psl.cache_key
        assert interner.domain(after.base_id(domain_id)) == "a.faketld.zz"
        assert list(interner._base_columns) == [psl.cache_key]

    def test_seed_installs_only_unresolved(self):
        interner = DomainInterner()
        psl = PublicSuffixList()
        column = interner.base_column(psl)
        name_id = interner.intern("www.seeded.com")
        base_id = interner.intern("seeded.com")
        column.seed(name_id, base_id)
        assert column.base_id(name_id) == base_id
        # A second seed with a wrong value must not override.
        column.seed(name_id, name_id)
        assert column.base_id(name_id) == base_id

    def test_malformed_names_resolved_lazily(self):
        # Interning must accept any string; only resolving its base may
        # raise (and only when an analysis actually asks).
        interner = DomainInterner()
        psl = PublicSuffixList()
        bad_id = interner.intern("bad..name")
        column = interner.base_column(psl)
        ok_id = interner.intern("fine.com")
        assert column.base_id(ok_id) == ok_id
        with pytest.raises(ValueError):
            column.base_id(bad_id)


class TestColumnarSnapshot:
    def test_from_ids_is_stringless_until_asked(self):
        interner = default_interner()
        ids = interner.intern_many(["lazy-a.com", "lazy-b.com", "lazy-c.com"])
        snapshot = ListSnapshot.from_ids("alexa", START, ids)
        assert "_entries" not in snapshot.__dict__
        assert len(snapshot) == 3
        assert list(snapshot.entry_ids()) == list(ids)
        # Materialisation on demand, then cached.
        assert snapshot.entries == ("lazy-a.com", "lazy-b.com", "lazy-c.com")
        assert snapshot.entries is snapshot.entries

    def test_equality_and_hash_match_string_identity(self):
        a = ListSnapshot("alexa", START, ("x.com", "y.com"))
        b = ListSnapshot.from_ids(
            "alexa", START, default_interner().intern_many(["x.com", "y.com"]))
        c = ListSnapshot("alexa", START, ("y.com", "x.com"))
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_top_slices_share_id_column_prefix(self):
        snapshot = ListSnapshot("alexa", START, tuple(f"t{i}.com" for i in range(10)))
        head = snapshot.top(4)
        assert list(head.entry_ids()) == list(snapshot.entry_ids()[:4])
        assert head.rank_of("t2.com") == 3
        assert head.rank_of("t9.com") is None

    def test_immutability(self):
        snapshot = ListSnapshot("alexa", START, ("x.com",))
        with pytest.raises(AttributeError):
            snapshot.provider = "other"
        with pytest.raises(AttributeError):
            del snapshot.date

    def test_pickle_round_trip_re_interns(self):
        snapshot = ListSnapshot("alexa", START, ("p.com", "q.net", "www.r.co.uk"))
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone == snapshot
        assert clone.entries == snapshot.entries
        assert clone.rank_of("q.net") == 2


class TestIdStringSetOpParity:
    """Id-based vs string-based set operations on scenario archives."""

    @pytest.fixture(scope="class")
    def archives(self, small_run):
        return small_run.archives

    def test_snapshot_sets_biject(self, archives):
        interner = default_interner()
        for archive in archives.values():
            for snapshot in list(archive)[:3]:
                assert frozenset(interner.domains(snapshot.id_set())) == \
                    snapshot.domain_set()
                assert frozenset(interner.domains(snapshot_base_ids(snapshot))) == \
                    snapshot_base_domains(snapshot)
                assert snapshot_base_domains(snapshot) == frozenset(
                    normalise_to_base_domains(snapshot.entries))

    @pytest.mark.parametrize("top_n", [None, 60])
    def test_archive_base_sets_biject(self, archives, top_n):
        interner = default_interner()
        archive = archives["alexa"]
        id_sets = archive_base_id_sets(archive, top_n=top_n)
        str_sets = archive_base_domain_sets(archive, top_n=top_n)
        assert list(id_sets) == list(str_sets)
        for date, id_set in id_sets.items():
            assert frozenset(interner.domains(id_set)) == str_sets[date]

    @pytest.mark.parametrize("normalise", [True, False])
    def test_intersection_counts_match_string_reference(self, archives, normalise):
        # The id lane's counts must equal intersecting the string sets.
        series = intersection_over_time(archives, top_n=80, normalise=normalise)
        for date, matrix in list(series.items())[:5]:
            for names, count in matrix.items():
                sets = []
                for name in names:
                    head = archives[name][date].top(80)
                    sets.append(snapshot_base_domains(head) if normalise
                                else head.domain_set())
                expected = set.intersection(*(set(s) for s in sets))
                assert count == len(expected), (date, names)
