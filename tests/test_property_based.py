"""Property-based tests (hypothesis) for core data structures and invariants."""

from __future__ import annotations

import datetime as dt
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.domain.name import DomainName, InvalidDomainError, normalise
from repro.domain.psl import PublicSuffixList
from repro.providers.base import ListSnapshot
from repro.routing.prefix_trie import PrefixTrie
from repro.stats.kendall import kendall_tau
from repro.stats.ks import ks_distance
from repro.stats.summary import classify_deviation, mean_std, median
from repro.web.hsts import HstsPolicy, parse_hsts_header

# --------------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------------

_label = st.text(alphabet=string.ascii_lowercase + string.digits, min_size=1, max_size=10)
_domain = st.builds(lambda labels, tld: ".".join(labels + [tld]),
                    st.lists(_label, min_size=1, max_size=4),
                    st.sampled_from(["com", "net", "org", "de", "co.uk", "io"]))
_rank_sample = st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=50)


class TestDomainProperties:
    @given(_domain)
    def test_normalise_idempotent(self, name):
        once = normalise(name)
        assert normalise(once) == once

    @given(_domain)
    def test_parse_roundtrip_depth_consistent(self, name):
        parsed = DomainName.parse(name)
        # Depth equals number of labels left of the base domain.
        if parsed.base is not None:
            assert parsed.depth == parsed.name.count(".") - parsed.base.count(".")
            assert parsed.name.endswith(parsed.base)
        assert parsed.public_suffix is None or parsed.name.endswith(parsed.public_suffix)

    @given(_domain)
    def test_base_domain_is_fixed_point(self, name):
        psl = PublicSuffixList()
        base = psl.base_domain(name)
        if base is not None:
            assert psl.base_domain(base) == base

    @given(st.text(max_size=5).filter(lambda s: not s.strip().strip(".")))
    def test_empty_like_names_rejected(self, text):
        with pytest.raises(InvalidDomainError):
            normalise(text)


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                    min_size=2, max_size=50))
    def test_kendall_self_correlation_is_one(self, values):
        distinct = list(dict.fromkeys(values))
        if len(distinct) < 2:
            return
        assert kendall_tau(distinct, distinct) == pytest.approx(1.0)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                    min_size=2, max_size=50),
           st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                    min_size=2, max_size=50))
    def test_kendall_symmetric_and_bounded(self, x, y):
        n = min(len(x), len(y))
        x, y = x[:n], y[:n]
        if n < 2:
            return
        tau_xy = kendall_tau(x, y)
        tau_yx = kendall_tau(y, x)
        assert tau_xy == pytest.approx(tau_yx)
        assert -1.0 - 1e-9 <= tau_xy <= 1.0 + 1e-9

    @given(_rank_sample, _rank_sample)
    def test_ks_bounded_and_symmetric(self, a, b):
        d = ks_distance(a, b)
        assert 0.0 <= d <= 1.0
        assert d == pytest.approx(ks_distance(b, a))

    @given(_rank_sample)
    def test_ks_identity(self, a):
        assert ks_distance(a, a) == pytest.approx(0.0)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                    min_size=1, max_size=60))
    def test_mean_std_median_consistency(self, values):
        summary = mean_std(values)
        assert min(values) - 1e-9 <= summary.mean <= max(values) + 1e-9
        assert summary.std >= 0
        assert min(values) <= median(values) <= max(values)

    @given(st.floats(min_value=0, max_value=1000, allow_nan=False),
           st.floats(min_value=0, max_value=1000, allow_nan=False))
    def test_classification_antisymmetric(self, value, base):
        from repro.stats.summary import DeviationFlag
        flag = classify_deviation(value, base)
        if flag is DeviationFlag.EXCEEDS:
            assert value > base
        elif flag is DeviationFlag.FALLS_BEHIND:
            assert value < base


class TestSnapshotProperties:
    @given(st.lists(_domain, min_size=1, max_size=40, unique=True))
    @settings(max_examples=40)
    def test_csv_roundtrip(self, entries):
        import pathlib
        import tempfile

        snapshot = ListSnapshot(provider="prop", date=dt.date(2018, 1, 1),
                                entries=tuple(entries))
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "list.csv"
            snapshot.to_csv(path)
            loaded = ListSnapshot.from_csv(path, provider="prop", date=snapshot.date)
        assert loaded.entries == snapshot.entries

    @given(st.lists(_domain, min_size=2, max_size=40, unique=True),
           st.integers(min_value=1, max_value=40))
    def test_top_is_prefix(self, entries, n):
        snapshot = ListSnapshot(provider="prop", date=dt.date(2018, 1, 1),
                                entries=tuple(entries))
        n = min(n, len(entries))
        head = snapshot.top(n)
        assert head.entries == snapshot.entries[:n]
        for rank, domain in enumerate(head.entries, start=1):
            assert snapshot.rank_of(domain) == rank


class TestHstsProperties:
    @given(st.integers(min_value=0, max_value=10**9), st.booleans(), st.booleans())
    def test_header_roundtrip(self, max_age, include_subdomains, preload):
        policy = HstsPolicy(max_age=max_age, include_subdomains=include_subdomains,
                            preload=preload)
        assert parse_hsts_header(policy.header_value()) == policy


class TestPrefixTrieProperties:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=2**32 - 1),
                              st.integers(min_value=8, max_value=30)),
                    min_size=1, max_size=20),
           st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=60)
    def test_matches_ipaddress_reference(self, raw_prefixes, raw_address):
        import ipaddress
        trie: PrefixTrie[str] = PrefixTrie()
        networks = []
        for raw, length in raw_prefixes:
            network = ipaddress.ip_network((raw, length), strict=False)
            networks.append(network)
            trie.insert(str(network), str(network))
        address = ipaddress.IPv4Address(raw_address)
        expected = None
        best = -1
        for network in networks:
            if address in network and network.prefixlen > best:
                expected = str(network)
                best = network.prefixlen
        assert trie.lookup(str(address)) == expected
