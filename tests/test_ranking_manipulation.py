"""Tests for the rank-manipulation experiments (Section 7.2/7.3)."""

import pytest

from repro.ranking.manipulation import (
    AlexaPanelInjectionExperiment,
    MajesticBacklinkExperiment,
    UmbrellaInjectionExperiment,
    UmbrellaTtlExperiment,
)


@pytest.fixture(scope="module")
def umbrella_experiment(small_run) -> UmbrellaInjectionExperiment:
    return UmbrellaInjectionExperiment(small_run.provider("umbrella"))


class TestUmbrellaInjection:
    def test_grid_shape(self, umbrella_experiment):
        grid = umbrella_experiment.run_grid(6, probe_counts=(100, 1_000),
                                            query_frequencies=(1, 10))
        assert len(grid) == 4
        assert all(outcome.n_probes in (100, 1_000) for outcome in grid.values())

    def test_more_probes_better_rank(self, umbrella_experiment):
        few = umbrella_experiment.run_cell(6, n_probes=100, queries_per_day=10)
        many = umbrella_experiment.run_cell(6, n_probes=10_000, queries_per_day=10)
        assert many.listed
        if few.listed:
            assert many.rank < few.rank

    def test_probe_count_dominates_query_volume(self, umbrella_experiment):
        # Figure 5's headline: 10k probes at 1 q/day (10k queries) rank far
        # better than 1k probes at 100 q/day (100k queries).
        outcome = umbrella_experiment.probes_vs_volume_effect(6)
        assert outcome["10k-probes-1q"] is not None
        assert outcome["1k-probes-100q"] is not None
        assert outcome["10k-probes-1q"] < outcome["1k-probes-100q"]

    def test_rank_disappears_after_stopping(self, umbrella_experiment):
        assert umbrella_experiment.rank_after_stopping(7) is None

    def test_outcome_listed_property(self, umbrella_experiment):
        outcome = umbrella_experiment.run_cell(6, n_probes=0, queries_per_day=0)
        assert not outcome.listed


class TestUmbrellaTtl:
    def test_ttl_has_marginal_effect(self, small_run):
        experiment = UmbrellaTtlExperiment(small_run.provider("umbrella"),
                                           n_probes=2_000, queries_per_day=96)
        ranks = experiment.run(6)
        assert len(ranks) == 5
        listed = [rank for rank in ranks.values() if rank is not None]
        assert listed, "TTL variants should reach the list"
        # The paper finds all variants within < 1k places of each other; at
        # our scaled list size the band is proportionally small.
        spread = experiment.max_rank_spread(6)
        assert spread is not None
        assert spread <= small_run.config.list_size * 0.05


class TestAlexaPanelInjection:
    @pytest.fixture(scope="class")
    def experiment(self, request) -> AlexaPanelInjectionExperiment:
        small_run = request.getfixturevalue("small_run")
        return AlexaPanelInjectionExperiment(small_run.provider("alexa"))

    def test_more_installations_better_rank(self, experiment):
        low = experiment.rank_for_installations(6, 20)
        high = experiment.rank_for_installations(6, 5_000)
        assert high is not None
        if low is not None:
            assert high < low

    def test_zero_installations_not_listed(self, experiment):
        assert experiment.rank_for_installations(6, 0) is None
        with pytest.raises(ValueError):
            experiment.rank_for_installations(6, -1)

    def test_installations_for_rank_roundtrip(self, experiment):
        needed = experiment.installations_for_rank(6, 50)
        achieved = experiment.rank_for_installations(6, needed)
        assert achieved is not None
        assert achieved <= 50

    def test_sweep_and_validation(self, experiment):
        sweep = experiment.sweep(6, [10, 1_000])
        assert set(sweep) == {10, 1_000}
        with pytest.raises(ValueError):
            experiment.installations_for_rank(6, 0)

    def test_invalid_page_views_rejected(self, small_run):
        with pytest.raises(ValueError):
            AlexaPanelInjectionExperiment(small_run.provider("alexa"),
                                          page_views_per_installation=-1)


class TestMajesticBacklinks:
    @pytest.fixture(scope="class")
    def experiment(self, request) -> MajesticBacklinkExperiment:
        small_run = request.getfixturevalue("small_run")
        return MajesticBacklinkExperiment(small_run.provider("majestic"))

    def test_more_backlinks_better_rank(self, experiment):
        low = experiment.rank_for_backlinks(6, 30)
        high = experiment.rank_for_backlinks(6, 3_000)
        assert high is not None
        if low is not None:
            assert high < low

    def test_zero_backlinks_not_listed(self, experiment):
        assert experiment.rank_for_backlinks(6, 0) is None
        with pytest.raises(ValueError):
            experiment.rank_for_backlinks(6, -5)

    def test_backlinks_for_rank_roundtrip(self, experiment, small_run):
        target_rank = 50
        needed = experiment.backlinks_for_rank(6, target_rank)
        achieved = experiment.rank_for_backlinks(6, needed)
        assert achieved is not None
        assert achieved <= target_rank

    def test_backlinks_for_rank_validation(self, experiment):
        with pytest.raises(ValueError):
            experiment.backlinks_for_rank(6, 0)

    def test_sweep(self, experiment):
        sweep = experiment.sweep(6, [10, 100, 1_000])
        assert set(sweep) == {10, 100, 1_000}
