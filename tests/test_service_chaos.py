"""Chaos differential tests: replicated serving under injected faults.

The headline robustness claim of the serving layer, as a test: under a
*seeded* chaos schedule — leader processes killed mid-append, shard
tails torn, manifest renames failing, replication responses dropped —
the leader recovers, the follower resyncs, and at every shared version
the two serve **byte-identical** payloads from byte-identical store
files, with zero unhandled errors escaping a serving thread.

Every schedule is a :class:`repro.faults.FaultPlan`, so a failing run
reproduces exactly from its seed.  ``REPRO_CHAOS_SEED`` (the CI seed
matrix) shifts all schedule seeds, widening coverage across jobs
without giving up determinism within one.

Process deaths are simulated, not real: an ``InjectedCrash`` unwinds to
the harness (no rollback, no flush — dead processes run no cleanup),
which "restarts" the node by reopening its store from disk, exactly the
recovery path a real supervisor restart would take.
"""

import datetime as dt
import http.client
import json
import os
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro import faults
from repro.faults import FaultPlan, FaultRule, InjectedCrash
from repro.providers.base import ListSnapshot
from repro.service.api import ApiError, QueryService, create_server
from repro.service.replica import Replica, http_fetcher
from repro.service.store import ArchiveStore
from repro.util.retry import (
    CircuitBreaker,
    CircuitOpenError,
    RetryExhaustedError,
    RetryPolicy,
)

#: CI shifts this to widen seed coverage across jobs (matrix dimension).
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

BASE_DATE = dt.date(2018, 5, 1)
PROVIDERS = ("alexa", "umbrella")
DAYS = 6

#: Endpoints whose payloads must be byte-identical at a shared version.
DIFFERENTIAL_TARGETS = (
    "/v1/meta",
    "/v1/providers/alexa/stability",
    "/v1/providers/umbrella/stability?top_n=3",
    "/v1/domains/shared.org/history",
    "/v1/compare?providers=alexa,umbrella",
    "/v1/replication/log?since=0&max=256",
)

#: The named chaos schedules of the acceptance criteria, plus extras.
SCHEDULES = {
    "leader-kill-mid-append": [
        FaultRule("store.shard.write", "crash", probability=0.2, max_fires=2),
        FaultRule("store.table.write", "crash", probability=0.15, max_fires=1),
        FaultRule("store.manifest.rename.before", "crash",
                  probability=0.2, max_fires=1),
    ],
    "torn-shard-tail": [
        FaultRule("store.shard.write", "torn", probability=0.35, max_fires=4),
        FaultRule("store.table.write", "torn", probability=0.2, max_fires=2),
    ],
    "failed-manifest-rename": [
        FaultRule("store.manifest.rename.before", "error",
                  probability=0.35, max_fires=4),
        FaultRule("store.manifest.fsync", "error",
                  probability=0.2, max_fires=2),
    ],
    "dropped-replication-responses": [
        FaultRule("replica.fetch", "drop", probability=0.45, max_fires=8),
    ],
    "crash-after-manifest-publish": [
        # The data is durable, only post-rename cleanup dies: restart
        # must keep the record (re-ingest answers 409 Conflict).
        FaultRule("store.manifest.rename.after", "crash", on_calls=(2,)),
    ],
    "replica-crash-mid-apply": [
        FaultRule("replica.apply", "crash", on_calls=(3, 11)),
        FaultRule("store.dirty.fsync", "error", probability=0.2, max_fires=2),
    ],
    "kitchen-sink": [
        FaultRule("store.shard.write", "torn", probability=0.12, max_fires=2),
        FaultRule("store.manifest.rename.before", "error",
                  probability=0.12, max_fires=2),
        FaultRule("store.shard.fsync", "crash", probability=0.08, max_fires=1),
        FaultRule("replica.fetch", "drop", probability=0.25, max_fires=4),
        FaultRule("replica.apply", "crash", probability=0.06, max_fires=1),
    ],
}


def _snapshot(provider: str, day: int) -> ListSnapshot:
    entries = tuple(f"{provider}-d{day}-r{rank}.com" for rank in range(4)) + (
        "shared.org", f"rotating-{day % 3}.net")
    return ListSnapshot(provider, BASE_DATE + dt.timedelta(days=day), entries)


class _ChaosHarness:
    """A leader and a follower whose 'processes' the plan may kill.

    Node state lives behind this object so a simulated restart can drop
    the in-memory objects and reopen from disk — the only recovery a
    real crash leaves available.
    """

    def __init__(self, root: Path) -> None:
        self.root = root
        self.leader_store = ArchiveStore(root / "leader")
        self.leader = QueryService(self.leader_store)
        self.follower_store = ArchiveStore(root / "follower")
        self.follower = QueryService(self.follower_store, role="follower")
        self.replica = self._make_replica()
        self.leader_restarts = 0
        self.follower_restarts = 0

    # -- node lifecycle ---------------------------------------------------
    def restart_leader(self) -> None:
        self.leader_store = ArchiveStore(self.root / "leader", create=False)
        self.leader = QueryService(self.leader_store)
        self.leader_restarts += 1

    def restart_follower(self) -> None:
        self.follower_store = ArchiveStore(self.root / "follower",
                                           create=False)
        self.follower = QueryService(self.follower_store, role="follower")
        self.replica = self._make_replica()
        self.follower_restarts += 1

    def _make_replica(self) -> Replica:
        replica = Replica(
            self.follower_store, self._fetch, batch=3, sleep=lambda s: None,
            policy=RetryPolicy(max_attempts=10, base_delay=0.0, max_delay=0.0),
            breaker=CircuitBreaker(failure_threshold=100))
        self.follower.attach_replica(replica)
        return replica

    def _fetch(self, since: int, limit: int) -> dict:
        response = self.leader.handle_request(
            f"/v1/replication/log?since={since}&max={limit}")
        if response.status != 200:
            raise OSError(f"replication fetch failed: {response.status}")
        return response.json()

    # -- chaos-tolerant operations ----------------------------------------
    def ingest(self, snapshot: ListSnapshot) -> None:
        """Ingest one day on the leader, surviving faults and crashes."""
        for _ in range(25):
            try:
                self.leader.ingest(snapshot)
                return
            except InjectedCrash:
                self.restart_leader()
                # The append may have become durable before the death
                # (crash after the manifest rename): the retry below
                # then answers 409, which is success.
            except ApiError as error:
                if error.status == 409:
                    return
                raise
            except OSError:
                continue  # injected I/O failure; append rolled back
        raise AssertionError(f"could not ingest {snapshot.date} under chaos")

    def sync(self) -> None:
        """Drive the follower to staleness 0, surviving its crashes."""
        for _ in range(40):
            try:
                self.replica.sync_once()
                if self.replica.staleness() == 0:
                    return
            except InjectedCrash:
                self.restart_follower()
            except (RetryExhaustedError, CircuitOpenError, OSError):
                continue
        raise AssertionError("follower could not catch up under chaos")

    # -- oracles ----------------------------------------------------------
    def assert_converged(self) -> None:
        assert self.follower_store.version == self.leader_store.version
        assert self.replica.staleness() == 0
        for name in ("interner.tbl",):
            assert (self.root / "leader" / name).read_bytes() == \
                (self.root / "follower" / name).read_bytes()
        leader_shards = sorted(
            p.relative_to(self.root / "leader")
            for p in (self.root / "leader").rglob("*.rls"))
        follower_shards = sorted(
            p.relative_to(self.root / "follower")
            for p in (self.root / "follower").rglob("*.rls"))
        assert leader_shards == follower_shards
        for shard in leader_shards:
            assert (self.root / "leader" / shard).read_bytes() == \
                (self.root / "follower" / shard).read_bytes(), shard

    def assert_payloads_identical(self) -> None:
        for target in DIFFERENTIAL_TARGETS:
            left = self.leader.handle_request(target)
            right = self.follower.handle_request(target)
            assert left.status == right.status == 200, target
            assert left.body == right.body, target

    def assert_no_internal_errors(self) -> None:
        assert self.leader.internal_errors == []
        assert self.follower.internal_errors == []


@pytest.fixture(autouse=True)
def _clean_plan():
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.mark.parametrize("schedule", sorted(SCHEDULES))
def test_chaos_differential(schedule: str, tmp_path: Path) -> None:
    """The headline oracle, once per named fault schedule."""
    harness = _ChaosHarness(tmp_path)
    seed = CHAOS_SEED * 1000 + sum(ord(c) for c in schedule)
    plan = FaultPlan(seed, SCHEDULES[schedule])
    with faults.injected(plan):
        for day in range(DAYS):
            for provider in PROVIDERS:
                harness.ingest(_snapshot(provider, day))
            harness.sync()
            # Shared version reached: the differential must hold *now*,
            # mid-chaos, not only after the dust settles.
            harness.assert_payloads_identical()
    harness.sync()
    harness.assert_converged()
    harness.assert_payloads_identical()
    harness.assert_no_internal_errors()
    # The schedule must have actually executed faults — a plan that
    # never fired proves nothing about robustness.
    assert plan.fired, f"schedule {schedule!r} fired no faults"


def test_crash_after_publish_keeps_record(tmp_path: Path) -> None:
    """A death after the manifest rename must preserve the append."""
    harness = _ChaosHarness(tmp_path)
    plan = FaultPlan(1, [FaultRule("store.manifest.rename.after", "crash",
                                   on_calls=(1,))])
    snapshot = _snapshot("alexa", 0)
    with faults.injected(plan):
        harness.ingest(snapshot)
    assert faults.fired_crash(plan)
    assert harness.leader_restarts == 1
    assert harness.leader_store.dates("alexa") == [snapshot.date]
    assert harness.leader_store.load_snapshot(
        "alexa", snapshot.date).entries == snapshot.entries


def test_seeded_schedule_is_reproducible(tmp_path: Path) -> None:
    """Two runs of one schedule+seed fire the identical fault sequence."""
    def run(root: Path) -> list:
        harness = _ChaosHarness(root)
        plan = FaultPlan(99, SCHEDULES["torn-shard-tail"])
        with faults.injected(plan):
            for day in range(3):
                harness.ingest(_snapshot("alexa", day))
            harness.sync()
        return list(plan.fired)

    assert run(tmp_path / "a") == run(tmp_path / "b")


def test_wire_chaos_keeps_serving_threads_alive(tmp_path: Path) -> None:
    """Socket-level faults: every handler thread survives, tripwire empty.

    The leader's HTTP server runs under torn/dropped response writes and
    failing request reads; a real follower tails it over HTTP through
    the retry policy, and clients keep querying both.  Nothing may land
    in ``ApiHTTPServer.unhandled_errors`` — connection deaths are a
    handled condition, not an escape.
    """
    leader_store = ArchiveStore(tmp_path / "leader")
    for day in range(2):
        leader_store.append(_snapshot("alexa", day))
    leader = QueryService(leader_store)
    leader_server = create_server(leader, port=0)
    leader_port = leader_server.server_address[1]
    threading.Thread(target=leader_server.serve_forever, daemon=True).start()

    follower_store = ArchiveStore(tmp_path / "follower")
    follower = QueryService(follower_store, role="follower")
    replica = Replica(
        follower_store, http_fetcher(f"http://127.0.0.1:{leader_port}"),
        policy=RetryPolicy(max_attempts=12, base_delay=0.0, max_delay=0.01),
        breaker=CircuitBreaker(failure_threshold=200), sleep=lambda s: None)
    follower.attach_replica(replica)

    plan = FaultPlan(CHAOS_SEED * 1000 + 7, [
        FaultRule("api.response.write", "torn", probability=0.3, max_fires=6),
        FaultRule("api.response.write", "drop", probability=0.2, max_fires=4),
        FaultRule("api.request.read", "drop", probability=0.3, max_fires=3),
    ])
    try:
        with faults.injected(plan):
            for _ in range(30):
                try:
                    replica.sync_once()
                except (RetryExhaustedError, CircuitOpenError, OSError,
                        ValueError):
                    continue
                if replica.staleness() == 0:
                    break
            # Clients keep hammering the leader while responses tear.
            for _ in range(20):
                try:
                    with urllib.request.urlopen(
                            f"http://127.0.0.1:{leader_port}/v1/meta",
                            timeout=5) as response:
                        response.read()
                except (OSError, urllib.error.URLError,
                        http.client.HTTPException):
                    # Torn responses reach the client as IncompleteRead —
                    # client-visible damage is the point; the *server*
                    # side must stay clean (asserted below).
                    continue
            # Ingest POSTs whose body reads may be dropped mid-upload.
            body = json.dumps({
                "provider": "umbrella", "date": "2018-05-01",
                "entries": ["wire-a.com", "wire-b.org"]}).encode()
            for _ in range(10):
                request = urllib.request.Request(
                    f"http://127.0.0.1:{leader_port}/v1/ingest", data=body,
                    headers={"Content-Type": "application/json"},
                    method="POST")
                try:
                    with urllib.request.urlopen(request, timeout=5):
                        break
                except urllib.error.HTTPError as error:
                    if error.code == 409:
                        break
                    continue
                except (OSError, urllib.error.URLError):
                    continue
        # Chaos off: the follower must now converge fully.
        replica.sync_to_leader()
    finally:
        leader_server.shutdown()
        leader_server.server_close()
    assert plan.fired, "wire schedule fired no faults"
    assert leader_server.unhandled_errors == []
    assert follower_store.version == leader_store.version
    for target in ("/v1/meta", "/v1/providers/alexa/stability"):
        assert leader.handle_request(target).body == \
            follower.handle_request(target).body, target


def test_degraded_admission_answers_503(tmp_path: Path) -> None:
    """An ``error`` rule at api.request is load-shedding, not a 500."""
    store = ArchiveStore(tmp_path / "s")
    store.append(_snapshot("alexa", 0))
    service = QueryService(store)
    plan = FaultPlan(3, [FaultRule("api.request", "error", on_calls=(2,))])
    with faults.injected(plan):
        assert service.handle_request("/v1/meta").status == 200
        degraded = service.handle_request("/v1/meta")
        assert degraded.status == 503
        assert "degraded" in degraded.json()["error"]["message"]
        assert service.handle_request("/v1/meta").status == 200
    # Deliberate degradation is not an internal error.
    assert service.internal_errors == []


class TestPoolWriterChaos:
    """Writer-process death under the pre-fork pool — real processes.

    The harness-level schedules above *simulate* a process death by
    unwinding ``InjectedCrash`` to the test.  Here the same seeded
    schedule runs under :class:`~repro.service.workers.WorkerPool`,
    where the crash is a real ``os._exit`` in a forked writer: the
    parent respawns the slot, the retried ingest goes through the
    store's recovery path on disk, and every read worker converges to
    byte-identical payloads.
    """

    POOL_TARGETS = (
        "/v1/meta",
        "/v1/providers/alexa/stability",
        "/v1/domains/shared.org/history",
    )

    @staticmethod
    def _writer_init_factory(counter: Path):
        """Per-incarnation seeded plans for the writer process.

        Incarnation 0 crashes deterministically on its second shard
        append (mid-run, with data already durable); later incarnations
        draw from their own child streams with bounded fires, so every
        respawn can make progress and the whole schedule replays from
        ``REPRO_CHAOS_SEED``.
        """
        def worker_init(role: str, index: int) -> None:
            if role != "writer":
                return
            incarnation = int(counter.read_text()) if counter.exists() else 0
            counter.write_text(str(incarnation + 1))
            if incarnation == 0:
                rules = [FaultRule("store.shard.write", "crash",
                                   on_calls=(2,))]
            else:
                rules = [FaultRule("store.*.write", "crash",
                                   probability=0.2, max_fires=1)]
            faults.install(
                FaultPlan(CHAOS_SEED * 4099 + incarnation, rules))
        return worker_init

    @pytest.mark.skipif(not hasattr(os, "fork"),
                        reason="worker pool requires os.fork")
    def test_writer_crash_mid_append_under_pool(self, tmp_path: Path) -> None:
        from repro.service.workers import CRASH_EXIT_CODE, WorkerPool

        root = tmp_path / "pool-store"
        store = ArchiveStore(root)
        store.append(_snapshot("alexa", 0))
        store.append(_snapshot("umbrella", 0))
        store.close()

        import time

        def post_ingest(base: str, snapshot: ListSnapshot) -> None:
            body = json.dumps({
                "provider": snapshot.provider,
                "date": snapshot.date.isoformat(),
                "entries": list(snapshot.entries)}).encode()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                request = urllib.request.Request(
                    base + "/v1/ingest", data=body,
                    headers={"Content-Type": "application/json"},
                    method="POST")
                try:
                    with urllib.request.urlopen(request, timeout=10) as r:
                        assert r.status == 200
                        return
                except urllib.error.HTTPError as error:
                    if error.code == 409:
                        return  # durable before the death: success
                    assert error.code == 503, error.code
                except (ConnectionError, http.client.RemoteDisconnected,
                        TimeoutError, OSError):
                    pass  # writer mid-death; retry
                time.sleep(0.1)
            raise AssertionError(f"ingest of {snapshot.date} never landed")

        def converged_bodies(base: str, version: int) -> dict:
            deadline = time.monotonic() + 15
            while time.monotonic() < deadline:
                meta = set()
                for _ in range(6):
                    try:
                        with urllib.request.urlopen(base + "/v1/meta",
                                                    timeout=10) as r:
                            meta.add(r.read())
                    except (ConnectionError,
                            http.client.RemoteDisconnected):
                        break
                if len(meta) == 1 and json.loads(
                        meta.pop())["store_version"] == version:
                    return {
                        target: urllib.request.urlopen(
                            base + target, timeout=10).read()
                        for target in TestPoolWriterChaos.POOL_TARGETS}
                time.sleep(0.1)
            raise AssertionError(f"pool never converged on v{version}")

        counter = tmp_path / "writer-incarnation"
        with WorkerPool(root, workers=2, poll_interval=0.05,
                        worker_init=self._writer_init_factory(counter)
                        ) as pool:
            base = f"http://127.0.0.1:{pool.port}"
            with urllib.request.urlopen(base + "/v1/meta") as r:
                start_version = json.loads(r.read())["store_version"]
            for day in range(1, DAYS):
                for provider in PROVIDERS:
                    post_ingest(base, _snapshot(provider, day))
            final = start_version + (DAYS - 1) * len(PROVIDERS)
            bodies = converged_bodies(base, final)
            # The schedule executed: the writer really died and came
            # back (incarnation counter past 1, crash exit recorded).
            writer = next(w for w in pool.describe()["workers"]
                          if w["role"] == "writer")
            assert writer["restarts"] >= 1
            assert writer["last_exit"] == CRASH_EXIT_CODE
            assert int(counter.read_text()) == writer["restarts"] + 1
            # Byte-identity at the converged version, across many hits
            # of the kernel-balanced accept loop.
            for target, expected in bodies.items():
                for _ in range(6):
                    with urllib.request.urlopen(base + target,
                                                timeout=10) as r:
                        assert r.read() == expected, target
