"""Tests for the Section 9 recommendation checker."""

import pytest

from repro.core.recommendations import (
    Finding,
    RecommendationReport,
    Severity,
    StudyPlan,
    StudyPurpose,
    evaluate_study_plan,
)


def make_plan(**overrides):
    defaults = dict(purpose=StudyPurpose.PROTOCOL_ADOPTION,
                    lists_used=("alexa",),
                    measurement_days=7,
                    documents_list_date=True,
                    documents_measurement_date=True,
                    publishes_list_copy=True,
                    generalises_to_internet=False)
    defaults.update(overrides)
    return StudyPlan(**defaults)


class TestPlanLevelChecks:
    def test_well_documented_plan_passes(self):
        report = evaluate_study_plan(make_plan())
        assert report.passes
        assert not report.critical

    def test_missing_dates_are_critical(self):
        report = evaluate_study_plan(make_plan(documents_list_date=False,
                                               documents_measurement_date=False))
        assert not report.passes
        assert len(report.critical) == 2

    def test_missing_list_copy_is_warning(self):
        report = evaluate_study_plan(make_plan(publishes_list_copy=False))
        assert report.passes
        assert any("list copy" in f.message for f in report.warnings)

    def test_general_population_claims_need_population_sample(self):
        report = evaluate_study_plan(make_plan(purpose=StudyPurpose.GENERAL_POPULATION))
        assert not report.passes

    def test_dns_study_on_web_list_flagged(self):
        report = evaluate_study_plan(make_plan(purpose=StudyPurpose.DNS_TRAFFIC,
                                               lists_used=("alexa",)))
        assert any(f.check == "list choice" and f.severity is Severity.WARNING
                   for f in report.findings)

    def test_umbrella_suits_dns_studies(self):
        report = evaluate_study_plan(make_plan(purpose=StudyPurpose.DNS_TRAFFIC,
                                               lists_used=("umbrella",)))
        assert not any(f.check == "list choice" and f.severity is Severity.WARNING
                       for f in report.findings)

    def test_no_list_selected_warns(self):
        report = evaluate_study_plan(make_plan(lists_used=()))
        assert any(f.check == "list choice" for f in report.warnings)

    def test_generalisation_warning(self):
        report = evaluate_study_plan(make_plan(generalises_to_internet=True))
        assert any(f.check == "generalisation" for f in report.warnings)

    def test_render_and_str(self):
        report = evaluate_study_plan(make_plan(publishes_list_copy=False))
        text = report.render()
        assert "protocol adoption" in text
        assert "[warning]" in text
        assert str(Finding("x", Severity.INFO, "y")).startswith("[info]")


class TestDataDrivenChecks:
    def test_one_off_measurement_on_churning_list_is_critical(self, small_run):
        plan = make_plan(lists_used=("umbrella",), measurement_days=1)
        report = evaluate_study_plan(plan, archives=small_run.archives)
        assert any(f.check == "stability" and f.severity is Severity.CRITICAL
                   for f in report.findings)

    def test_longitudinal_measurement_downgrades_to_info(self, small_run):
        plan = make_plan(lists_used=("umbrella",), measurement_days=14)
        report = evaluate_study_plan(plan, archives=small_run.archives)
        assert not any(f.check == "stability" and f.severity is Severity.CRITICAL
                       for f in report.findings)

    def test_stable_list_reported_as_info(self, small_run):
        plan = make_plan(lists_used=("majestic",), measurement_days=1)
        report = evaluate_study_plan(plan, archives=small_run.archives)
        stability = [f for f in report.findings if f.check == "stability"]
        assert stability and all(f.severity is Severity.INFO for f in stability)

    def test_abrupt_change_detected_for_alexa(self, small_run):
        plan = make_plan(lists_used=("alexa",), measurement_days=14)
        report = evaluate_study_plan(plan, archives=small_run.archives)
        assert any("abruptly" in f.message for f in report.findings)

    def test_invalid_tld_and_subdomain_warnings_for_umbrella(self, small_run):
        plan = make_plan(purpose=StudyPurpose.WEB_CONTENT, lists_used=("umbrella",),
                         measurement_days=14)
        report = evaluate_study_plan(plan, archives=small_run.archives)
        messages = " ".join(f.message for f in report.findings)
        assert "invalid TLDs" in messages
        assert "subdomains" in messages

    def test_missing_archive_handled(self, small_run):
        plan = make_plan(lists_used=("quantcast",))
        report = evaluate_study_plan(plan, archives=small_run.archives)
        assert any(f.check == "data availability" for f in report.findings)

    def test_report_accessors(self, small_run):
        plan = make_plan(lists_used=("alexa", "umbrella"), measurement_days=1,
                         documents_list_date=False)
        report = evaluate_study_plan(plan, archives=small_run.archives)
        assert isinstance(report, RecommendationReport)
        assert report.critical and report.warnings
        assert not report.passes
