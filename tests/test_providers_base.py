"""Tests for list snapshots, archives and serialisation."""

import datetime as dt

import pytest

from repro.providers.base import ListArchive, ListSnapshot, joint_period


def snap(provider: str, day: int, entries) -> ListSnapshot:
    return ListSnapshot(provider=provider, date=dt.date(2017, 6, 6) + dt.timedelta(days=day),
                        entries=tuple(entries))


class TestListSnapshot:
    def test_basic_accessors(self):
        snapshot = snap("alexa", 0, ["a.com", "b.com", "c.com"])
        assert len(snapshot) == 3
        assert list(snapshot) == ["a.com", "b.com", "c.com"]
        assert "b.com" in snapshot
        assert "z.com" not in snapshot

    def test_rank_of(self):
        snapshot = snap("alexa", 0, ["a.com", "b.com"])
        assert snapshot.rank_of("a.com") == 1
        assert snapshot.rank_of("b.com") == 2
        assert snapshot.rank_of("missing.com") is None

    def test_top(self):
        snapshot = snap("alexa", 0, ["a.com", "b.com", "c.com"])
        head = snapshot.top(2)
        assert head.entries == ("a.com", "b.com")
        assert head.provider == "alexa"

    def test_top_invalid(self):
        with pytest.raises(ValueError):
            snap("alexa", 0, ["a.com"]).top(0)

    def test_duplicates_rejected(self):
        with pytest.raises(ValueError):
            snap("alexa", 0, ["a.com", "a.com"])

    def test_csv_roundtrip(self, tmp_path):
        snapshot = snap("umbrella", 2, ["a.com", "www.b.com", "c.de"])
        path = tmp_path / "list.csv"
        snapshot.to_csv(path)
        loaded = ListSnapshot.from_csv(path, provider="umbrella", date=snapshot.date)
        assert loaded.entries == snapshot.entries
        assert loaded.date == snapshot.date

    def test_domain_set_cached(self):
        snapshot = snap("alexa", 0, ["a.com", "b.com"])
        assert snapshot.domain_set() is snapshot.domain_set()


class TestListArchive:
    @pytest.fixture()
    def archive(self) -> ListArchive:
        archive = ListArchive(provider="alexa")
        for day in range(5):
            archive.add(snap("alexa", day, [f"d{i}.com" for i in range(day, day + 10)]))
        return archive

    def test_len_and_dates(self, archive):
        assert len(archive) == 5
        assert archive.dates() == sorted(archive.dates())

    def test_getitem_by_index_and_date(self, archive):
        first = archive[0]
        assert archive[first.date] is first
        assert archive[-1].date == max(archive.dates())

    def test_provider_mismatch_rejected(self, archive):
        with pytest.raises(ValueError):
            archive.add(snap("umbrella", 9, ["x.com"]))

    def test_duplicate_date_rejected(self, archive):
        # Silently shadowing an archived day would stale every derived
        # cache and index without a trace; the archive must refuse.
        duplicate = snap("alexa", 2, ["replacement.com"])
        assert duplicate.date in archive
        with pytest.raises(ValueError, match="already holds"):
            archive.add(duplicate)
        # The original snapshot and the date index are untouched.
        assert "replacement.com" not in archive[duplicate.date]
        assert archive.dates() == sorted(set(archive.dates()))

    def test_period(self, archive):
        start = archive.dates()[1]
        end = archive.dates()[3]
        sub = archive.period(start, end)
        assert len(sub) == 3
        with pytest.raises(ValueError):
            archive.period(end, start)

    def test_top(self, archive):
        head = archive.top(3)
        assert all(len(s) == 3 for s in head)

    def test_contains(self, archive):
        assert archive.dates()[0] in archive
        assert dt.date(1999, 1, 1) not in archive

    def test_directory_roundtrip(self, archive, tmp_path):
        archive.to_directory(tmp_path)
        loaded = ListArchive.from_directory(tmp_path, provider="alexa")
        assert len(loaded) == len(archive)
        assert loaded[0].entries == archive[0].entries


class TestJointPeriod:
    def test_overlap(self):
        a = ListArchive(provider="alexa")
        b = ListArchive(provider="majestic")
        for day in range(5):
            a.add(snap("alexa", day, ["a.com"]))
        for day in range(3, 8):
            b.add(snap("majestic", day, ["b.com"]))
        start, end = joint_period([a, b])
        assert start == dt.date(2017, 6, 9)
        assert end == dt.date(2017, 6, 10)

    def test_no_overlap(self):
        a = ListArchive(provider="alexa")
        b = ListArchive(provider="majestic")
        a.add(snap("alexa", 0, ["a.com"]))
        b.add(snap("majestic", 5, ["b.com"]))
        assert joint_period([a, b]) == (None, None)

    def test_empty_input(self):
        assert joint_period([]) == (None, None)
