"""Tests for the incremental per-archive analysis caches.

Every cache function is a pure accelerator, so each test checks two
things: the result is identical to the naive per-day recomputation, and
the caching/invalidation behaviour (object identity on hits, staleness
on archive or PSL mutation) holds.
"""

from __future__ import annotations

import datetime as dt
import random

import pytest

from repro.core.cache import (
    archive_base_domain_sets,
    archive_domain_sets,
    archive_rank_series,
    archive_sld_count_events,
    counts_per_day,
    snapshot_base_domains,
)
from repro.core.structure import normalise_to_base_domains
from repro.domain.name import DomainName
from repro.domain.psl import PublicSuffixList
from repro.providers.base import ListArchive, ListSnapshot

START = dt.date(2018, 4, 1)


def _make_archive(provider: str = "alexa", days: int = 12, size: int = 120,
                  churn: int = 7, seed: int = 7) -> ListArchive:
    """Archive with ~`churn` entries changing per day, like real top lists."""
    rng = random.Random(seed)
    suffixes = ("com", "net", "org", "co.uk", "de", "blogspot.com", "unknowntld")
    pool = [f"d{i}.{rng.choice(suffixes)}" for i in range(size * 3)]
    pool += [f"www.d{i}.{rng.choice(suffixes)}" for i in range(size)]
    current = rng.sample(pool, size)
    archive = ListArchive(provider=provider)
    for day in range(days):
        for _ in range(churn):
            candidate = rng.choice(pool)
            if candidate not in current:
                current[rng.randrange(size)] = candidate
        rng.shuffle(current)
        archive.add(ListSnapshot(provider=provider,
                                 date=START + dt.timedelta(days=day),
                                 entries=tuple(current)))
    return archive


@pytest.fixture(scope="module")
def archive() -> ListArchive:
    return _make_archive()


class TestSnapshotBaseDomains:
    def test_matches_naive(self, archive):
        snapshot = archive[0]
        assert snapshot_base_domains(snapshot) == frozenset(
            normalise_to_base_domains(snapshot.entries))

    def test_cached_identity(self, archive):
        snapshot = archive[0]
        assert snapshot_base_domains(snapshot) is snapshot_base_domains(snapshot)

    def test_psl_version_keyed(self):
        snapshot = ListSnapshot(provider="p", date=START,
                                entries=("a.faketld", "b.faketld"))
        psl = PublicSuffixList(["com"])
        before = snapshot_base_domains(snapshot, psl=psl)
        assert before == frozenset({"a.faketld", "b.faketld"})
        psl.add_rule("faketld")
        after = snapshot_base_domains(snapshot, psl=psl)
        assert after == frozenset({"a.faketld", "b.faketld"})
        # Same answer, recomputed under the new version key; the
        # superseded generation is evicted rather than retained.
        cache = snapshot.__dict__["_base_domain_sets"]
        assert len(cache) == 1 and next(iter(cache)) == psl.cache_key


class TestArchiveBaseDomainSets:
    @pytest.mark.parametrize("top_n", [None, 40])
    def test_matches_naive_per_day(self, archive, top_n):
        sets = archive_base_domain_sets(archive, top_n=top_n)
        assert sorted(sets) == archive.dates()
        for snapshot in archive:
            head = snapshot.top(top_n) if top_n else snapshot
            assert sets[snapshot.date] == frozenset(
                normalise_to_base_domains(head.entries)), snapshot.date
    def test_cached_identity(self, archive):
        assert archive_base_domain_sets(archive) is archive_base_domain_sets(archive)

    def test_identical_days_share_one_set(self):
        entries = ("a.com", "www.a.com", "b.net")
        archive = ListArchive(provider="p")
        for day in range(3):
            archive.add(ListSnapshot(provider="p", date=START + dt.timedelta(days=day),
                                     entries=entries))
        sets = archive_base_domain_sets(archive)
        values = list(sets.values())
        assert values[0] is values[1] is values[2]
        assert values[0] == frozenset({"a.com", "b.net"})

    def test_shared_base_refcounting(self):
        # Day 2 drops www.a.com but keeps a.com: the base must survive.
        archive = ListArchive(provider="p")
        archive.add(ListSnapshot(provider="p", date=START,
                                 entries=("www.a.com", "a.com", "b.net")))
        archive.add(ListSnapshot(provider="p", date=START + dt.timedelta(days=1),
                                 entries=("a.com", "b.net", "c.org")))
        archive.add(ListSnapshot(provider="p", date=START + dt.timedelta(days=2),
                                 entries=("b.net", "c.org")))
        sets = archive_base_domain_sets(archive)
        assert sets[START] == frozenset({"a.com", "b.net"})
        assert sets[START + dt.timedelta(days=1)] == frozenset({"a.com", "b.net", "c.org"})
        assert sets[START + dt.timedelta(days=2)] == frozenset({"b.net", "c.org"})

    def test_returned_view_is_read_only(self, archive):
        sets = archive_base_domain_sets(archive)
        with pytest.raises((TypeError, AttributeError)):
            sets.pop(next(iter(sets)))  # type: ignore[attr-defined]
        series = archive_rank_series(archive)
        with pytest.raises((TypeError, AttributeError)):
            next(iter(series.values())).append((START, 1))  # type: ignore[attr-defined]

    def test_restricted_dates_match_full_run(self, archive):
        subset = archive.dates()[2:7]
        restricted = archive_base_domain_sets(archive, dates=subset)
        full = archive_base_domain_sets(archive)
        assert sorted(restricted) == subset
        for date in subset:
            assert restricted[date] == full[date]

    def test_restricted_dates_skip_other_days(self):
        # A malformed entry outside the requested dates must not be parsed.
        archive = ListArchive(provider="p")
        archive.add(ListSnapshot(provider="p", date=START, entries=("ok.com",)))
        archive.add(ListSnapshot(provider="p", date=START + dt.timedelta(days=1),
                                 entries=("bad..name",)))
        restricted = archive_base_domain_sets(archive, dates=[START])
        assert restricted == {START: frozenset({"ok.com"})}

    def test_date_subset_entries_are_bounded(self, archive):
        dates = archive.dates()
        for window in range(8):
            archive_base_domain_sets(archive, dates=dates[window:window + 3])
        keys = [k for k in archive.__dict__["_analysis_cache"]
                if k[:2] == ("base-domain-sets", None)]
        assert len(keys) <= 4, keys
        # The newest window is the one retained and still correct.
        latest = archive_base_domain_sets(archive, dates=dates[7:10])
        assert sorted(latest) == dates[7:10]

    def test_copied_archive_mutation_does_not_stale_original(self, archive):
        import copy

        baseline = dict(archive_base_domain_sets(archive))
        clone = copy.copy(archive)
        extra = max(archive.dates()) + dt.timedelta(days=30)
        clone.add(ListSnapshot(provider=archive.provider, date=extra,
                               entries=("clone-only.com",)))
        assert extra not in archive
        assert dict(archive_base_domain_sets(archive)) == baseline
        assert extra in archive_base_domain_sets(clone)

    def test_invalidated_on_archive_mutation(self, archive):
        first = archive_base_domain_sets(archive)
        extra_date = max(archive.dates()) + dt.timedelta(days=1)
        archive.add(ListSnapshot(provider=archive.provider, date=extra_date,
                                 entries=("brandnew.com",)))
        second = archive_base_domain_sets(archive)
        assert second is not first
        assert extra_date in second


class TestArchiveDomainSets:
    def test_matches_snapshots(self, archive):
        sets = archive_domain_sets(archive, top_n=25)
        for snapshot in archive:
            assert sets[snapshot.date] == frozenset(snapshot.entries[:25])


class TestSldCountEvents:
    def test_reconstruction_matches_naive(self, archive):
        dates, events = archive_sld_count_events(archive)
        assert list(dates) == archive.dates()
        for group, series in events.items():
            expanded = counts_per_day(series, len(dates))
            for index, snapshot in enumerate(archive):
                naive = sum(1 for name in snapshot.entries
                            if DomainName.parse(name).sld == group)
                assert expanded[index] == naive, (group, dates[index])

    def test_all_groups_covered(self, archive):
        _, events = archive_sld_count_events(archive)
        seen = {DomainName.parse(name).sld
                for snapshot in archive for name in snapshot.entries}
        seen.discard(None)
        assert set(events) == seen

    def test_cached_identity(self, archive):
        assert archive_sld_count_events(archive) is archive_sld_count_events(archive)


class TestRankSeries:
    def test_matches_naive(self, archive):
        series = archive_rank_series(archive, top_n=30)
        for snapshot in archive:
            for rank, domain in enumerate(snapshot.entries[:30], start=1):
                assert (snapshot.date, rank) in series[domain]
        # Observations are in date order.
        for observations in series.values():
            assert [d for d, _ in observations] == sorted(d for d, _ in observations)

    def test_cached_identity(self, archive):
        assert archive_rank_series(archive, top_n=30) is archive_rank_series(archive, top_n=30)


class TestLowChurnProfileInvalidation:
    """Invalidation at the paper's ~1% churn regime (``paper_realistic``).

    The delta engines do the least work exactly when consecutive days are
    nearly identical, so this is the regime in which a stale or
    under-invalidated cache would be most tempting — and hardest to spot.
    Each test mutates a (decoupled copy of the) scenario archive via
    ``archive.add`` or ``psl.add_rule`` and checks the cached results
    against a naive per-day recomputation.
    """

    @pytest.fixture(scope="class")
    def calm_archives(self):
        import copy

        from repro.providers.simulation import run_profile
        from repro.scenarios import get_profile

        run = run_profile(get_profile("paper_realistic"))
        # Copies decouple the mutable containers, so mutating them here
        # cannot stale the per-profile cached run other tests share.
        return {name: copy.copy(archive) for name, archive in run.archives.items()}

    @staticmethod
    def _churned_successor(archive: ListArchive, fraction: float = 0.01) -> ListSnapshot:
        """A next-day snapshot replacing ~``fraction`` of the last day."""
        last = archive[len(archive) - 1]
        entries = list(last.entries)
        n_churn = max(1, int(len(entries) * fraction))
        for i in range(n_churn):
            entries[-(i * 7 + 1)] = f"churned-in-{i}.example-churn.com"
        return ListSnapshot(provider=archive.provider,
                            date=last.date + dt.timedelta(days=1),
                            entries=tuple(entries))

    def test_profile_precondition_is_low_churn(self, calm_archives):
        from repro.core.stability import mean_daily_change

        fractions = [mean_daily_change(archive) / len(archive[0])
                     for archive in calm_archives.values()]
        assert 0.005 <= sum(fractions) / len(fractions) <= 0.02

    def test_add_invalidates_base_domain_sets(self, calm_archives):
        archive = calm_archives["alexa"]
        before = archive_base_domain_sets(archive)
        extra = self._churned_successor(archive)
        archive.add(extra)
        after = archive_base_domain_sets(archive)
        assert after is not before
        for snapshot in archive:
            assert after[snapshot.date] == frozenset(
                normalise_to_base_domains(snapshot.entries)), snapshot.date

    def test_add_invalidates_sld_count_events(self, calm_archives):
        from collections import Counter

        archive = calm_archives["majestic"]
        archive_sld_count_events(archive)
        archive.add(self._churned_successor(archive))
        dates, events = archive_sld_count_events(archive)
        assert list(dates) == archive.dates()
        naive_per_day = []
        for snapshot in archive:
            counts: Counter[str] = Counter()
            for name in snapshot.entries:
                sld = DomainName.parse(name).sld
                if sld is not None:
                    counts[sld] += 1
            naive_per_day.append(counts)
        assert set(events) == set().union(*(set(c) for c in naive_per_day))
        for group, series in events.items():
            expanded = counts_per_day(series, len(dates))
            for index in range(len(dates)):
                assert expanded[index] == naive_per_day[index].get(group, 0), (
                    group, dates[index])

    def test_add_rule_invalidates_normalisation(self, calm_archives):
        archive = calm_archives["umbrella"]
        psl = PublicSuffixList()
        before = archive_base_domain_sets(archive, psl=psl)
        # Promote the base of a listed FQDN to a public suffix, which
        # shifts that entry's base domain one label to the left.
        target = next(name for snapshot in archive for name in snapshot.entries
                      if name.count(".") >= 2)
        new_suffix = target.split(".", 1)[1]
        psl.add_rule(new_suffix)
        after = archive_base_domain_sets(archive, psl=psl)
        assert after is not before
        for snapshot in archive:
            assert after[snapshot.date] == frozenset(
                normalise_to_base_domains(snapshot.entries, psl=psl)), snapshot.date

    def test_add_rule_then_add_compose(self, calm_archives):
        archive = calm_archives["alexa"]
        psl = PublicSuffixList()
        archive_base_domain_sets(archive, psl=psl)
        archive.add(self._churned_successor(archive, fraction=0.01))
        psl.add_rule("example-churn.com")
        after = archive_base_domain_sets(archive, psl=psl)
        for snapshot in archive:
            assert after[snapshot.date] == frozenset(
                normalise_to_base_domains(snapshot.entries, psl=psl)), snapshot.date


class TestSnapshotTopSharing:
    def test_top_is_cached_and_identical(self, archive):
        snapshot = archive[0]
        assert snapshot.top(10) is snapshot.top(10)
        assert snapshot.top(10).entries == snapshot.entries[:10]

    def test_top_full_length_returns_self(self, archive):
        snapshot = archive[0]
        assert snapshot.top(len(snapshot)) is snapshot
        assert snapshot.top(10 * len(snapshot)) is snapshot

    def test_top_rank_delegation(self, archive):
        snapshot = archive[0]
        head = snapshot.top(10)
        for rank, domain in enumerate(snapshot.entries[:10], start=1):
            assert head.rank_of(domain) == rank
        beyond = snapshot.entries[10]
        assert head.rank_of(beyond) is None
        assert snapshot.rank_of(beyond) == 11
