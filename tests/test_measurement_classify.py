"""Tests for the disjunct-domain classification (Table 3)."""

import pytest

from repro.core.intersection import aggregate_top, disjunct_domains
from repro.measurement.classify import (
    BlacklistService,
    MobileTrafficMonitor,
    classify_disjunct,
)


class TestBlacklist:
    def test_membership(self):
        blacklist = BlacklistService(["tracker.net", "ads.example"])
        assert blacklist.is_blacklisted("tracker.net")
        assert blacklist.is_blacklisted("cdn.tracker.net")
        assert not blacklist.is_blacklisted("example.com")
        assert "tracker.net" in blacklist

    def test_share(self):
        blacklist = BlacklistService(["tracker.net"])
        assert blacklist.share(["tracker.net", "a.com"]) == pytest.approx(50.0)
        assert blacklist.share([]) == 0.0

    def test_from_internet(self, internet):
        blacklist = BlacklistService.from_internet(internet)
        assert len(blacklist) > 0
        blacklisted_domain = next(d for d in internet.domains if d.blacklisted)
        assert blacklist.is_blacklisted(blacklisted_domain.name)


class TestMobileMonitor:
    def test_membership_and_share(self):
        monitor = MobileTrafficMonitor(["api.app.example"])
        assert monitor.is_mobile("api.app.example")
        assert monitor.is_mobile("v2.api.app.example")
        assert monitor.share(["api.app.example", "other.org"]) == pytest.approx(50.0)

    def test_from_internet(self, internet):
        monitor = MobileTrafficMonitor.from_internet(internet)
        mobile_domain = next(d for d in internet.domains if d.mobile)
        assert monitor.is_mobile(mobile_domain.name)
        assert len(monitor) > 0


class TestClassifyDisjunct:
    def test_table3_structure(self, small_run, internet):
        top_k = small_run.config.top_k
        # The paper aggregates the raw Top-1k entries (FQDNs for Umbrella)
        # before computing disjunct domains, so normalisation is off here.
        aggregated = {name: aggregate_top(archive, top_n=top_k, last_days=7)
                      for name, archive in small_run.archives.items()}
        disjunct = disjunct_domains(aggregated, normalise=False)
        other_top1m = {}
        for name, archive in small_run.archives.items():
            union: set[str] = set()
            for other_name, other_archive in small_run.archives.items():
                if other_name != name:
                    union |= aggregate_top(other_archive, top_n=small_run.config.list_size,
                                           last_days=7)
            other_top1m[name] = union
        table = classify_disjunct(
            disjunct,
            blacklist=BlacklistService.from_internet(internet),
            mobile=MobileTrafficMonitor.from_internet(internet),
            other_top1m=other_top1m,
        )
        assert set(table) == {"alexa", "umbrella", "majestic"}
        umbrella = table["umbrella"]
        alexa = table["alexa"]
        # Umbrella's unique domains are far more likely to be trackers and
        # mobile-only services, and less likely to appear in the other
        # lists' Top 1M (Table 3).
        assert umbrella.mobile_share > alexa.mobile_share
        assert umbrella.blacklist_share > alexa.blacklist_share
        assert umbrella.other_top1m_share < alexa.other_top1m_share
        assert alexa.other_top1m_share > 50.0

    def test_empty_disjunct_sets(self):
        table = classify_disjunct({"alexa": []},
                                  blacklist=BlacklistService([]),
                                  mobile=MobileTrafficMonitor([]),
                                  other_top1m={})
        assert table["alexa"].disjunct_count == 0
        assert table["alexa"].other_top1m_share == 0.0
