"""Tests for the hosting infrastructure model."""

import ipaddress

import pytest

from repro.population.categories import DomainCategory
from repro.population.infrastructure import (
    PROVIDERS,
    build_as_database,
    ipv4_address,
    ipv6_address,
    provider_weights,
    small_hosting_providers,
)


class TestProviders:
    def test_paper_ases_present(self):
        # Figure 7d names these ASes explicitly.
        asns = {p.asn for p in PROVIDERS}
        for asn in (20940, 13335, 15169, 16509, 14618, 54113, 8075, 26496, 16276, 8560):
            assert asn in asns

    def test_unique_asns(self):
        asns = [p.asn for p in PROVIDERS]
        assert len(asns) == len(set(asns))

    def test_cdn_providers_have_cname_suffix(self):
        for provider in PROVIDERS:
            if provider.cdn_provider is not None:
                assert provider.cname_suffix

    def test_prefixes_parse(self):
        for provider in PROVIDERS:
            ipaddress.ip_network(provider.ipv4_prefix)
            ipaddress.ip_network(provider.ipv6_prefix)

    def test_godaddy_dominates_tail_not_head(self):
        godaddy = next(p for p in PROVIDERS if p.asn == 26496)
        assert godaddy.weight_tail > godaddy.weight_head
        akamai = next(p for p in PROVIDERS if p.asn == 20940)
        assert akamai.weight_head > akamai.weight_tail


class TestWeights:
    def test_head_and_tail_weights(self):
        head = provider_weights("head", DomainCategory.NEWS)
        tail = provider_weights("tail", DomainCategory.NEWS)
        assert len(head) == len(PROVIDERS) == len(tail)
        assert head != tail

    def test_tracker_weights_used_for_tracker_categories(self):
        for category in (DomainCategory.TRACKER, DomainCategory.MOBILE_API,
                         DomainCategory.CDN_INFRA):
            assert provider_weights("head", category) == [p.weight_tracker for p in PROVIDERS]

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError):
            provider_weights("middle", DomainCategory.NEWS)


class TestAddresses:
    def test_ipv4_inside_prefix(self):
        provider = PROVIDERS[0]
        for index in (0, 1, 12345):
            address = ipv4_address(provider, index)
            assert ipaddress.ip_address(address) in ipaddress.ip_network(provider.ipv4_prefix)

    def test_ipv6_inside_prefix(self):
        provider = PROVIDERS[0]
        address = ipv6_address(provider, 42)
        assert ipaddress.ip_address(address) in ipaddress.ip_network(provider.ipv6_prefix)

    def test_deterministic(self):
        provider = PROVIDERS[3]
        assert ipv4_address(provider, 7) == ipv4_address(provider, 7)


class TestSmallHosters:
    def test_count_and_uniqueness(self):
        hosters = small_hosting_providers(100)
        assert len(hosters) == 100
        assert len({h.asn for h in hosters}) == 100
        assert len({h.ipv4_prefix for h in hosters}) == 100

    def test_no_cdn(self):
        assert all(h.cdn_provider is None for h in small_hosting_providers(10))

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            small_hosting_providers(0)

    def test_deterministic(self):
        assert small_hosting_providers(5) == small_hosting_providers(5)


class TestAsDatabase:
    def test_named_and_small_hosters_announced(self):
        asdb = build_as_database()
        assert asdb.origin("104.16.0.1").name == "Cloudflare"
        assert asdb.origin("10.0.0.1") is not None  # a small hoster prefix

    def test_without_small_hosters(self):
        asdb = build_as_database(include_small_hosters=False)
        assert asdb.origin("10.0.0.1") is None
        assert len(asdb) == 2 * len(PROVIDERS)
