"""Tests for rank dynamics (Figures 1c and 4, Table 4)."""

import datetime as dt

import pytest

from repro.core.rank_dynamics import (
    churn_by_rank,
    kendall_tau_series,
    rank_variation,
    strong_correlation_share,
)
from repro.providers.base import ListArchive, ListSnapshot


@pytest.fixture()
def shifting_archive() -> ListArchive:
    """Stable head, churning tail."""
    archive = ListArchive(provider="toy")
    base = [f"top{i}.com" for i in range(5)]
    for day in range(6):
        tail = [f"tail{day}-{i}.com" for i in range(5)]
        archive.add(ListSnapshot(provider="toy", entries=tuple(base + tail),
                                 date=dt.date(2018, 1, 1) + dt.timedelta(days=day)))
    return archive


class TestChurnByRank:
    def test_head_stable_tail_churning(self, shifting_archive):
        churn = churn_by_rank(shifting_archive, subset_sizes=[5, 10])
        assert churn[5] == pytest.approx(0.0)
        assert churn[10] == pytest.approx(0.5)

    def test_invalid_size(self, shifting_archive):
        with pytest.raises(ValueError):
            churn_by_rank(shifting_archive, subset_sizes=[0])

    def test_instability_grows_with_rank_in_simulation(self, small_run):
        config = small_run.config
        churn = churn_by_rank(small_run.umbrella, subset_sizes=[config.top_k, config.list_size])
        assert churn[config.list_size] > churn[config.top_k]


class TestKendallSeries:
    def test_identical_days_give_tau_one(self):
        archive = ListArchive(provider="toy")
        for day in range(3):
            archive.add(ListSnapshot(provider="toy", entries=("a.com", "b.com", "c.com"),
                                     date=dt.date(2018, 1, 1) + dt.timedelta(days=day)))
        taus = kendall_tau_series(archive)
        assert taus == [pytest.approx(1.0)] * 2

    def test_vs_first_mode(self, shifting_archive):
        taus = kendall_tau_series(shifting_archive, mode="vs-first")
        assert len(taus) == 5

    def test_unknown_mode(self, shifting_archive):
        with pytest.raises(ValueError):
            kendall_tau_series(shifting_archive, mode="weekly")

    def test_too_short_archive(self):
        archive = ListArchive(provider="toy")
        archive.add(ListSnapshot(provider="toy", entries=("a.com",), date=dt.date(2018, 1, 1)))
        assert kendall_tau_series(archive) == []

    def test_strong_correlation_share(self):
        assert strong_correlation_share([1.0, 0.99, 0.5, 0.2]) == pytest.approx(0.5)
        assert strong_correlation_share([]) == 0.0

    def test_majestic_more_correlated_than_umbrella(self, small_run):
        top_k = small_run.config.top_k
        majestic = kendall_tau_series(small_run.majestic, top_n=top_k)
        umbrella = kendall_tau_series(small_run.umbrella, top_n=top_k)
        assert strong_correlation_share(majestic, 0.9) > strong_correlation_share(umbrella, 0.9)

    def test_long_term_correlation_lower_than_day_to_day(self, small_run):
        top_k = small_run.config.top_k
        day_to_day = kendall_tau_series(small_run.alexa, top_n=top_k, mode="day-to-day")
        vs_first = kendall_tau_series(small_run.alexa, top_n=top_k, mode="vs-first")
        assert sum(vs_first) / len(vs_first) <= sum(day_to_day) / len(day_to_day)


class TestRankVariation:
    def test_toy_ranks(self, shifting_archive):
        variation = rank_variation(shifting_archive, ["top0.com", "tail0-0.com", "missing.com"])
        top = variation["top0.com"]
        assert top.highest == 1 and top.lowest == 1 and top.always_listed
        tail = variation["tail0-0.com"]
        assert tail.days_listed == 1
        missing = variation["missing.com"]
        assert missing.highest is None and missing.days_listed == 0

    def test_simulation_top_domains_stable(self, small_run):
        variation = rank_variation(small_run.alexa, ["google.com", "jetblue.com"])
        google = variation["google.com"]
        assert google.always_listed
        assert google.lowest <= 3
        jetblue = variation["jetblue.com"]
        # The rank spread of a mid-tier domain is much wider than the head's.
        assert (jetblue.lowest - jetblue.highest) > (google.lowest - google.highest)

    def test_provider_recorded(self, small_run):
        variation = rank_variation(small_run.majestic, ["google.com"])
        assert variation["google.com"].provider == "majestic"
