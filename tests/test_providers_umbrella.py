"""Tests for the Umbrella-style provider."""

import pytest

from repro.domain.name import DomainName
from repro.population.traffic import InjectedQueries
from repro.providers.umbrella import UmbrellaProvider


class TestSnapshots:
    def test_full_list_size(self, small_run):
        assert len(small_run.umbrella[0]) == small_run.config.list_size

    def test_contains_subdomains(self, small_run):
        depths = [DomainName.parse(e).depth for e in small_run.umbrella[-1].entries]
        assert max(depths) >= 2
        base_share = sum(1 for d in depths if d == 0) / len(depths)
        # Umbrella emphasises depth: only a minority of entries are base
        # domains (28% in the paper's Table 2).
        assert base_share < 0.6

    def test_contains_invalid_tld_names(self, small_run, internet):
        entries = set(small_run.umbrella[-1].entries)
        invalid = {f.fqdn for f in internet.fqdns if f.domain_index < 0}
        assert entries & invalid, "junk names should reach the DNS-based list"

    def test_other_lists_have_no_invalid_tlds(self, small_run, internet):
        registry = internet.tld_registry
        for archive in (small_run.alexa, small_run.majestic):
            coverage = registry.coverage(archive[-1].entries)
            assert coverage.invalid_domains == 0

    def test_higher_churn_than_majestic(self, small_run):
        def churn(archive):
            snapshots = archive.snapshots()
            return sum(len(a.domain_set() - b.domain_set())
                       for a, b in zip(snapshots, snapshots[1:]))
        assert churn(small_run.umbrella) > 5 * churn(small_run.majestic)

    def test_deterministic(self, small_run, internet, traffic):
        provider = UmbrellaProvider(internet, traffic, config=small_run.config)
        assert provider.snapshot(2).entries == small_run.umbrella[2].entries

    def test_invalid_window_rejected(self, internet, traffic, small_config):
        with pytest.raises(ValueError):
            UmbrellaProvider(internet, traffic, window_days=0, config=small_config)


class TestInjection:
    @pytest.fixture()
    def provider(self, small_run) -> UmbrellaProvider:
        return small_run.provider("umbrella")

    def test_injection_reaches_list(self, provider):
        ranks = provider.rank_with_injection(5, [
            InjectedQueries(fqdn="probe-test.example-measurement.org",
                            n_clients=5_000, queries_per_client=10)])
        rank = ranks["probe-test.example-measurement.org"]
        assert rank is not None
        assert rank <= provider.list_size

    def test_probe_count_beats_query_volume(self, provider):
        ranks = provider.rank_with_injection(5, [
            InjectedQueries(fqdn="many-probes.test", n_clients=10_000, queries_per_client=1),
            InjectedQueries(fqdn="many-queries.test", n_clients=1_000, queries_per_client=100),
        ])
        assert ranks["many-probes.test"] is not None
        assert ranks["many-queries.test"] is not None
        # 10k queries from 10k probes beat 100k queries from 1k probes.
        assert ranks["many-probes.test"] < ranks["many-queries.test"]

    def test_zero_injection_not_listed(self, provider):
        ranks = provider.rank_with_injection(5, [
            InjectedQueries(fqdn="stopped.test", n_clients=0, queries_per_client=0)])
        assert ranks["stopped.test"] is None

    def test_injection_does_not_pollute_snapshots(self, provider, small_run):
        before = small_run.umbrella[6].entries
        provider.rank_with_injection(6, [
            InjectedQueries(fqdn="pollution.test", n_clients=10_000, queries_per_client=50)])
        after = provider.snapshot(6).entries
        assert before == after
