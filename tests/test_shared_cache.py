"""SharedPayloadCache: the pool's mmap-shared rendered-payload segment.

Safety properties under test: two instances over one file see each
other's completed appends; a torn tail (a writer's append in flight or
a crash's leftovers) is never indexed but never hides the valid prefix;
the size cap skips puts instead of tearing or compacting; and the
bytes a reader gets back are exactly the bytes the writer put.
"""

import struct

import pytest

from repro.service.shared_cache import _REC, _REC_MAGIC, SharedPayloadCache


@pytest.fixture()
def path(tmp_path):
    return tmp_path / "payloads.bin"


class TestSharedPayloadCache:
    def test_roundtrip_within_one_instance(self, path):
        cache = SharedPayloadCache(path)
        assert cache.get(1, "/v1/meta") is None
        assert cache.put(1, "/v1/meta", b'{"a": 1}', "w/abc")
        assert cache.get(1, "/v1/meta") == (b'{"a": 1}', "w/abc")
        assert cache.hits == 1 and cache.misses == 1 and cache.puts == 1

    def test_cross_instance_visibility(self, path):
        writer = SharedPayloadCache(path)
        reader = SharedPayloadCache(path)
        writer.put(3, "/v1/meta", b"payload-bytes", "w/tag")
        # The reader indexed nothing yet; its miss path rescans the tail.
        assert reader.get(3, "/v1/meta") == (b"payload-bytes", "w/tag")
        writer.put(3, "/v1/compare", b"second", "w/tag2")
        assert reader.get(3, "/v1/compare") == (b"second", "w/tag2")

    def test_version_keys_are_distinct(self, path):
        cache = SharedPayloadCache(path)
        cache.put(1, "/v1/meta", b"v1", "w/1")
        cache.put(2, "/v1/meta", b"v2", "w/2")
        assert cache.get(1, "/v1/meta") == (b"v1", "w/1")
        assert cache.get(2, "/v1/meta") == (b"v2", "w/2")

    def test_duplicate_put_is_refused(self, path):
        cache = SharedPayloadCache(path)
        assert cache.put(1, "/v1/meta", b"x", "w/x")
        assert not cache.put(1, "/v1/meta", b"x", "w/x")
        assert cache.puts == 1

    def test_torn_tail_is_ignored_but_prefix_survives(self, path):
        writer = SharedPayloadCache(path)
        writer.put(1, "/v1/meta", b"good-bytes", "w/good")
        # Simulate a crash mid-append: a complete header whose payload
        # was cut short.
        with path.open("ab") as handle:
            header = _REC.pack(_REC_MAGIC, 0, 1, 10, 5, 100)
            handle.write(header + b"only-a-bit")
        reader = SharedPayloadCache(path)
        assert reader.get(1, "/v1/meta") == (b"good-bytes", "w/good")
        assert reader.get(1, "/v1/other") is None

    def test_corrupt_crc_stops_the_scan(self, path):
        writer = SharedPayloadCache(path)
        writer.put(1, "/v1/meta", b"good", "w/g")
        with path.open("ab") as handle:
            payload = b"/v1/badw/bBODY"
            handle.write(_REC.pack(_REC_MAGIC, 0xDEADBEEF, 1,
                                   7, 3, 4) + payload)
        reader = SharedPayloadCache(path)
        assert reader.get(1, "/v1/meta") == (b"good", "w/g")
        assert reader.get(1, "/v1/bad") is None

    def test_size_cap_skips_puts(self, path):
        cache = SharedPayloadCache(path, max_bytes=256)
        assert cache.put(1, "/a", b"x" * 64, "w/1")
        assert not cache.put(1, "/b", b"y" * 300, "w/2")
        assert cache.skipped_puts == 1
        # The cap never tears an existing record.
        assert cache.get(1, "/a") == (b"x" * 64, "w/1")

    def test_stats_shape(self, path):
        cache = SharedPayloadCache(path, max_bytes=1024)
        cache.put(1, "/a", b"x", "w/1")
        cache.get(1, "/a")
        cache.get(1, "/missing")
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["puts"] == 1
        assert stats["max_bytes"] == 1024
        assert stats["bytes"] == path.stat().st_size

    def test_close_is_idempotent(self, path):
        cache = SharedPayloadCache(path)
        cache.put(1, "/a", b"x", "w/1")
        cache.get(1, "/a")
        cache.close()
        cache.close()
