"""Tests for the Table-5-style bias comparison."""

import pytest

from repro.core.bias import ComparisonTable, compare_single_day
from repro.stats.summary import DeviationFlag, MeanStd


class TestComparisonTable:
    @pytest.fixture()
    def table(self) -> ComparisonTable:
        table = ComparisonTable(base_target="com/net/org")
        table.add_characteristic("IPv6-enabled", {
            "alexa-1k": [22.7, 22.5, 23.0],
            "alexa-1M": [12.9, 13.1],
            "com/net/org": [4.1, 4.0, 4.2],
        })
        table.add_characteristic("NXDOMAIN", {
            "alexa-1k": [0.0],
            "alexa-1M": [0.13],
            "com/net/org": [0.8],
        })
        return table

    def test_flags(self, table):
        row = table["IPv6-enabled"]
        assert row.flag("alexa-1k") is DeviationFlag.EXCEEDS
        assert row.flag("alexa-1M") is DeviationFlag.EXCEEDS
        nxdomain = table["NXDOMAIN"]
        assert nxdomain.flag("alexa-1M") is DeviationFlag.FALLS_BEHIND

    def test_exaggeration_factor(self, table):
        row = table["IPv6-enabled"]
        assert row.exaggeration_factor("alexa-1k") == pytest.approx(22.73 / 4.1, rel=0.01)

    def test_exaggeration_with_zero_base(self):
        table = ComparisonTable(base_target="base")
        row = table.add_characteristic("metric", {"x": [5.0], "base": [0.0]})
        assert row.exaggeration_factor("x") == float("inf")

    def test_distorting_targets(self, table):
        assert set(table["IPv6-enabled"].distorting_targets()) == {"alexa-1k", "alexa-1M"}

    def test_distortion_summary(self, table):
        summary = table.distortion_summary()
        assert summary["alexa-1k"] == pytest.approx(1.0)
        assert summary["alexa-1M"] == pytest.approx(1.0)

    def test_targets_and_characteristics(self, table):
        assert table.characteristics() == ["IPv6-enabled", "NXDOMAIN"]
        assert set(table.targets()) == {"alexa-1k", "alexa-1M"}
        assert len(table) == 2

    def test_render_contains_flags(self, table):
        text = table.render()
        assert "▲" in text and "▼" in text
        assert "IPv6-enabled" in text

    def test_base_target_must_be_present(self):
        table = ComparisonTable(base_target="population")
        with pytest.raises(KeyError):
            table.add_characteristic("x", {"alexa": [1.0]})

    def test_accepts_precomputed_meanstd(self):
        table = ComparisonTable(base_target="base")
        row = table.add_characteristic("x", {
            "list": MeanStd(mean=10.0, std=1.0, n=3),
            "base": MeanStd(mean=1.0, std=0.1, n=3),
        })
        assert row.flag("list") is DeviationFlag.EXCEEDS

    def test_cell_render(self, table):
        cell = table["IPv6-enabled"].cells["alexa-1k"]
        assert cell.render(1).startswith("▲ 22.7")


class TestSingleDay:
    def test_compare_single_day(self):
        row = compare_single_day("TLS-capable",
                                 {"alexa-1M": 74.65, "umbrella-1M": 43.05, "base": 36.69},
                                 base_target="base")
        assert row.flag("alexa-1M") is DeviationFlag.EXCEEDS
        assert row.flag("umbrella-1M") is DeviationFlag.NOT_SIGNIFICANT
