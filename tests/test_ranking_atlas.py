"""Tests for the RIPE-Atlas-style probe fleet."""

import pytest

from repro.ranking.atlas import ProbeFleet, ProbeMeasurement


class TestProbeMeasurement:
    def test_daily_queries(self):
        measurement = ProbeMeasurement("test.example", n_probes=1_000, queries_per_day=50)
        assert measurement.daily_queries == 50_000

    def test_to_injection(self):
        measurement = ProbeMeasurement("Test.Example", n_probes=10, queries_per_day=2, ttl=60)
        injection = measurement.to_injection()
        assert injection.fqdn == "Test.Example"
        assert injection.n_clients == 10
        assert injection.queries_per_client == 2
        assert injection.ttl == 60

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbeMeasurement("x", n_probes=-1, queries_per_day=1)
        with pytest.raises(ValueError):
            ProbeMeasurement("x", n_probes=1, queries_per_day=-1)
        with pytest.raises(ValueError):
            ProbeMeasurement("x", n_probes=1, queries_per_day=1, ttl=0)


class TestProbeFleet:
    def test_schedule_and_iterate(self):
        fleet = ProbeFleet()
        fleet.schedule("a.test", n_probes=100, queries_per_day=1)
        fleet.schedule("b.test", n_probes=200, queries_per_day=2)
        assert len(fleet) == 2
        assert len(fleet.injections()) == 2
        assert {m.target_fqdn for m in fleet} == {"a.test", "b.test"}

    def test_total_daily_queries(self):
        fleet = ProbeFleet([
            ProbeMeasurement("a.test", n_probes=100, queries_per_day=10),
            ProbeMeasurement("b.test", n_probes=50, queries_per_day=2),
        ])
        assert fleet.total_daily_queries() == 1_100

    def test_paper_grid(self):
        fleet = ProbeFleet.paper_grid()
        assert len(fleet) == 16
        # The ethics section reports roughly 2.22M queries/day in total.
        assert fleet.total_daily_queries() == pytest.approx(2_220_000, rel=0.25)

    def test_paper_grid_custom_template(self):
        fleet = ProbeFleet.paper_grid(domain_template="probe-{probes}-{freq}.test",
                                      probe_counts=(10,), query_frequencies=(1, 2))
        assert {m.target_fqdn for m in fleet} == {"probe-10-1.test", "probe-10-2.test"}
