"""Tests for domain name parsing and classification."""

import pytest

from repro.domain.name import (
    DomainName,
    InvalidDomainError,
    base_domain,
    normalise,
    sld_group,
    subdomain_depth,
)
from repro.domain.psl import PublicSuffixList


class TestNormalise:
    def test_lowercases(self):
        assert normalise("WWW.Example.COM") == "www.example.com"

    def test_strips_trailing_dot(self):
        assert normalise("example.com.") == "example.com"

    def test_strips_whitespace(self):
        assert normalise("  example.com \n") == "example.com"

    def test_rejects_empty(self):
        with pytest.raises(InvalidDomainError):
            normalise("   ")

    def test_rejects_none(self):
        with pytest.raises(InvalidDomainError):
            normalise(None)  # type: ignore[arg-type]

    def test_rejects_empty_label(self):
        with pytest.raises(InvalidDomainError):
            normalise("foo..com")

    def test_rejects_overlong_label(self):
        with pytest.raises(InvalidDomainError):
            normalise("a" * 64 + ".com")

    def test_rejects_overlong_name(self):
        label = "a" * 60
        with pytest.raises(InvalidDomainError):
            normalise(".".join([label] * 5))

    def test_rejects_inner_whitespace(self):
        with pytest.raises(InvalidDomainError):
            normalise("foo bar.com")


class TestDomainName:
    def test_paper_example_third_level(self):
        # Section 5 terminology: www.net.in.tum.de is a third-level subdomain.
        name = DomainName.parse("www.net.in.tum.de")
        assert name.public_suffix == "de"
        assert name.base == "tum.de"
        assert name.depth == 3

    def test_base_domain_depth_zero(self):
        assert DomainName.parse("example.com").depth == 0
        assert DomainName.parse("example.com").is_base_domain

    def test_www_is_depth_one(self):
        assert DomainName.parse("www.example.com").depth == 1

    def test_multi_label_suffix(self):
        name = DomainName.parse("shop.example.co.uk")
        assert name.public_suffix == "co.uk"
        assert name.base == "example.co.uk"
        assert name.depth == 1

    def test_bare_suffix_has_no_base(self):
        name = DomainName.parse("com")
        assert name.base is None
        assert name.depth == 0
        assert not name.is_base_domain

    def test_sld(self):
        assert DomainName.parse("www.google.de").sld == "google"
        assert DomainName.parse("com").sld is None

    def test_tld_and_labels(self):
        name = DomainName.parse("a.b.example.org")
        assert name.tld == "org"
        assert name.labels == ("a", "b", "example", "org")

    def test_parent(self):
        name = DomainName.parse("a.b.example.org")
        assert name.parent().name == "b.example.org"
        assert DomainName.parse("com").parent() is None

    def test_invalid_tld_still_parses(self):
        # Umbrella contains names under invalid TLDs; parsing must not fail.
        name = DomainName.parse("router.localdomain")
        assert name.tld == "localdomain"
        assert name.base == "router.localdomain"

    def test_custom_psl(self):
        psl = PublicSuffixList(["example"])
        name = DomainName.parse("foo.bar.example", psl=psl)
        assert name.public_suffix == "example"
        assert name.base == "bar.example"
        assert name.depth == 1


class TestModuleHelpers:
    def test_base_domain(self):
        assert base_domain("www.example.com") == "example.com"
        assert base_domain("com") is None

    def test_subdomain_depth(self):
        assert subdomain_depth("example.com") == 0
        assert subdomain_depth("a.b.example.com") == 2

    def test_sld_group(self):
        assert sld_group("www.google.de") == "google"
        assert sld_group("blogspot.com") is None  # blogspot.com is a public suffix

    def test_helpers_accept_custom_psl(self):
        psl = PublicSuffixList(["com"])
        assert base_domain("x.y.example.com", psl=psl) == "example.com"
        assert subdomain_depth("x.y.example.com", psl=psl) == 2
        assert sld_group("x.y.example.com", psl=psl) == "example"
