"""Tests for the caching, CNAME-chasing resolver."""

import pytest

from repro.dns.errors import ResolutionLoopError
from repro.dns.records import RecordType, Rcode
from repro.dns.resolver import CachingResolver
from repro.dns.zone import ZoneDatabase


@pytest.fixture()
def zone() -> ZoneDatabase:
    db = ZoneDatabase()
    db.add_address("direct.example", "192.0.2.1")
    db.add_address("direct.example", "2001:db8::1")
    db.add_cname("www.site.example", "edge.cdn.example")
    db.add_cname("edge.cdn.example", "pop.cdn.example")
    db.add_address("pop.cdn.example", "198.51.100.7", ttl=60)
    # A CNAME loop.
    db.add_cname("loop-a.example", "loop-b.example")
    db.add_cname("loop-b.example", "loop-a.example")
    return db


class TestResolve:
    def test_direct_a(self, zone):
        resolver = CachingResolver(zone)
        resolution = resolver.resolve("direct.example", RecordType.A)
        assert resolution.resolved
        assert resolution.addresses == ["192.0.2.1"]
        assert resolution.cname_chain == []
        assert resolution.final_name == "direct.example"

    def test_aaaa(self, zone):
        resolver = CachingResolver(zone)
        resolution = resolver.resolve("direct.example", RecordType.AAAA)
        assert resolution.addresses == ["2001:db8::1"]

    def test_cname_chain_followed(self, zone):
        resolver = CachingResolver(zone)
        resolution = resolver.resolve("www.site.example", RecordType.A)
        assert resolution.addresses == ["198.51.100.7"]
        assert resolution.cname_chain == ["edge.cdn.example", "pop.cdn.example"]
        assert resolution.final_name == "pop.cdn.example"

    def test_nxdomain(self, zone):
        resolver = CachingResolver(zone)
        resolution = resolver.resolve("missing.example", RecordType.A)
        assert resolution.is_nxdomain
        assert not resolution.resolved

    def test_cname_loop_raises(self, zone):
        resolver = CachingResolver(zone)
        with pytest.raises(ResolutionLoopError):
            resolver.resolve("loop-a.example", RecordType.A)

    def test_chain_limit(self, zone):
        # A chain of 3 links with a limit of 1 must be rejected.
        resolver = CachingResolver(zone, max_chain=1)
        with pytest.raises(ResolutionLoopError):
            resolver.resolve("www.site.example", RecordType.A)


class TestCache:
    def test_cache_hit_counted(self, zone):
        resolver = CachingResolver(zone)
        resolver.query("direct.example", RecordType.A)
        resolver.query("direct.example", RecordType.A)
        assert resolver.cache_hits == 1
        assert resolver.cache_misses == 1

    def test_cache_expires_with_ttl(self, zone):
        resolver = CachingResolver(zone)
        resolver.query("pop.cdn.example", RecordType.A)
        resolver.advance_clock(61)  # TTL of that record is 60 seconds
        resolver.query("pop.cdn.example", RecordType.A)
        assert resolver.cache_misses == 2

    def test_cache_disabled(self, zone):
        resolver = CachingResolver(zone, enable_cache=False)
        resolver.query("direct.example", RecordType.A)
        resolver.query("direct.example", RecordType.A)
        assert resolver.cache_hits == 0

    def test_flush_cache(self, zone):
        resolver = CachingResolver(zone)
        resolver.query("direct.example", RecordType.A)
        resolver.flush_cache()
        resolver.query("direct.example", RecordType.A)
        assert resolver.cache_misses == 2

    def test_clock_cannot_move_backwards(self, zone):
        resolver = CachingResolver(zone)
        with pytest.raises(ValueError):
            resolver.advance_clock(-1)


class TestQueryLog:
    def test_logging_disabled_by_default(self, zone):
        resolver = CachingResolver(zone)
        resolver.query("direct.example", RecordType.A)
        assert resolver.query_log == []

    def test_log_records_client_and_cache_state(self, zone):
        resolver = CachingResolver(zone, log_queries=True)
        resolver.query("direct.example", RecordType.A, client_id="probe-1")
        resolver.query("direct.example", RecordType.A, client_id="probe-2")
        log = resolver.query_log
        assert len(log) == 2
        assert log[0].client_id == "probe-1"
        assert log[0].from_cache is False
        assert log[1].from_cache is True
        assert log[0].rcode is Rcode.NOERROR

    def test_clear_log(self, zone):
        resolver = CachingResolver(zone, log_queries=True)
        resolver.query("direct.example", RecordType.A)
        resolver.clear_query_log()
        assert resolver.query_log == []
