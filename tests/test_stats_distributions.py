"""Tests for Zipf sampling and empirical CDFs."""

import numpy as np
import pytest

from repro.stats.distributions import EmpiricalCDF, ZipfSampler, empirical_cdf_points, zipf_weights


class TestZipfWeights:
    def test_normalised(self):
        assert zipf_weights(100, 1.0).sum() == pytest.approx(1.0)

    def test_monotonically_decreasing(self):
        weights = zipf_weights(50, 0.9)
        assert all(weights[i] >= weights[i + 1] for i in range(len(weights) - 1))

    def test_exponent_zero_uniform(self):
        weights = zipf_weights(10, 0.0)
        assert np.allclose(weights, 0.1)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(10, -1.0)

    def test_ratio_between_ranks(self):
        weights = zipf_weights(1000, 1.0)
        assert weights[0] / weights[9] == pytest.approx(10.0)


class TestZipfSampler:
    def test_deterministic_with_seed(self):
        a = ZipfSampler(100, rng=np.random.default_rng(1)).sample(50)
        b = ZipfSampler(100, rng=np.random.default_rng(1)).sample(50)
        assert np.array_equal(a, b)

    def test_samples_in_range(self):
        sampler = ZipfSampler(20, rng=np.random.default_rng(2))
        samples = sampler.sample(1000)
        assert samples.min() >= 0
        assert samples.max() < 20

    def test_head_heavier_than_tail(self):
        sampler = ZipfSampler(100, exponent=1.2, rng=np.random.default_rng(3))
        samples = sampler.sample(20_000)
        head = np.sum(samples < 10)
        tail = np.sum(samples >= 90)
        assert head > tail * 3

    def test_probability(self):
        sampler = ZipfSampler(10)
        assert sampler.probability(0) > sampler.probability(9)
        with pytest.raises(IndexError):
            sampler.probability(10)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler(10).sample(-1)

    def test_zero_size(self):
        assert len(ZipfSampler(10).sample(0)) == 0


class TestEmpiricalCDF:
    def test_basic_evaluation(self):
        cdf = EmpiricalCDF.from_sample([1, 2, 3, 4])
        assert cdf(0) == 0.0
        assert cdf(2) == pytest.approx(0.5)
        assert cdf(4) == pytest.approx(1.0)
        assert cdf(100) == pytest.approx(1.0)

    def test_quantile(self):
        cdf = EmpiricalCDF.from_sample([10, 20, 30, 40])
        assert cdf.quantile(0.25) == 10
        assert cdf.quantile(1.0) == 40
        with pytest.raises(ValueError):
            cdf.quantile(0.0)

    def test_points_monotone(self):
        points = EmpiricalCDF.from_sample([3, 1, 2]).points()
        values = [p[0] for p in points]
        probs = [p[1] for p in points]
        assert values == sorted(values)
        assert probs == sorted(probs)
        assert probs[-1] == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalCDF.from_sample([])

    def test_module_helper(self):
        assert empirical_cdf_points([5])[0] == (5.0, 1.0)
