"""Tests for the public API surface: exports exist and match ``__all__``."""

import importlib

import pytest

PACKAGES = (
    "repro",
    "repro.core",
    "repro.domain",
    "repro.dns",
    "repro.measurement",
    "repro.population",
    "repro.providers",
    "repro.ranking",
    "repro.routing",
    "repro.service",
    "repro.stats",
    "repro.survey",
    "repro.web",
)


class TestPublicApi:
    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_exports_resolve(self, package):
        module = importlib.import_module(package)
        assert hasattr(module, "__all__"), f"{package} must declare __all__"
        for name in module.__all__:
            assert hasattr(module, name), f"{package}.{name} missing"

    @pytest.mark.parametrize("package", PACKAGES)
    def test_all_sorted_and_unique(self, package):
        module = importlib.import_module(package)
        exports = list(module.__all__)
        assert len(exports) == len(set(exports))
        assert exports == sorted(exports)

    @pytest.mark.parametrize("package", PACKAGES)
    def test_module_docstrings_present(self, package):
        module = importlib.import_module(package)
        assert module.__doc__ and len(module.__doc__.strip()) > 40

    def test_version(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_top_level_convenience_imports(self):
        from repro import ListArchive, ListSnapshot, SimulationConfig, run_simulation

        assert callable(run_simulation)
        assert SimulationConfig.small() is not None
        assert ListSnapshot and ListArchive
