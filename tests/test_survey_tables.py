"""Tests for Table 1 generation."""

import pytest

from repro.survey.corpus import reference_corpus
from repro.survey.tables import (
    list_usage_histogram,
    replicability_summary,
    totals_row,
    venue_usage_table,
)


@pytest.fixture(scope="module")
def corpus():
    return reference_corpus()


@pytest.fixture(scope="module")
def rows(corpus):
    return venue_usage_table(corpus)


class TestVenueTable:
    def test_row_per_venue(self, rows):
        assert len(rows) == 10

    def test_imc_row_matches_paper(self, rows):
        imc = next(r for r in rows if r.venue == "ACM IMC")
        assert imc.total_papers == 42
        assert imc.using == 11
        assert imc.usage_share == pytest.approx(0.262, abs=0.001)
        assert (imc.dependent, imc.verification, imc.independent) == (8, 2, 1)
        assert imc.states_list_date == 1
        assert imc.states_measurement_date == 3

    def test_ccs_row_matches_paper(self, rows):
        ccs = next(r for r in rows if r.venue == "ACM CCS")
        assert ccs.total_papers == 151
        assert ccs.using == 11
        assert (ccs.dependent, ccs.verification, ccs.independent) == (4, 5, 2)

    def test_totals_row_matches_paper(self, rows):
        total = totals_row(rows)
        assert total.total_papers == 687
        assert total.using == 69
        assert total.usage_share == pytest.approx(0.10, abs=0.002)
        assert (total.dependent, total.verification, total.independent) == (45, 17, 7)
        assert total.states_list_date == 7
        assert total.states_measurement_date == 9


class TestUsageHistogram:
    def test_matches_paper_right_table(self, corpus):
        histogram = list_usage_histogram(corpus)
        assert histogram["alexa-1M"] == 29
        assert histogram["alexa-10k"] == 11
        assert histogram["alexa-100"] == 8
        assert histogram["alexa-500"] == 8
        assert histogram["umbrella-1M"] == 3
        assert histogram["umbrella-1k"] == 1
        assert histogram["alexa-country"] == 2
        assert histogram["alexa-category"] == 2

    def test_no_majestic_usage(self, corpus):
        # No paper in the survey used the Majestic list.
        histogram = list_usage_histogram(corpus)
        assert not any(key.startswith("majestic") for key in histogram)

    def test_total_usage_count(self, corpus):
        histogram = list_usage_histogram(corpus)
        assert sum(histogram.values()) == 88


class TestReplicability:
    def test_matches_paper(self, corpus):
        summary = replicability_summary(corpus)
        assert summary.users == 69
        assert summary.states_list_date == 7
        assert summary.states_measurement_date == 9
        assert summary.states_both == 2
        assert summary.share_with_both == pytest.approx(2 / 69)
