"""Tests for the traffic simulation."""

import numpy as np
import pytest

from repro.population.config import SimulationConfig
from repro.population.internet import SyntheticInternet
from repro.population.traffic import InjectedQueries, TrafficSimulator


@pytest.fixture(scope="module")
def simulator() -> TrafficSimulator:
    config = SimulationConfig.small(n_domains=1_500, list_size=400, top_k=50,
                                    new_domains_per_day=10, n_days=10)
    internet = SyntheticInternet(config)
    return TrafficSimulator(internet, config)


class TestWebTraffic:
    def test_shapes(self, simulator):
        web = simulator.web_day(0)
        assert len(web.visits) == len(simulator.internet.domains)
        assert len(web.unique_visitors) == len(simulator.internet.domains)

    def test_deterministic_per_day(self, simulator):
        a = simulator.web_day(3)
        b = simulator.web_day(3)
        assert np.array_equal(a.visits, b.visits)

    def test_days_differ(self, simulator):
        assert not np.array_equal(simulator.web_day(0).visits, simulator.web_day(1).visits)

    def test_popular_domains_get_more_visits(self, simulator):
        web = simulator.web_day(0)
        weights = np.array([d.base_weight for d in simulator.internet.domains])
        top = np.argsort(-weights)[:10]
        bottom = np.argsort(-weights)[-500:]
        assert web.visits[top].sum() > web.visits[bottom].sum()

    def test_unborn_domains_get_no_traffic(self, simulator):
        web = simulator.web_day(0)
        births = np.array([d.birth_day for d in simulator.internet.domains])
        unborn = births > 0
        assert web.visits[unborn].sum() == 0

    def test_nonexistent_domains_get_no_web_traffic(self, simulator):
        web = simulator.web_day(2)
        missing = ~np.array([d.exists for d in simulator.internet.domains])
        assert web.visits[missing].sum() == 0

    def test_weekend_shifts_leisure_traffic(self, simulator):
        config = simulator.config
        weekend_day = next(d for d in range(config.n_days) if config.is_weekend(d))
        weekday = next(d for d in range(config.n_days) if not config.is_weekend(d))
        weekend_factors = np.array([d.weekend_factor for d in simulator.internet.domains])
        leisure = weekend_factors > 1.4
        office = weekend_factors < 0.6
        web_weekend = simulator.web_day(weekend_day)
        web_weekday = simulator.web_day(weekday)
        total_weekend = web_weekend.visits.sum()
        total_weekday = web_weekday.visits.sum()
        leisure_share_weekend = web_weekend.visits[leisure].sum() / total_weekend
        leisure_share_weekday = web_weekday.visits[leisure].sum() / total_weekday
        office_share_weekend = web_weekend.visits[office].sum() / total_weekend
        office_share_weekday = web_weekday.visits[office].sum() / total_weekday
        assert leisure_share_weekend > leisure_share_weekday
        assert office_share_weekend < office_share_weekday

    def test_score_combines_views_and_visitors(self, simulator):
        web = simulator.web_day(0)
        assert (web.score() >= web.unique_visitors).all()

    def test_negative_day_rejected(self, simulator):
        with pytest.raises(ValueError):
            simulator.web_day(-1)


class TestDnsTraffic:
    def test_shapes(self, simulator):
        dns = simulator.dns_day(0)
        assert len(dns.unique_clients) == len(simulator.internet.fqdns)
        assert len(dns.queries) == len(simulator.internet.fqdns)

    def test_unique_clients_bounded_by_client_base(self, simulator):
        dns = simulator.dns_day(1)
        assert dns.unique_clients.max() <= simulator.config.umbrella_clients

    def test_deterministic(self, simulator):
        assert np.array_equal(simulator.dns_day(2).unique_clients,
                              simulator.dns_day(2).unique_clients)

    def test_junk_names_receive_queries(self, simulator):
        dns = simulator.dns_day(0)
        junk_indices = [i for i, f in enumerate(simulator.internet.fqdns) if f.domain_index < 0]
        assert dns.unique_clients[junk_indices].sum() > 0

    def test_injection_counts(self, simulator):
        injection = InjectedQueries(fqdn="test.example-measurement.org", n_clients=500,
                                    queries_per_client=10)
        dns = simulator.dns_day(0, injected=[injection])
        unique, queries = dns.injected["test.example-measurement.org"]
        assert 0 < unique <= 500
        assert queries > 0
        assert dns.injected_score("test.example-measurement.org") > 0

    def test_injection_zero_traffic(self, simulator):
        injection = InjectedQueries(fqdn="idle.example.org", n_clients=0, queries_per_client=0)
        dns = simulator.dns_day(0, injected=[injection])
        assert dns.injected["idle.example.org"] == (0, 0)
        assert dns.injected_score("idle.example.org") == 0.0
        assert dns.injected_score("never-injected.example") == 0.0

    def test_more_probes_more_unique_clients(self, simulator):
        few = InjectedQueries(fqdn="a.test", n_clients=100, queries_per_client=100)
        many = InjectedQueries(fqdn="b.test", n_clients=5_000, queries_per_client=1)
        dns = simulator.dns_day(0, injected=[few, many])
        assert dns.injected["b.test"][0] > dns.injected["a.test"][0]

    def test_invalid_injection_rejected(self):
        with pytest.raises(ValueError):
            InjectedQueries(fqdn="x", n_clients=-1, queries_per_client=1)
        with pytest.raises(ValueError):
            InjectedQueries(fqdn="x", n_clients=1, queries_per_client=-1)


class TestBacklinks:
    def test_shapes_and_types(self, simulator):
        links = simulator.backlinks_day(0)
        assert len(links.linking_subnets) == len(simulator.internet.domains)
        assert links.linking_subnets.dtype.kind == "i"

    def test_counts_stable_day_to_day(self, simulator):
        day0 = simulator.backlinks_day(0).linking_subnets.astype(float)
        day1 = simulator.backlinks_day(1).linking_subnets.astype(float)
        mask = day0 > 50
        relative_change = np.abs(day1[mask] - day0[mask]) / day0[mask]
        assert np.median(relative_change) < 0.05

    def test_dead_domains_keep_links(self, simulator):
        links = simulator.backlinks_day(0)
        dead = np.array([d.dead for d in simulator.internet.domains])
        if dead.any():
            assert links.linking_subnets[dead].sum() > 0

    def test_newborn_ramp(self, simulator):
        internet = simulator.internet
        newborn = [d for d in internet.domains if d.birth_day == 1]
        if not newborn:
            pytest.skip("no domain born on day 1 in this configuration")
        index = newborn[0].index
        early = simulator.backlinks_day(1).linking_subnets[index]
        late = simulator.backlinks_day(simulator.config.n_days - 1).linking_subnets[index]
        assert late >= early

    def test_deterministic(self, simulator):
        assert np.array_equal(simulator.backlinks_day(4).linking_subnets,
                              simulator.backlinks_day(4).linking_subnets)
