"""Tests for the survey keyword matching and classification helpers."""

from repro.survey.classify import (
    Dependence,
    ListFamily,
    ListUsage,
    is_false_positive,
    match_keywords,
    parse_subset,
)


class TestKeywordMatching:
    def test_basic_matches(self):
        text = "We measured the Alexa Top 1M and the Majestic Million."
        assert match_keywords(text) == ["alexa", "majestic"]

    def test_umbrella_match(self):
        assert match_keywords("domains from the Cisco Umbrella ranking") == ["umbrella"]

    def test_no_match(self):
        assert match_keywords("We study BGP hijacks.") == []

    def test_whole_word_only(self):
        # An author named Alexander must not match the keyword "alexa".
        assert match_keywords("Alexander Johnson et al.") == []

    def test_case_insensitive(self):
        assert match_keywords("the ALEXA top list") == ["alexa"]


class TestFalsePositives:
    def test_voice_assistant_is_false_positive(self):
        assert is_false_positive("We analyse Amazon Alexa voice commands.")

    def test_umbrella_term_is_false_positive(self):
        assert is_false_positive("under the umbrella term of IoT security")

    def test_top_list_usage_is_kept(self):
        text = "We resolve all domains of the Alexa Top 1M list."
        assert not is_false_positive(text)

    def test_no_keywords_is_false_positive(self):
        assert is_false_positive("A paper about TCP congestion control.")

    def test_ranking_vocabulary_overrides(self):
        text = "We compare Amazon Alexa skills against the Alexa top 1M ranking."
        assert not is_false_positive(text)


class TestUsageParsing:
    def test_parse_valid(self):
        usage = parse_subset("alexa-10k")
        assert usage == ListUsage(ListFamily.ALEXA, "10k")
        assert str(usage) == "alexa-10k"

    def test_parse_umbrella(self):
        assert parse_subset("umbrella-1M").family is ListFamily.UMBRELLA

    def test_parse_invalid(self):
        assert parse_subset("alexa") is None
        assert parse_subset("quantcast-1M") is None
        assert parse_subset("alexa-") is None


class TestDependenceEnum:
    def test_values_match_table1(self):
        assert Dependence.DEPENDENT.value == "Y"
        assert Dependence.VERIFICATION.value == "V"
        assert Dependence.INDEPENDENT.value == "N"
