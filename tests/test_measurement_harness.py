"""Tests for target sets and the combined measurement harness."""

import pytest

from repro.measurement.harness import MeasurementHarness, MeasurementReport, TargetSet


class TestTargetSet:
    def test_from_snapshot(self, small_run):
        snapshot = small_run.alexa[-1]
        target = TargetSet.from_snapshot(snapshot)
        assert target.name == "alexa"
        assert len(target) == len(snapshot)

    def test_from_snapshot_top_n(self, small_run):
        target = TargetSet.from_snapshot(small_run.alexa[-1], top_n=50)
        assert target.name == "alexa-50"
        assert len(target) == 50

    def test_from_zonefile_sample(self, small_run):
        target = TargetSet.from_zonefile(small_run.zonefile, sample=25, seed=1)
        assert len(target) == 25
        assert target.name == "com/net/org"

    def test_from_names(self):
        target = TargetSet.from_names(["a.com", "b.com"], name="custom")
        assert list(target) == ["a.com", "b.com"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TargetSet(name="empty", domains=())


class TestHarness:
    def test_measure_all(self, harness, small_run):
        target = TargetSet.from_snapshot(small_run.alexa[-1], top_n=60)
        report = harness.measure(target)
        assert isinstance(report, MeasurementReport)
        assert report.target == "alexa-60"
        for metric in MeasurementReport.metric_names():
            value = report.metric(metric)
            assert value >= 0.0

    def test_metric_unknown(self, harness, small_run):
        target = TargetSet.from_snapshot(small_run.alexa[-1], top_n=10)
        report = harness.measure(target)
        with pytest.raises(KeyError):
            report.metric("latency")

    def test_dns_only_measurement(self, harness, small_run):
        target = TargetSet.from_snapshot(small_run.majestic[-1], top_n=40)
        dns = harness.measure_dns(target)
        assert dns.total == 40

    def test_consistent_with_ground_truth(self, harness, internet, small_run):
        # The measured IPv6 share must equal the ground-truth share of the
        # same target set (the measurement pipeline adds no bias itself).
        names = [d.name for d in internet.domains if d.exists][:200]
        target = TargetSet.from_names(names, name="check")
        report = harness.measure_dns(target)
        truth = 100.0 * sum(1 for n in names
                            if internet.domain_by_name(n).ipv6_enabled) / len(names)
        assert report.ipv6_share == pytest.approx(truth)

    def test_harness_constructable(self, internet):
        harness = MeasurementHarness(internet)
        assert harness.internet is internet
