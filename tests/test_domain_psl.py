"""Tests for the Public Suffix List engine."""

import pytest

from repro.domain.psl import DEFAULT_RULES, PublicSuffixList


@pytest.fixture()
def psl() -> PublicSuffixList:
    return PublicSuffixList()


class TestDefaultRules:
    def test_default_rules_loaded(self, psl):
        assert len(psl) == len(set(DEFAULT_RULES))

    def test_common_tlds_are_suffixes(self, psl):
        for suffix in ("com", "net", "org", "de", "co.uk"):
            assert psl.is_public_suffix(suffix)

    def test_blogspot_is_suffix(self, psl):
        # The paper treats blogspot.* as one SLD group; the PSL makes
        # blogspot.com a (private) public suffix.
        assert psl.is_public_suffix("blogspot.com")


class TestPublicSuffix:
    def test_single_label_suffix(self, psl):
        assert psl.public_suffix("www.example.com") == "com"

    def test_multi_label_suffix(self, psl):
        assert psl.public_suffix("www.example.co.uk") == "co.uk"

    def test_unknown_tld_implicit_rule(self, psl):
        assert psl.public_suffix("foo.bar.unknowntld") == "unknowntld"

    def test_empty_returns_none(self, psl):
        assert psl.public_suffix("") is None

    def test_wildcard_rule(self, psl):
        # *.ck makes any label under ck a suffix.
        assert psl.public_suffix("foo.example.ck") == "example.ck"

    def test_exception_rule(self, psl):
        # !www.ck overrides the wildcard: the suffix is just ck.
        assert psl.public_suffix("www.ck") == "ck"
        assert psl.base_domain("www.ck") == "www.ck"


class TestBaseDomain:
    def test_simple(self, psl):
        assert psl.base_domain("www.example.com") == "example.com"

    def test_already_base(self, psl):
        assert psl.base_domain("example.com") == "example.com"

    def test_suffix_itself_has_no_base(self, psl):
        assert psl.base_domain("com") is None
        assert psl.base_domain("co.uk") is None

    def test_private_suffix_base(self, psl):
        assert psl.base_domain("myblog.blogspot.com") == "myblog.blogspot.com"
        assert psl.base_domain("x.myblog.blogspot.com") == "myblog.blogspot.com"

    def test_case_and_dots_normalised(self, psl):
        assert psl.base_domain("WWW.Example.COM.") == "example.com"


class TestSldGroup:
    def test_group_label(self, psl):
        assert psl.sld_group("www.google.de") == "google"
        assert psl.sld_group("google.com") == "google"

    def test_group_none_for_suffix(self, psl):
        assert psl.sld_group("com") is None


class TestRuleManagement:
    def test_add_rule(self):
        psl = PublicSuffixList([])
        psl.add_rule("com")
        assert psl.public_suffix("example.com") == "com"

    def test_add_empty_rule_rejected(self):
        psl = PublicSuffixList([])
        with pytest.raises(ValueError):
            psl.add_rule("   ")

    def test_from_rules(self):
        psl = PublicSuffixList.from_rules(["com", "co.uk"])
        assert len(psl) == 2

    def test_from_file(self, tmp_path):
        path = tmp_path / "psl.dat"
        path.write_text("// comment\n\ncom\nco.uk\n!www.ck\n*.ck\n", encoding="utf-8")
        psl = PublicSuffixList.from_file(str(path))
        assert psl.public_suffix("example.co.uk") == "co.uk"
        assert psl.public_suffix("www.ck") == "ck"

    def test_contains(self, psl):
        assert "com" in psl
        assert "example.com" not in psl
