"""Tests for the IANA TLD registry model."""

import pytest

from repro.domain.tld import IANA_TLD_COUNT_MAY_2018, TldRegistry


@pytest.fixture()
def registry() -> TldRegistry:
    return TldRegistry()


class TestRegistry:
    def test_common_tlds_valid(self, registry):
        for tld in ("com", "net", "org", "de", "io", "xyz"):
            assert registry.is_valid(tld)

    def test_invalid_tlds(self, registry):
        # Examples of invalid TLDs from Section 5.1 (footnote 5).
        for tld in ("localdomain", "server", "cpe", "0", "big"):
            assert not registry.is_valid(tld)

    def test_case_insensitive(self, registry):
        assert registry.is_valid("COM")
        assert "Com" in registry

    def test_add(self, registry):
        assert not registry.is_valid("newgtld")
        registry.add("newgtld")
        assert registry.is_valid("newgtld")

    def test_add_empty_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.add("  ")

    def test_tld_of(self, registry):
        assert registry.tld_of("www.example.co.uk") == "uk"
        with pytest.raises(ValueError):
            registry.tld_of("")

    def test_from_file(self, tmp_path):
        path = tmp_path / "tlds.txt"
        path.write_text("# Version 2018\nCOM\nNET\nORG\n", encoding="utf-8")
        registry = TldRegistry.from_file(str(path))
        assert len(registry) == 3
        assert registry.is_valid("com")

    def test_iteration_sorted(self, registry):
        tlds = list(registry)
        assert tlds == sorted(tlds)

    def test_paper_registry_size_constant(self):
        assert IANA_TLD_COUNT_MAY_2018 == 1543


class TestCoverage:
    def test_counts(self, registry):
        domains = ["a.com", "b.com", "c.de", "junk.localdomain", "x.cpe"]
        coverage = registry.coverage(domains)
        assert coverage.valid_tlds == 2  # com, de
        assert coverage.invalid_tlds == 2  # localdomain, cpe
        assert coverage.valid_domains == 3
        assert coverage.invalid_domains == 2

    def test_invalid_share(self, registry):
        coverage = registry.coverage(["a.com", "b.localdomain"])
        assert coverage.invalid_domain_share == pytest.approx(0.5)

    def test_empty_input(self, registry):
        coverage = registry.coverage([])
        assert coverage.valid_tlds == 0
        assert coverage.invalid_domain_share == 0.0
        assert coverage.coverage_ratio == 0.0

    def test_coverage_ratio(self, registry):
        coverage = registry.coverage(["a.com"])
        assert coverage.coverage_ratio == pytest.approx(1 / len(registry))

    def test_invalid_histogram(self, registry):
        histogram = registry.invalid_tld_histogram(
            ["a.com", "x.localdomain", "y.localdomain", "z.cpe"])
        assert histogram == {"localdomain": 2, "cpe": 1}

    def test_blank_entries_skipped(self, registry):
        coverage = registry.coverage(["", "  ", "a.com"])
        assert coverage.valid_domains == 1
