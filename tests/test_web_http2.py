"""Tests for the HTTP/2 prober."""

import pytest

from repro.web.http2 import Http2Prober
from repro.web.server import HostRegistry, WebHost


@pytest.fixture()
def registry() -> HostRegistry:
    registry = HostRegistry()
    registry.add(WebHost(domain="h2.example", tls_enabled=True, http2_enabled=True))
    registry.add(WebHost(domain="h1.example", tls_enabled=True, http2_enabled=False))
    registry.add(WebHost(domain="redirector.example", tls_enabled=True,
                         http2_enabled=False, redirect_to="h2.example"))
    registry.add(WebHost(domain="no-content.example", tls_enabled=True,
                         http2_enabled=True, serves_content=False))
    registry.add(WebHost(domain="h2-no-tls.example", tls_enabled=False, http2_enabled=True))
    registry.add(WebHost(domain="loop-a.example", tls_enabled=True, http2_enabled=True,
                         redirect_to="loop-b.example"))
    registry.add(WebHost(domain="loop-b.example", tls_enabled=True, http2_enabled=False,
                         redirect_to="loop-a.example"))
    return registry


@pytest.fixture()
def prober(registry) -> Http2Prober:
    return Http2Prober(registry)


class TestProbe:
    def test_direct_h2(self, prober):
        result = prober.probe("h2.example")
        assert result.http2_enabled
        assert result.redirects_followed == 0

    def test_h1_only(self, prober):
        assert not prober.probe("h1.example").http2_enabled

    def test_redirect_followed(self, prober):
        # The paper follows up to 10 redirects and counts the final page.
        result = prober.probe("redirector.example")
        assert result.http2_enabled
        assert result.final_domain == "h2.example"
        assert result.redirect_chain == ("h2.example",)

    def test_data_must_be_transferred(self, prober):
        # HTTP/2 negotiated but no landing-page data -> not counted.
        assert not prober.probe("no-content.example").http2_enabled

    def test_h2_requires_tls(self, prober):
        assert not prober.probe("h2-no-tls.example").http2_enabled

    def test_unreachable(self, prober):
        result = prober.probe("missing.example")
        assert not result.connected and not result.http2_enabled

    def test_redirect_loop_terminates(self, prober):
        result = prober.probe("loop-a.example")
        assert result.connected
        assert result.redirects_followed <= 2

    def test_redirect_limit(self, registry):
        prober = Http2Prober(registry, max_redirects=0)
        assert not prober.probe("redirector.example").http2_enabled

    def test_negative_redirect_limit_rejected(self, registry):
        with pytest.raises(ValueError):
            Http2Prober(registry, max_redirects=-1)


class TestAggregates:
    def test_adoption_share(self, prober):
        share = prober.adoption_share(["h2.example", "h1.example", "redirector.example",
                                       "missing.example"])
        assert share == pytest.approx(50.0)

    def test_empty(self, prober):
        assert prober.adoption_share([]) == 0.0

    def test_probe_all(self, prober):
        assert len(prober.probe_all(["h2.example", "h1.example"])) == 2
