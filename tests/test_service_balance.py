"""Balancer tests: round-robin, readiness ejection, re-admission.

The proxy's contract: any admitted backend may answer any request
(byte-identical payloads make round-robin safe), a backend failing
``/v1/ready`` leaves the rotation until the probe passes again, and
backend HTTP statuses — including clean 4xx — pass through verbatim
while connection-level failures are absorbed by retrying the next
backend.
"""

import datetime as dt
import json
import socket
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.providers.base import ListArchive, ListSnapshot
from repro.service.api import QueryService, create_server
from repro.service.balance import Backend, Balancer
from repro.service.store import ArchiveStore


def _get(url: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


@pytest.fixture()
def backends(tmp_path):
    """Two single-process servers over one store, plus their service."""
    snapshots = [
        ListSnapshot("alexa", dt.date(2018, 5, 1) + dt.timedelta(days=day),
                     ("a.com", "b.org"))
        for day in range(3)
    ]
    store = ArchiveStore.from_archives(
        tmp_path / "store",
        {"alexa": ListArchive.from_snapshots(snapshots)})
    service = QueryService(store)
    servers = [create_server(service) for _ in range(2)]
    for server in servers:
        threading.Thread(target=server.serve_forever, daemon=True).start()
    yield servers, service
    for server in servers:
        server.shutdown()
        server.server_close()
    store.close()


def _urls(servers) -> list[str]:
    return [f"http://127.0.0.1:{server.server_address[1]}"
            for server in servers]


class TestRotation:
    def test_round_robin_spreads_requests(self, backends):
        servers, _ = backends
        with Balancer(_urls(servers), check_interval=0.1) as balancer:
            for _ in range(8):
                status, _ = _get(f"http://127.0.0.1:{balancer.port}/v1/meta")
                assert status == 200
            counts = [b["requests"] for b in balancer.status()["backends"]]
            assert counts == [4, 4]

    def test_payloads_and_clean_errors_pass_through(self, backends):
        servers, service = backends
        expected = service.handle_request("/v1/meta")
        with Balancer(_urls(servers), check_interval=0.1) as balancer:
            base = f"http://127.0.0.1:{balancer.port}"
            status, body = _get(base + "/v1/meta")
            assert (status, body) == (200, expected.body)
            status, body = _get(base + "/v1/nope")
            assert status == 404
            assert json.loads(body)["error"]["status"] == 404

    def test_balancer_status_endpoint(self, backends):
        servers, _ = backends
        with Balancer(_urls(servers), check_interval=0.1) as balancer:
            status, body = _get(
                f"http://127.0.0.1:{balancer.port}/v1/balancer")
            payload = json.loads(body)
            assert status == 200
            assert payload["admitted"] == 2
            assert all(b["admitted"] for b in payload["backends"])


class TestEjection:
    def test_dead_backend_is_ejected_and_traffic_continues(self, backends):
        servers, _ = backends
        with Balancer(_urls(servers), check_interval=0.05) as balancer:
            base = f"http://127.0.0.1:{balancer.port}"
            servers[0].shutdown()
            servers[0].server_close()
            deadline = _deadline(5)
            while _now() < deadline:
                payload = json.loads(_get(base + "/v1/balancer")[1])
                if payload["admitted"] == 1:
                    break
            assert payload["admitted"] == 1
            dead, live = payload["backends"]
            assert not dead["admitted"] and dead["ejections"] == 1
            for _ in range(6):
                status, _ = _get(base + "/v1/meta")
                assert status == 200

    def test_unready_backend_is_ejected_then_readmitted(self, backends):
        """A follower answering 503 on /v1/ready leaves and re-enters."""
        servers, service = backends

        class _Gate:
            ready = True

            def staleness(self):
                return 0 if self.ready else 99

            def status(self):
                return {"mode": "test-gate", "last_error": None,
                        "breaker": "closed"}

            def ready(self=None):  # bound below
                raise NotImplementedError

        gate = _Gate()
        gate.ready_flag = True
        gate.ready = lambda: gate.ready_flag
        service.role = "follower"
        service._replica = gate
        try:
            with Balancer(_urls(servers), check_interval=0.05) as balancer:
                base = f"http://127.0.0.1:{balancer.port}"
                gate.ready_flag = False
                deadline = _deadline(5)
                while _now() < deadline:
                    payload = json.loads(_get(base + "/v1/balancer")[1])
                    if payload["admitted"] == 0:
                        break
                assert payload["admitted"] == 0
                status, _ = _get(base + "/v1/meta")
                assert status == 503  # no admitted backend
                gate.ready_flag = True
                deadline = _deadline(5)
                while _now() < deadline:
                    payload = json.loads(_get(base + "/v1/balancer")[1])
                    if payload["admitted"] == 2:
                        break
                assert payload["admitted"] == 2
                assert all(b["readmissions"] >= 1
                           for b in payload["backends"])
                status, _ = _get(base + "/v1/meta")
                assert status == 200
        finally:
            service.role = "leader"
            service._replica = None

    def test_all_backends_out_answers_503(self, backends):
        servers, _ = backends
        urls = _urls(servers)
        for server in servers:
            server.shutdown()
            server.server_close()
        with Balancer(urls, check_interval=0.05) as balancer:
            status, body = _get(f"http://127.0.0.1:{balancer.port}/v1/meta")
            assert status == 503
            assert json.loads(body)["error"]["status"] == 503


class _FlakyBackendHandler(BaseHTTPRequestHandler):
    """A backend that answers probes but dies on real traffic.

    ``/v1/ready`` passes so the balancer keeps it admitted; any other
    GET closes the connection before a status line (mid-request death);
    a POST *applies* the ingest to the shared service first and then
    dies — the nightmare case for a retrying proxy, because a replay on
    another backend would double-apply the day.
    """

    protocol_version = "HTTP/1.1"
    service: QueryService = None  # type: ignore[assignment]
    posts: list[bytes] = []
    drops = 0

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def _die(self) -> None:
        type(self).drops += 1
        self.close_connection = True
        try:
            self.connection.shutdown(socket.SHUT_WR)
        except OSError:
            pass

    def do_GET(self) -> None:  # noqa: N802
        if self.path == "/v1/ready":
            body = b'{"ready": true}'
            self.send_response(200)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)
            return
        self._die()

    def do_POST(self) -> None:  # noqa: N802
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length)
        type(self).posts.append(body)
        type(self).service.handle_request(
            "/v1/ingest", headers=dict(self.headers.items()),
            method="POST", body=body)
        self._die()


@pytest.fixture()
def flaky_first(backends):
    """[flaky, real] rotation: the dropper is always picked first."""
    servers, service = backends

    class Handler(_FlakyBackendHandler):
        posts = []
        drops = 0

    Handler.service = service
    flaky = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
    flaky.daemon_threads = True
    threading.Thread(target=flaky.serve_forever, daemon=True).start()
    urls = [f"http://127.0.0.1:{flaky.server_address[1]}",
            _urls(servers)[1]]
    yield urls, Handler, service
    flaky.shutdown()
    flaky.server_close()


def _post(url: str, payload: bytes) -> tuple[int, bytes]:
    request = urllib.request.Request(
        url, data=payload, method="POST",
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


class TestRetryIdempotency:
    """The retry-semantics bugfix: replay GETs, never replay POSTs."""

    def test_get_is_retried_after_midrequest_death(self, flaky_first):
        urls, handler, service = flaky_first
        expected = service.handle_request("/v1/meta")
        # Long check interval: only the seeding probe runs, so the flaky
        # backend is admitted when the request arrives and the failover
        # is driven by the proxied request itself, not a health probe.
        with Balancer(urls, check_interval=30) as balancer:
            status, body = _get(f"http://127.0.0.1:{balancer.port}/v1/meta")
            assert status == 200
            assert body == bytes(expected.body)
            assert handler.drops == 1  # the flaky backend did die first
            flaky_state = balancer.status()["backends"][0]
            assert not flaky_state["admitted"]
            assert flaky_state["errors"] == 1

    def test_post_applied_then_dropped_is_never_replayed(self, flaky_first):
        """Acceptance: the balancer must not double-apply an ingest.

        The flaky backend applies the POST and dies before answering.
        The old code replayed it on the next backend (409 at best,
        double-applied data at worst); the fix answers 502 and leaves
        the ambiguity to the client.
        """
        urls, handler, service = flaky_first
        before = service.store.version
        payload = json.dumps({
            "provider": "alexa", "date": "2018-06-01",
            "entries": ["retry-a.com", "retry-b.org"]}).encode()
        with Balancer(urls, check_interval=30) as balancer:
            status, body = _post(
                f"http://127.0.0.1:{balancer.port}/v1/ingest", payload)
            assert status == 502
            envelope = json.loads(body)["error"]
            assert envelope["status"] == 502
            assert "not retried" in envelope["message"]
            # The ingest landed exactly once (via the dying backend) …
            assert service.store.version == before + 1
            assert handler.posts == [payload]
            # … and the healthy backend never saw the POST.
            real_state = balancer.status()["backends"][1]
            assert real_state["requests"] == 0
            # Proof the day exists exactly once: a replay now conflicts.
            status, _ = _post(
                f"http://127.0.0.1:{balancer.port}/v1/ingest", payload)
            assert status == 409

    def test_post_fails_over_when_nothing_was_transmitted(self, backends):
        """Connect-refused is pre-transmit: POSTs may fail over safely."""
        servers, service = backends
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        urls = [f"http://127.0.0.1:{dead_port}", _urls(servers)[1]]
        before = service.store.version
        payload = json.dumps({
            "provider": "alexa", "date": "2018-06-02",
            "entries": ["failover.com"]}).encode()
        # eject_after=3 keeps the dead backend admitted past the two
        # seeding probes (one in start(), one at probe-loop entry), so
        # the POST itself hits the refused connection.
        with Balancer(urls, check_interval=30, eject_after=3) as balancer:
            status, _ = _post(
                f"http://127.0.0.1:{balancer.port}/v1/ingest", payload)
            assert status == 200
            assert service.store.version == before + 1
            dead_state = balancer.status()["backends"][0]
            assert dead_state["errors"] == 1
            assert not dead_state["admitted"]


class TestContentLengthValidation:
    """The parse bugfix: a garbage Content-Length used to kill the
    handler thread with an unhandled ValueError (connection reset, no
    response).  It must answer the API layer's 400 envelope."""

    def _raw(self, port: int, payload: bytes) -> bytes:
        with socket.create_connection(("127.0.0.1", port), timeout=10) as s:
            s.sendall(payload)
            s.shutdown(socket.SHUT_WR)
            chunks = []
            while True:
                chunk = s.recv(65536)
                if not chunk:
                    return b"".join(chunks)
                chunks.append(chunk)

    @pytest.mark.parametrize("declared", ["banana", "-1", "", "1e3",
                                          "0x10", "9" * 60])
    def test_fuzzed_content_length_answers_envelope(self, backends,
                                                    declared):
        servers, _ = backends
        with Balancer(_urls(servers), check_interval=0.1) as balancer:
            raw = self._raw(balancer.port, (
                f"POST /v1/ingest HTTP/1.1\r\nHost: t\r\n"
                f"Content-Length: {declared}\r\n\r\n").encode())
            head, _, body = raw.partition(b"\r\n\r\n")
            status = int(head.split()[1])
            expected = 413 if declared == "9" * 60 else 400
            assert status == expected, raw[:200]
            envelope = json.loads(body)["error"]
            assert envelope["status"] == expected
            assert b"Connection: close" in head

    def test_valid_length_still_proxies(self, backends):
        servers, _ = backends
        payload = json.dumps({"provider": "alexa", "date": "2018-06-03",
                              "entries": ["len-ok.com"]}).encode()
        with Balancer(_urls(servers), check_interval=0.1) as balancer:
            status, _ = _post(
                f"http://127.0.0.1:{balancer.port}/v1/ingest", payload)
            assert status == 200


class TestBackendParsing:
    def test_accepts_url_and_hostport(self):
        assert Backend("http://127.0.0.1:8098").port == 8098
        assert Backend("127.0.0.1:8099").port == 8099

    def test_rejects_non_http(self):
        with pytest.raises(ValueError):
            Backend("https://127.0.0.1:1")

    def test_requires_backends(self):
        with pytest.raises(ValueError):
            Balancer([])


def _now():
    import time

    return time.monotonic()


def _deadline(seconds: float) -> float:
    return _now() + seconds
