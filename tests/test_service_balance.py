"""Balancer tests: round-robin, readiness ejection, re-admission.

The proxy's contract: any admitted backend may answer any request
(byte-identical payloads make round-robin safe), a backend failing
``/v1/ready`` leaves the rotation until the probe passes again, and
backend HTTP statuses — including clean 4xx — pass through verbatim
while connection-level failures are absorbed by retrying the next
backend.
"""

import datetime as dt
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.providers.base import ListArchive, ListSnapshot
from repro.service.api import QueryService, create_server
from repro.service.balance import Backend, Balancer
from repro.service.store import ArchiveStore


def _get(url: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


@pytest.fixture()
def backends(tmp_path):
    """Two single-process servers over one store, plus their service."""
    snapshots = [
        ListSnapshot("alexa", dt.date(2018, 5, 1) + dt.timedelta(days=day),
                     ("a.com", "b.org"))
        for day in range(3)
    ]
    store = ArchiveStore.from_archives(
        tmp_path / "store",
        {"alexa": ListArchive.from_snapshots(snapshots)})
    service = QueryService(store)
    servers = [create_server(service) for _ in range(2)]
    for server in servers:
        threading.Thread(target=server.serve_forever, daemon=True).start()
    yield servers, service
    for server in servers:
        server.shutdown()
        server.server_close()
    store.close()


def _urls(servers) -> list[str]:
    return [f"http://127.0.0.1:{server.server_address[1]}"
            for server in servers]


class TestRotation:
    def test_round_robin_spreads_requests(self, backends):
        servers, _ = backends
        with Balancer(_urls(servers), check_interval=0.1) as balancer:
            for _ in range(8):
                status, _ = _get(f"http://127.0.0.1:{balancer.port}/v1/meta")
                assert status == 200
            counts = [b["requests"] for b in balancer.status()["backends"]]
            assert counts == [4, 4]

    def test_payloads_and_clean_errors_pass_through(self, backends):
        servers, service = backends
        expected = service.handle_request("/v1/meta")
        with Balancer(_urls(servers), check_interval=0.1) as balancer:
            base = f"http://127.0.0.1:{balancer.port}"
            status, body = _get(base + "/v1/meta")
            assert (status, body) == (200, expected.body)
            status, body = _get(base + "/v1/nope")
            assert status == 404
            assert json.loads(body)["error"]["status"] == 404

    def test_balancer_status_endpoint(self, backends):
        servers, _ = backends
        with Balancer(_urls(servers), check_interval=0.1) as balancer:
            status, body = _get(
                f"http://127.0.0.1:{balancer.port}/v1/balancer")
            payload = json.loads(body)
            assert status == 200
            assert payload["admitted"] == 2
            assert all(b["admitted"] for b in payload["backends"])


class TestEjection:
    def test_dead_backend_is_ejected_and_traffic_continues(self, backends):
        servers, _ = backends
        with Balancer(_urls(servers), check_interval=0.05) as balancer:
            base = f"http://127.0.0.1:{balancer.port}"
            servers[0].shutdown()
            servers[0].server_close()
            deadline = _deadline(5)
            while _now() < deadline:
                payload = json.loads(_get(base + "/v1/balancer")[1])
                if payload["admitted"] == 1:
                    break
            assert payload["admitted"] == 1
            dead, live = payload["backends"]
            assert not dead["admitted"] and dead["ejections"] == 1
            for _ in range(6):
                status, _ = _get(base + "/v1/meta")
                assert status == 200

    def test_unready_backend_is_ejected_then_readmitted(self, backends):
        """A follower answering 503 on /v1/ready leaves and re-enters."""
        servers, service = backends

        class _Gate:
            ready = True

            def staleness(self):
                return 0 if self.ready else 99

            def status(self):
                return {"mode": "test-gate", "last_error": None,
                        "breaker": "closed"}

            def ready(self=None):  # bound below
                raise NotImplementedError

        gate = _Gate()
        gate.ready_flag = True
        gate.ready = lambda: gate.ready_flag
        service.role = "follower"
        service._replica = gate
        try:
            with Balancer(_urls(servers), check_interval=0.05) as balancer:
                base = f"http://127.0.0.1:{balancer.port}"
                gate.ready_flag = False
                deadline = _deadline(5)
                while _now() < deadline:
                    payload = json.loads(_get(base + "/v1/balancer")[1])
                    if payload["admitted"] == 0:
                        break
                assert payload["admitted"] == 0
                status, _ = _get(base + "/v1/meta")
                assert status == 503  # no admitted backend
                gate.ready_flag = True
                deadline = _deadline(5)
                while _now() < deadline:
                    payload = json.loads(_get(base + "/v1/balancer")[1])
                    if payload["admitted"] == 2:
                        break
                assert payload["admitted"] == 2
                assert all(b["readmissions"] >= 1
                           for b in payload["backends"])
                status, _ = _get(base + "/v1/meta")
                assert status == 200
        finally:
            service.role = "leader"
            service._replica = None

    def test_all_backends_out_answers_503(self, backends):
        servers, _ = backends
        urls = _urls(servers)
        for server in servers:
            server.shutdown()
            server.server_close()
        with Balancer(urls, check_interval=0.05) as balancer:
            status, body = _get(f"http://127.0.0.1:{balancer.port}/v1/meta")
            assert status == 503
            assert json.loads(body)["error"]["status"] == 503


class TestBackendParsing:
    def test_accepts_url_and_hostport(self):
        assert Backend("http://127.0.0.1:8098").port == 8098
        assert Backend("127.0.0.1:8099").port == 8099

    def test_rejects_non_http(self):
        with pytest.raises(ValueError):
            Backend("https://127.0.0.1:1")

    def test_requires_backends(self):
        with pytest.raises(ValueError):
            Balancer([])


def _now():
    import time

    return time.monotonic()


def _deadline(seconds: float) -> float:
    return _now() + seconds
