"""Worker-pool tests: pre-fork serving, consistency, chaos, metrics.

The pool's correctness claims, each as a test:

* **Byte-identity** — every payload a pool worker serves equals, byte
  for byte, what a single-process :class:`QueryService` over the same
  store serves (same ETags), at every shared store version.
* **Write path** — ``POST /v1/ingest`` through any read worker is
  forwarded to the writer; every reader observes the published version
  within the configured staleness bound (measured, not assumed).
* **Supervision** — SIGKILL a random read worker mid-load: survivors
  answer no 5xx, the parent respawns the slot, and the respawned
  worker serves identical bytes.
* **Observability** — the parent's aggregated exposition parses with
  the ordinary :func:`parse_exposition` and sums per-worker counters.

POSIX-only (``os.fork``), like the pool itself.
"""

import http.client
import json
import os
import signal
import time
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import aggregate_expositions, parse_exposition
from repro.service.api import QueryService
from repro.service.store import ArchiveStore
from repro.service.workers import CRASH_EXIT_CODE, WorkerPool

pytestmark = pytest.mark.skipif(not hasattr(os, "fork"),
                                reason="worker pool requires os.fork")

#: Endpoints whose pool-served bytes must match single-process serving.
DIFFERENTIAL_TARGETS = (
    "/v1/meta",
    "/v1/providers/alexa/stability",
    "/v1/providers/umbrella/stability?top_n=5",
    "/v1/compare?providers=alexa,umbrella",
    "/v1/domains/google.com/history",
)


def _get(url: str, timeout: float = 10.0,
         retries: int = 10) -> tuple[int, dict, bytes]:
    """GET with retry on connection-level failures only.

    A killed worker resets the connections it had already accepted;
    that is a transport event the balancer (or any client) retries.
    HTTP statuses — including 5xx — are returned as-is so the no-5xx
    assertions stay meaningful.
    """
    for attempt in range(retries):
        try:
            with urllib.request.urlopen(url, timeout=timeout) as response:
                return response.status, dict(response.headers), response.read()
        except urllib.error.HTTPError as error:
            return error.code, dict(error.headers), error.read()
        except (ConnectionError, http.client.RemoteDisconnected):
            time.sleep(0.05)
    raise AssertionError(f"no worker answered {url} after {retries} tries")


def _post(url: str, body: bytes, timeout: float = 30.0) -> tuple[int, dict, bytes]:
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"},
        method="POST")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


@pytest.fixture(scope="module")
def pool_store(tmp_path_factory, small_run):
    root = tmp_path_factory.mktemp("poolstore") / "store"
    ArchiveStore.from_archives(root, small_run.archives).close()
    return root


@pytest.fixture(scope="module")
def pool(pool_store):
    with WorkerPool(pool_store, workers=2, poll_interval=0.05) as pool:
        yield pool


@pytest.fixture(scope="module")
def reference(pool_store):
    """Single-process answers over a read-only view of the same store."""
    store = ArchiveStore(pool_store, create=False, read_only=True)
    service = QueryService(store, role="reader")
    yield service
    store.close()


class TestPoolServing:
    def test_pool_payloads_byte_identical_to_single_process(
            self, pool, reference):
        reference.refresh_from_disk()
        for target in DIFFERENTIAL_TARGETS:
            expected = reference.handle_request(target)
            status, headers, body = _get(
                f"http://127.0.0.1:{pool.port}{target}")
            assert status == expected.status, target
            assert body == expected.body, f"payload mismatch for {target}"
            assert headers.get("ETag") == expected.headers.get("ETag"), target

    def test_every_worker_serves_identical_bytes(self, pool):
        """Hit the shared socket enough that every worker answers."""
        bodies = set()
        etags = set()
        for _ in range(24):
            status, headers, body = _get(
                f"http://127.0.0.1:{pool.port}/v1/meta")
            assert status == 200
            bodies.add(body)
            etags.add(headers.get("ETag"))
        assert len(bodies) == 1
        assert len(etags) == 1

    def test_reader_reports_disk_tail_replication(self, pool):
        status, _, body = _get(f"http://127.0.0.1:{pool.port}/v1/health")
        payload = json.loads(body)
        assert status == 200
        assert payload["role"] == "reader"
        assert payload["replication"]["mode"] == "disk-tail"
        assert payload["shared_cache"]["max_bytes"] > 0

    def test_writer_port_serves_leader(self, pool):
        status, _, body = _get(
            f"http://127.0.0.1:{pool.writer_port}/v1/health")
        assert status == 200
        assert json.loads(body)["role"] == "leader"


class TestPoolWritePath:
    def test_ingest_through_reader_reaches_every_worker(self, pool):
        base = f"http://127.0.0.1:{pool.port}"
        before = json.loads(_get(base + "/v1/meta")[2])["store_version"]
        body = json.dumps({"provider": "alexa", "date": "2030-01-01",
                           "entries": ["pool-a.com", "pool-b.org"]}).encode()
        status, headers, _ = _post(base + "/v1/ingest", body)
        assert status == 200
        assert headers.get("X-Repro-Forwarded") == "writer"
        # The forwarding reader refreshed synchronously: read-your-writes.
        # Every *other* reader converges within the staleness bound; the
        # bound is poll_interval plus one refresh, measured generously.
        deadline = time.monotonic() + max(2.0, pool.poll_interval * 40)
        versions = set()
        while time.monotonic() < deadline:
            versions = {
                json.loads(_get(base + "/v1/meta")[2])["store_version"]
                for _ in range(8)}
            if versions == {before + 1}:
                break
            time.sleep(pool.poll_interval)
        assert versions == {before + 1}, \
            f"readers did not converge: saw versions {versions}"

    def test_measured_staleness_within_bound(self, pool):
        status, _, body = _get(f"http://127.0.0.1:{pool.port}/v1/health")
        replication = json.loads(body)["replication"]
        adopt = replication["last_adopt_seconds"]
        if adopt is not None:  # this worker adopted at least one version
            # One poll interval plus scheduling slack: the measured
            # staleness bound the module docstring promises.
            assert adopt <= pool.poll_interval + 1.0

    def test_duplicate_ingest_conflicts(self, pool):
        base = f"http://127.0.0.1:{pool.port}"
        body = json.dumps({"provider": "alexa", "date": "2030-01-02",
                           "entries": ["dup.com"]}).encode()
        first, _, _ = _post(base + "/v1/ingest", body)
        second, _, payload = _post(base + "/v1/ingest", body)
        assert first == 200
        assert second == 409
        assert json.loads(payload)["error"]["status"] == 409


class TestPoolSupervision:
    def test_sigkill_reader_respawns_without_survivor_5xx(self, pool):
        base = f"http://127.0.0.1:{pool.port}"
        # Let every reader adopt any version a previous test published,
        # so one reference body is THE body for the whole pool.
        deadline = time.monotonic() + 5
        bodies = set()
        while time.monotonic() < deadline:
            bodies = {_get(base + "/v1/meta")[2] for _ in range(8)}
            if len(bodies) == 1:
                break
            time.sleep(pool.poll_interval)
        assert len(bodies) == 1, "pool did not settle before the kill"
        reference_body = bodies.pop()
        restarts_before = pool.describe()["restarts"]
        victim = pool.worker_pids("reader")[0]
        os.kill(victim, signal.SIGKILL)
        statuses = set()
        for _ in range(60):
            status, _, body = _get(base + "/v1/meta")
            statuses.add(status)
            assert body == reference_body
        assert statuses == {200}, f"survivors answered {statuses - {200}}"
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            pids = pool.worker_pids("reader")
            if victim not in pids and len(pids) == pool.workers \
                    and pool.describe()["restarts"] > restarts_before:
                break
            time.sleep(0.05)
        description = pool.describe()
        assert description["restarts"] > restarts_before
        assert victim not in pool.worker_pids("reader")
        # The respawned worker answers identical bytes once ready.
        pool.wait_ready(timeout=10)
        _, _, body = _get(base + "/v1/meta")
        assert body == reference_body

    def test_killed_worker_slot_records_signal_exit(self, pool):
        slots = pool.describe()["workers"]
        exits = [slot["last_exit"] for slot in slots
                 if slot["last_exit"] is not None]
        assert -signal.SIGKILL in exits


class TestPoolMetrics:
    def test_aggregated_exposition_sums_worker_counters(self, pool):
        base = f"http://127.0.0.1:{pool.port}"
        for _ in range(10):
            _get(base + "/v1/meta")
        per_worker = []
        for slot in pool.describe()["workers"]:
            status, _, body = _get(
                f"http://127.0.0.1:{slot['port']}/v1/metrics")
            assert status == 200
            per_worker.append(body.decode("utf-8"))
        aggregated = parse_exposition(aggregate_expositions(per_worker))
        key = 'repro_http_requests_total{method="GET"}'
        total = sum(parse_exposition(text).get(key, 0.0)
                    for text in per_worker)
        assert aggregated[key] == total
        assert total >= 10

    def test_control_endpoint_serves_merged_metrics(self, pool):
        status, _, body = _get(
            f"http://127.0.0.1:{pool.control_port}/v1/metrics")
        assert status == 200
        samples = parse_exposition(body.decode("utf-8"))
        assert samples["repro_pool_workers_scraped"] == pool.workers + 1
        assert 'repro_http_requests_total{method="GET"}' in samples

    def test_control_endpoint_describes_pool(self, pool):
        status, _, body = _get(
            f"http://127.0.0.1:{pool.control_port}/v1/pool")
        payload = json.loads(body)
        assert status == 200
        assert payload["port"] == pool.port
        roles = sorted(worker["role"] for worker in payload["workers"])
        assert roles == ["reader"] * pool.workers + ["writer"]


@pytest.fixture(scope="module")
def el_store(tmp_path_factory, small_run):
    root = tmp_path_factory.mktemp("elpoolstore") / "store"
    ArchiveStore.from_archives(root, small_run.archives).close()
    return root


@pytest.fixture(scope="module")
def el_pool(el_store):
    with WorkerPool(el_store, workers=2, poll_interval=0.05,
                    event_loop=True) as pool:
        yield pool


class TestEventLoopPool:
    """The pool with ``event_loop=True``: epoll readers, threaded writer."""

    def test_describe_reports_event_loop(self, el_pool, pool):
        assert el_pool.describe()["event_loop"] is True
        assert pool.describe()["event_loop"] is False

    def test_payloads_byte_identical_to_single_process(self, el_pool,
                                                       el_store):
        store = ArchiveStore(el_store, create=False, read_only=True)
        service = QueryService(store, role="reader")
        try:
            service.refresh_from_disk()
            for target in DIFFERENTIAL_TARGETS:
                expected = service.handle_request(target)
                status, headers, body = _get(
                    f"http://127.0.0.1:{el_pool.port}{target}")
                assert status == expected.status, target
                assert body == bytes(expected.body), target
                assert headers.get("ETag") == \
                    expected.headers.get("ETag"), target
        finally:
            store.close()

    def test_keepalive_burst_over_pool_port(self, el_pool):
        """Many requests down ONE connection land on one epoll reader."""
        import socket
        with socket.create_connection(
                ("127.0.0.1", el_pool.port), timeout=10) as sock:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            reader = sock.makefile("rb")
            bodies = set()
            for _ in range(16):
                sock.sendall(b"GET /v1/meta HTTP/1.1\r\nHost: t\r\n\r\n")
                status_line = reader.readline()
                assert status_line.startswith(b"HTTP/1.1 200"), status_line
                headers = {}
                while True:
                    line = reader.readline()
                    if line in (b"\r\n", b"\n"):
                        break
                    key, _, value = line.decode("latin-1").partition(":")
                    headers[key.strip().lower()] = value.strip()
                bodies.add(reader.read(int(headers["content-length"])))
            assert len(bodies) == 1

    def test_ingest_through_event_loop_reader_converges(self, el_pool):
        base = f"http://127.0.0.1:{el_pool.port}"
        before = json.loads(_get(base + "/v1/meta")[2])["store_version"]
        body = json.dumps({"provider": "alexa", "date": "2032-03-01",
                           "entries": ["el-a.com", "el-b.org"]}).encode()
        status, headers, _ = _post(base + "/v1/ingest", body)
        assert status == 200
        assert headers.get("X-Repro-Forwarded") == "writer"
        deadline = time.monotonic() + max(2.0, el_pool.poll_interval * 40)
        versions = set()
        while time.monotonic() < deadline:
            versions = {
                json.loads(_get(base + "/v1/meta")[2])["store_version"]
                for _ in range(8)}
            if versions == {before + 1}:
                break
            time.sleep(el_pool.poll_interval)
        assert versions == {before + 1}

    def test_sigkill_event_loop_reader_mid_load(self, el_pool, el_store):
        """The issue's chaos clause: kill an epoll reader under load;
        survivors never answer a non-503 5xx and byte-identity holds at
        every shared store version, including one published after the
        respawn."""
        base = f"http://127.0.0.1:{el_pool.port}"
        deadline = time.monotonic() + 5
        bodies = set()
        while time.monotonic() < deadline:
            bodies = {_get(base + "/v1/meta")[2] for _ in range(8)}
            if len(bodies) == 1:
                break
            time.sleep(el_pool.poll_interval)
        assert len(bodies) == 1, "pool did not settle before the kill"
        reference_body = bodies.pop()
        restarts_before = el_pool.describe()["restarts"]
        victim = el_pool.worker_pids("reader")[0]
        os.kill(victim, signal.SIGKILL)
        statuses = set()
        for _ in range(60):
            status, _, body = _get(base + "/v1/meta")
            statuses.add(status)
            assert body == reference_body
        assert statuses - {200, 503} == set(), \
            f"survivors answered {statuses - {200, 503}}"
        assert 200 in statuses
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            pids = el_pool.worker_pids("reader")
            if victim not in pids and len(pids) == el_pool.workers \
                    and el_pool.describe()["restarts"] > restarts_before:
                break
            time.sleep(0.05)
        assert el_pool.describe()["restarts"] > restarts_before
        el_pool.wait_ready(timeout=10)
        _, _, body = _get(base + "/v1/meta")
        assert body == reference_body
        # Publish a fresh version and require identity there too: the
        # respawned epoll reader adopts it from the shared segment.
        ingest = json.dumps({"provider": "alexa", "date": "2032-03-02",
                             "entries": ["el-post.com"]}).encode()
        status, _, _ = _post(base + "/v1/ingest", ingest)
        assert status == 200
        store = ArchiveStore(el_store, create=False, read_only=True)
        service = QueryService(store, role="reader")
        try:
            service.refresh_from_disk()
            expected = service.handle_request("/v1/meta")
            deadline = time.monotonic() + 10
            seen = set()
            while time.monotonic() < deadline:
                seen = {_get(base + "/v1/meta")[2] for _ in range(8)}
                if seen == {bytes(expected.body)}:
                    break
                time.sleep(el_pool.poll_interval)
            assert seen == {bytes(expected.body)}
        finally:
            store.close()


class TestPoolChaos:
    def test_writer_crash_mid_append_respawns_and_recovers(
            self, tmp_path, small_run):
        """Seeded writer-death during a store append, under the pool.

        The fault plan (installed only in the writer child via
        ``worker_init``) crashes the writer's first shard append; a
        marker file keeps the *respawned* writer clean, so the schedule
        reads "the process died once, mid-append".  The crash becomes a
        real process exit (:data:`CRASH_EXIT_CODE`), the parent
        respawns the writer through the store's recovery path, and a
        retried ingest lands — with every reader converging to
        byte-identical payloads afterwards.
        """
        from repro import faults
        from repro.faults import FaultPlan, FaultRule

        root = tmp_path / "store"
        ArchiveStore.from_archives(root, small_run.archives).close()
        armed = tmp_path / "crash-armed"

        def worker_init(role: str, index: int) -> None:
            if role == "writer" and not armed.exists():
                armed.touch()
                faults.install(FaultPlan(seed=1337, rules=[
                    FaultRule("store.shard.write", "crash", on_calls=(1,)),
                ]))

        with WorkerPool(root, workers=2, poll_interval=0.05,
                        worker_init=worker_init) as pool:
            base = f"http://127.0.0.1:{pool.port}"
            before = json.loads(_get(base + "/v1/meta")[2])["store_version"]
            body = json.dumps({
                "provider": "alexa", "date": "2031-06-01",
                "entries": ["crash-a.com", "crash-b.org",
                            "crash-c.net"]}).encode()
            statuses = []
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                try:
                    status, _, _ = _post(base + "/v1/ingest", body,
                                         timeout=10)
                except (ConnectionError, http.client.RemoteDisconnected,
                        TimeoutError, OSError):
                    # The writer died mid-request; the reader's forward
                    # surfaced it as 503 or the connection dropped.
                    time.sleep(0.1)
                    continue
                statuses.append(status)
                if status in (200, 409):
                    break
                time.sleep(0.1)
            assert statuses and statuses[-1] in (200, 409), statuses
            # The writer slot died with the crash exit code and respawned.
            deadline = time.monotonic() + 10
            writer_slot = None
            while time.monotonic() < deadline:
                writer_slot = next(
                    w for w in pool.describe()["workers"]
                    if w["role"] == "writer")
                if writer_slot["restarts"] >= 1 and writer_slot["pid"]:
                    break
                time.sleep(0.05)
            assert writer_slot["restarts"] >= 1
            assert writer_slot["last_exit"] == CRASH_EXIT_CODE
            # All readers converge on the post-recovery version and the
            # recovered store serves the ingested day.
            deadline = time.monotonic() + 10
            versions = set()
            while time.monotonic() < deadline:
                versions = {
                    json.loads(_get(base + "/v1/meta")[2])["store_version"]
                    for _ in range(6)}
                if versions == {before + 1}:
                    break
                time.sleep(0.1)
            assert versions == {before + 1}
            bodies = {_get(base + "/v1/domains/crash-a.com/history")[2]
                      for _ in range(8)}
            assert len(bodies) == 1
