#!/usr/bin/env python
"""Scale-out smoke: worker pool + follower behind the balancer, under fire.

The CI ``scale-out`` job's driver.  Boots the full horizontal topology on
one machine — a 4-worker pre-fork pool (1 writer + 4 read workers on a
shared listening socket) plus one HTTP-replication follower process, both
fronted by ``repro-serve balance`` — then exercises it the way the README
says operators should expect it to behave:

1. mixed read + ingest load through the balancer (ingests land on the
   pool, whose read workers forward them to the designated writer);
2. SIGKILL one read worker mid-load — the survivors must answer every
   request with a non-5xx status (connection-level resets on the victim's
   in-flight sockets are retried by the balancer, never surfaced), and
   the supervisor must respawn the victim;
3. kill the follower — the balancer must eject it from rotation while
   traffic continues, then re-admit it once a replacement follower
   passes ``/v1/ready`` again;
4. the pool's aggregated ``/v1/metrics`` must parse with
   ``parse_exposition`` and its request counters must cover the sum of
   the per-worker counters scraped individually just before.

Exits non-zero (AssertionError) on any violation.  Stdlib + repro only.
"""

from __future__ import annotations

import argparse
import datetime as dt
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.metrics import parse_exposition  # noqa: E402
from repro.population.config import SimulationConfig  # noqa: E402
from repro.providers.simulation import run_simulation  # noqa: E402
from repro.service.balance import Balancer  # noqa: E402
from repro.service.store import ArchiveStore  # noqa: E402
from repro.service.workers import WorkerPool  # noqa: E402

READ_TARGETS = ("/v1/meta", "/v1/providers/alexa/stability?top_n=50")
WORKERS = 4


def _get(url: str, timeout: float = 10.0) -> tuple[int, bytes]:
    """One GET; HTTP statuses pass through, connection failures raise."""
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def _wait_ready(url: str, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            if _get(url + "/v1/ready", timeout=2)[0] == 200:
                return
        except OSError:
            pass
        time.sleep(0.2)
    raise AssertionError(f"{url} never became ready")


def _spawn_follower(store_dir: Path, leader: str, port: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_ROOT / "src")
                         + os.pathsep + env.get("PYTHONPATH", ""))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.service.cli", "serve",
         "--store", str(store_dir), "--follow", leader,
         "--port", str(port), "--poll-interval", "0.2"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    _wait_ready(f"http://127.0.0.1:{port}")
    return process


def _balancer_state(base: str) -> dict:
    return json.loads(_get(base + "/v1/balancer")[1])


def _wait_admitted(base: str, count: int, timeout: float = 30.0) -> dict:
    deadline = time.monotonic() + timeout
    payload = _balancer_state(base)
    while time.monotonic() < deadline:
        payload = _balancer_state(base)
        if payload["admitted"] == count:
            return payload
        time.sleep(0.1)
    raise AssertionError(
        f"balancer never reached admitted={count}: {payload}")


def _load(base: str, n: int) -> list[int]:
    """n reads through the balancer; retry only connection-level failures."""
    statuses = []
    for i in range(n):
        target = READ_TARGETS[i % len(READ_TARGETS)]
        for _attempt in range(20):
            try:
                statuses.append(_get(base + target)[0])
                break
            except OSError:
                time.sleep(0.05)
        else:
            raise AssertionError(f"GET {target}: connection never succeeded")
    return statuses


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--event-loop", action="store_true",
        help="run the pool's read workers on the selectors/epoll event "
             "loop instead of one thread per connection")
    args = parser.parse_args()
    mode = "event-loop" if args.event_loop else "threaded"
    print("building the fixture corpus ...")
    run = run_simulation(SimulationConfig.small(alexa_change_day=9))
    with tempfile.TemporaryDirectory() as tmp:
        store_dir = Path(tmp) / "store"
        ArchiveStore.from_archives(store_dir, run.archives).close()
        follower_dir = Path(tmp) / "follower"

        print(f"booting the {WORKERS}-worker pool ({mode} readers) ...")
        with WorkerPool(store_dir, workers=WORKERS, poll_interval=0.05,
                        event_loop=args.event_loop) as pool:
            pool_url = f"http://127.0.0.1:{pool.port}"
            print(f"booting the follower (tailing {pool_url}) ...")
            follower_port = pool.port + 71
            follower = _spawn_follower(follower_dir, pool_url, follower_port)
            follower_url = f"http://127.0.0.1:{follower_port}"
            try:
                with Balancer([pool_url, follower_url],
                              check_interval=0.1) as balancer:
                    base = f"http://127.0.0.1:{balancer.port}"
                    _wait_admitted(base, 2)
                    print("phase 1: mixed read/ingest load, both admitted")
                    statuses = _load(base, 60)
                    last = max(max(archive.dates())
                               for archive in run.archives.values())
                    for offset in (1, 2):
                        day = last + dt.timedelta(days=offset)
                        body = json.dumps({
                            "provider": "alexa", "date": day.isoformat(),
                            "entries": ["scaleout.example", "smoke.example"],
                        }).encode()
                        request = urllib.request.Request(
                            pool_url + "/v1/ingest", data=body, method="POST",
                            headers={"Content-Type": "application/json"})
                        with urllib.request.urlopen(request, timeout=30) as r:
                            assert r.status == 200
                    statuses += _load(base, 40)

                    print("phase 2: SIGKILL one read worker mid-load")
                    victim = pool.worker_pids("reader")[0]
                    os.kill(victim, signal.SIGKILL)
                    statuses += _load(base, 80)
                    deadline = time.monotonic() + 30
                    while time.monotonic() < deadline:
                        topology = pool.describe()
                        if (topology["restarts"] >= 1
                                and victim not in pool.worker_pids()):
                            break
                        time.sleep(0.1)
                    assert topology["restarts"] >= 1, topology
                    pool.wait_ready()
                    statuses += _load(base, 20)
                    bad = [s for s in statuses if s >= 400 and s != 503]
                    assert not bad, f"non-503 errors under fire: {bad}"
                    assert statuses.count(200) >= 190, statuses

                    print("phase 3: follower dies -> ejection; "
                          "replacement -> re-admission")
                    follower.kill()
                    follower.wait(timeout=10)
                    payload = _wait_admitted(base, 1)
                    ejected = payload["backends"][1]
                    assert not ejected["admitted"], payload
                    assert ejected["ejections"] >= 1, payload
                    for status in _load(base, 20):
                        assert status == 200
                    follower = _spawn_follower(
                        Path(tmp) / "follower2", pool_url, follower_port)
                    payload = _wait_admitted(base, 2)
                    assert payload["backends"][1]["readmissions"] >= 1, payload
                    for status in _load(base, 10):
                        assert status == 200

                    print("phase 4: aggregated metrics parse and sum")
                    per_worker = []
                    for worker in pool.describe()["workers"]:
                        text = _get(f"http://127.0.0.1:{worker['port']}"
                                    "/v1/metrics")[1].decode()
                        per_worker.append(parse_exposition(text))
                    key = 'repro_http_requests_total{method="GET"}'
                    individual_sum = sum(s.get(key, 0) for s in per_worker)
                    aggregated = parse_exposition(
                        _get(f"http://127.0.0.1:{pool.control_port}"
                             "/v1/metrics")[1].decode())
                    assert aggregated["repro_pool_workers_scraped"] \
                        == WORKERS + 1, aggregated
                    assert aggregated.get(key, 0) >= individual_sum > 0, (
                        aggregated.get(key), individual_sum)
                    assert aggregated["repro_pool_worker_restarts_total"] >= 1
            finally:
                follower.kill()
                follower.wait(timeout=10)
    print(f"scale-out smoke ({mode} readers): all phases passed "
          f"({len(statuses)} balanced requests, zero non-503 errors)")


if __name__ == "__main__":
    main()
