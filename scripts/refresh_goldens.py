#!/usr/bin/env python3
"""Intentionally regenerate the scenario golden fingerprints.

Run this (or ``make goldens``) after an algorithm change that is
*supposed* to move scenario-level statistics, then commit the diff under
``tests/goldens/`` — the review diff documents exactly which churn rates,
tau/KS summaries or head hashes moved.

Usage::

    PYTHONPATH=src python scripts/refresh_goldens.py [profile ...]

Without arguments every built-in profile is refreshed.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.scenarios import profile_names, refresh_goldens  # noqa: E402

GOLDENS_DIR = REPO_ROOT / "tests" / "goldens"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("profiles", nargs="*", metavar="profile",
                        help=f"profiles to refresh (default: all of {', '.join(profile_names())})")
    parser.add_argument("--out", type=Path, default=GOLDENS_DIR,
                        help="golden directory (default: tests/goldens)")
    args = parser.parse_args()
    selected = args.profiles or None
    for path in refresh_goldens(args.out, profiles=selected):
        print(f"wrote {path.relative_to(Path.cwd()) if path.is_relative_to(Path.cwd()) else path}")


if __name__ == "__main__":
    main()
