#!/usr/bin/env python3
"""Stability report: reproduce the Section 6 analyses for a simulated period.

Generates the JOINT-style dataset and prints, per list: daily changes and
the weekly pattern, new-domain rates, cumulative growth, how long domains
stay in a list, Kendall's tau rank correlation, and the weekday/weekend KS
analysis — the data behind Figures 1b/1c, 2a-c, 3a and 4.

Run with::

    python examples/stability_report.py
"""

from __future__ import annotations

from repro import SimulationConfig, run_simulation
from repro.core import (
    churn_by_rank,
    cumulative_unique_domains,
    daily_changes,
    days_in_list,
    intersection_with_reference,
    kendall_tau_series,
    new_domains_per_day,
    weekday_weekend_ks,
)
from repro.core.rank_dynamics import strong_correlation_share


def main() -> None:
    config = SimulationConfig.small(n_days=21, alexa_change_day=14)
    run = run_simulation(config)
    top_k = config.top_k

    print("== Daily changes per list (Figure 1b) ==")
    for name, archive in run.archives.items():
        changes = daily_changes(archive)
        weekend = [count for date, count in changes.items() if date.weekday() >= 5]
        weekday = [count for date, count in changes.items() if date.weekday() < 5]
        print(f"  {name:<9} mean {sum(changes.values()) / len(changes):8.1f}   "
              f"weekday mean {sum(weekday) / max(1, len(weekday)):8.1f}   "
              f"weekend mean {sum(weekend) / max(1, len(weekend)):8.1f}")

    print("\n== Churn by rank subset (Figure 1c) ==")
    sizes = [top_k // 2, top_k, config.list_size // 2, config.list_size]
    for name, archive in run.archives.items():
        churn = churn_by_rank(archive, sizes)
        cells = "  ".join(f"top{size}: {100 * churn[size]:5.2f}%" for size in sizes)
        print(f"  {name:<9} {cells}")

    print("\n== New domains and cumulative growth (Figure 2a) ==")
    for name, archive in run.archives.items():
        new = new_domains_per_day(archive)
        cumulative = cumulative_unique_domains(archive)
        print(f"  {name:<9} new/day {sum(new.values()) / max(1, len(new)):7.1f}   "
              f"distinct domains over the period "
              f"{list(cumulative.values())[-1]:6d} (list size {config.list_size})")

    print("\n== Decay against the first week (Figure 2b) ==")
    for name, archive in run.archives.items():
        decay = intersection_with_reference(archive, reference_days=range(7))
        last_offset = max(decay)
        print(f"  {name:<9} day0 {decay[0]:7.0f}  ->  day{last_offset} {decay[last_offset]:7.0f}")

    print("\n== Share of domains present on every day (Figure 2c) ==")
    for name, archive in run.archives.items():
        counts = days_in_list(archive)
        always = sum(1 for v in counts.values() if v == config.n_days) / len(counts)
        print(f"  {name:<9} {100 * always:5.1f}% of ever-listed domains were listed every day")

    print("\n== Kendall's tau of the Top-%d (Figure 4) ==" % top_k)
    for name, archive in run.archives.items():
        day_to_day = kendall_tau_series(archive, top_n=top_k, mode="day-to-day")
        vs_first = kendall_tau_series(archive, top_n=top_k, mode="vs-first")
        print(f"  {name:<9} tau>0.95 day-to-day: "
              f"{100 * strong_correlation_share(day_to_day):5.1f}%   "
              f"vs first day: {100 * strong_correlation_share(vs_first):5.1f}%")

    print("\n== Weekday/weekend KS distance (Figure 3a) ==")
    for name, archive in run.archives.items():
        distances = weekday_weekend_ks(archive)
        if not distances:
            print(f"  {name:<9} (not enough weekend observations)")
            continue
        disjoint = sum(1 for v in distances.values() if v >= 0.999) / len(distances)
        print(f"  {name:<9} {100 * disjoint:5.1f}% of domains have fully disjoint "
              f"weekday/weekend ranks")


if __name__ == "__main__":
    main()
