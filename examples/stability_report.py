#!/usr/bin/env python3
"""Stability report: run one scenario through the full analysis battery.

Every named scenario profile (``paper_realistic``, ``high_churn_stress``,
``alexa_change_2018``, ``weekend_heavy``, ``manipulated``) is one call to
the :class:`~repro.scenarios.ScenarioRunner`; this example renders the
resulting :class:`~repro.scenarios.ScenarioReport` as the Section 6
figures: daily changes and the weekly pattern, churn by rank subset,
new-domain rates, cumulative growth, Kendall's tau rank correlation and
the weekday/weekend KS analysis.

Run with::

    python examples/stability_report.py [--scenario NAME] [--json]
"""

from __future__ import annotations

import argparse
import datetime as dt

from repro.scenarios import ScenarioReport, ScenarioRunner, profile_names

DEFAULT_SCENARIO = "alexa_change_2018"


def render(report: ScenarioReport) -> str:
    """Human-readable rendering of a scenario report."""
    lines: list[str] = []
    out = lines.append
    out(f"Scenario: {report.profile}")
    out(f"  {report.description}")
    out(f"  ({report.config['n_days']} days, list size {report.config['list_size']}, "
        f"top-{report.top_k} head)")

    out("\n== Daily changes per list (Figure 1b) ==")
    for name, section in report.providers.items():
        changes = {dt.date.fromisoformat(date): count
                   for date, count in section["stability"]["daily_changes"].items()}
        weekend = [count for date, count in changes.items() if date.weekday() >= 5]
        weekday = [count for date, count in changes.items() if date.weekday() < 5]
        out(f"  {name:<9} mean {section['stability']['mean_daily_change']:8.1f}   "
            f"weekday mean {sum(weekday) / max(1, len(weekday)):8.1f}   "
            f"weekend mean {sum(weekend) / max(1, len(weekend)):8.1f}   "
            f"({100 * section['stability']['churn_fraction']:.2f}% of the list)")

    out("\n== Churn by rank subset (Figure 1c) ==")
    for name, section in report.providers.items():
        cells = "  ".join(f"top{size}: {100 * share:5.2f}%"
                          for size, share in sorted(
                              section["rank_dynamics"]["churn_by_rank"].items(),
                              key=lambda item: int(item[0])))
        out(f"  {name:<9} {cells}")

    out("\n== New domains and cumulative growth (Figure 2a) ==")
    for name, section in report.providers.items():
        stability = section["stability"]
        out(f"  {name:<9} new/day {stability['new_per_day_mean']:7.1f}   "
            f"distinct domains over the period {stability['cumulative_unique']:6d} "
            f"(list size {section['list_size']})")

    out("\n== Decay against the first week (Figure 2b) ==")
    for name, section in report.providers.items():
        decay = section["stability"]["reference_decay"]
        last_offset = max(decay, key=int)
        out(f"  {name:<9} day0 {decay['0']:7.0f}  ->  "
            f"day{last_offset} {decay[last_offset]:7.0f}")

    out("\n== Share of domains present on every day (Figure 2c) ==")
    for name, section in report.providers.items():
        out(f"  {name:<9} {100 * section['stability']['always_listed_share']:5.1f}% "
            f"of ever-listed domains were listed every day")

    out(f"\n== Kendall's tau of the Top-{report.top_k} (Figure 4) ==")
    for name, section in report.providers.items():
        day_to_day = section["rank_dynamics"]["tau_day_to_day"]
        vs_first = section["rank_dynamics"]["tau_vs_first"]
        out(f"  {name:<9} tau>0.95 day-to-day: {100 * day_to_day['strong_share']:5.1f}%   "
            f"vs first day: {100 * vs_first['strong_share']:5.1f}%   "
            f"(mean day-to-day tau {day_to_day['mean']:.3f})")

    out("\n== Weekday/weekend KS distance (Figure 3a) ==")
    for name, section in report.providers.items():
        weekly = section["weekly"]
        if not weekly["ks_domains"]:
            out(f"  {name:<9} (not enough weekend observations)")
            continue
        out(f"  {name:<9} {100 * weekly['disjoint_share']:5.1f}% of domains have fully "
            f"disjoint weekday/weekend ranks (mean KS {weekly['ks_mean']:.3f}, "
            f"{len(weekly['sld_groups'])} swinging SLD groups)")

    out(f"\n== Intersections of the Top-{report.intersection['top_n']} (Figure 1a) ==")
    for pair, stats in report.intersection["pairs"].items():
        out(f"  {pair:<28} mean {stats['mean']:7.1f}  "
            f"min {stats['min']:4d}  max {stats['max']:4d}")

    if report.manipulation:
        out("\n== Injected rank manipulation (Figure 5) ==")
        for fqdn, outcome in report.manipulation.items():
            rank = outcome["rank"]
            out(f"  {fqdn:<45} {outcome['n_clients']:>6} probes x "
                f"{outcome['queries_per_client']:>5.1f} q/day  ->  "
                f"rank {rank if rank is not None else '(unlisted)'}")
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scenario", default=DEFAULT_SCENARIO, choices=profile_names(),
                        help=f"scenario profile to run (default: {DEFAULT_SCENARIO})")
    parser.add_argument("--json", action="store_true",
                        help="print the full serialised ScenarioReport instead")
    args = parser.parse_args()
    report = ScenarioRunner(args.scenario).run()
    if args.json:
        print(report.to_json(), end="")
    else:
        print(render(report))


if __name__ == "__main__":
    main()
