#!/usr/bin/env python3
"""Quickstart: simulate a top-list observation period and analyse it.

Builds a small synthetic Internet, generates daily Alexa-, Umbrella- and
Majestic-style lists, and prints the paper's headline statistics: daily
churn, list intersections, structure, and the measurement bias of top
lists against the general population.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SimulationConfig, default_interner, run_simulation
from repro.core import (
    intersection_matrix,
    mean_daily_change,
    structure_summary,
)
from repro.measurement import MeasurementHarness, TargetSet


def main() -> None:
    config = SimulationConfig.small(alexa_change_day=9)
    print(f"Simulating {config.n_days} days over {config.total_domains()} domains "
          f"(lists of {config.list_size} entries, seed {config.seed}) ...")
    run = run_simulation(config)
    print(f"Columnar core: {len(default_interner())} distinct domains interned; "
          "snapshots are uint32 id columns, analyses run on integer sets.")

    print("\n== Top of the lists (last day) ==")
    for name, archive in run.archives.items():
        print(f"  {name:<9} {', '.join(archive[-1].entries[:5])}")

    print("\n== Daily churn (domains leaving the list per day, Fig. 1b) ==")
    for name, archive in run.archives.items():
        change = mean_daily_change(archive)
        print(f"  {name:<9} {change:7.1f} domains/day "
              f"({100 * change / config.list_size:.1f}% of the list)")

    print("\n== Intersection between the lists (last day, Fig. 1a) ==")
    snapshots = {name: archive[-1] for name, archive in run.archives.items()}
    for lists, count in intersection_matrix(snapshots).items():
        print(f"  {' ∩ '.join(lists):<35} {count:5d} of {config.list_size}")

    print("\n== Structure (Table 2) ==")
    for name, archive in run.archives.items():
        summary = structure_summary(archive[-1])
        print(f"  {name:<9} base domains {100 * summary.base_domain_share:5.1f}%  "
              f"valid TLDs {summary.valid_tlds:4d}  invalid-TLD entries "
              f"{summary.invalid_tld_domains:4d}  max subdomain depth {summary.max_depth}")

    print("\n== Measurement bias: top list vs general population (Table 5) ==")
    harness = MeasurementHarness(run.internet)
    population = harness.measure(TargetSet.from_zonefile(run.zonefile))
    alexa_head = harness.measure(TargetSet.from_snapshot(run.alexa[-1], top_n=config.top_k))
    print(f"  {'metric':<12} {'alexa top-' + str(config.top_k):>14} {'com/net/org':>14}")
    for metric in ("ipv6", "caa", "tls", "http2"):
        print(f"  {metric:<12} {alexa_head.metric(metric):13.1f}% "
              f"{population.metric(metric):13.1f}%")
    print("\nTop lists exaggerate adoption metrics relative to the general "
          "population — the paper's central warning.")


if __name__ == "__main__":
    main()
