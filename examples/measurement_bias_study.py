#!/usr/bin/env python3
"""Measurement-bias study: how the choice of target list changes a result.

Plays the role of a researcher measuring IPv6, CAA and HTTP/2 adoption
"on the Internet" (Section 8 of the paper) using different target sets:

* the full Alexa/Umbrella/Majestic-style lists,
* their Top-k heads,
* lists downloaded on a weekday vs a weekend,
* and the general population of com/net/org domains.

The study's conclusion (the adoption number) changes dramatically with
each choice — the paper's core warning about top-list-based research.

Run with::

    python examples/measurement_bias_study.py
"""

from __future__ import annotations

from repro import SimulationConfig, run_simulation
from repro.measurement import MeasurementHarness, TargetSet, build_comparison_table


def main() -> None:
    config = SimulationConfig.small(alexa_change_day=9)
    run = run_simulation(config)
    harness = MeasurementHarness(run.internet)

    print("== Adoption measured on different target sets ==")
    population = TargetSet.from_zonefile(run.zonefile)
    targets = [population]
    for name, archive in run.archives.items():
        targets.append(TargetSet.from_snapshot(archive[-1], name=f"{name} (full)"))
        targets.append(TargetSet.from_snapshot(archive[-1], top_n=config.top_k,
                                               name=f"{name} (top {config.top_k})"))
    print(f"  {'target':<24} {'IPv6':>7} {'CAA':>7} {'HTTP/2':>7} {'TLS':>7}")
    for target in targets:
        report = harness.measure(target)
        print(f"  {target.name:<24} {report.metric('ipv6'):6.1f}% "
              f"{report.metric('caa'):6.1f}% {report.metric('http2'):6.1f}% "
              f"{report.metric('tls'):6.1f}%")

    print("\n== Same list, different download day (weekday vs weekend) ==")
    weekend_day = next(d for d in range(config.n_days) if config.is_weekend(d))
    weekday_day = next(d for d in range(config.n_days)
                       if not config.is_weekend(d) and d > weekend_day)
    for name, archive in run.archives.items():
        weekend_report = harness.measure_dns(
            TargetSet.from_snapshot(archive[weekend_day], top_n=config.top_k))
        weekday_report = harness.measure_dns(
            TargetSet.from_snapshot(archive[weekday_day], top_n=config.top_k))
        print(f"  {name:<9} IPv6 weekend {weekend_report.ipv6_share:5.1f}%  "
              f"weekday {weekday_report.ipv6_share:5.1f}%  "
              f"CDN weekend {weekend_report.cdn_share:5.1f}%  "
              f"weekday {weekday_report.cdn_share:5.1f}%")

    print("\n== Table 5: significance-flagged comparison against com/net/org ==")
    table = build_comparison_table(run, harness=harness, sample_days=(-2, -1),
                                   top_k=config.top_k,
                                   metrics=("nxdomain", "ipv6", "caa", "cdn",
                                            "tls", "hsts", "http2"))
    print(table.render(precision=1))
    print("\nShare of characteristics each target significantly distorts:")
    for target, share in sorted(table.distortion_summary().items()):
        print(f"  {target:<14} {100 * share:5.0f}%")


if __name__ == "__main__":
    main()
