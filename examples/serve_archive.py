#!/usr/bin/env python3
"""Serving layer end to end: persist a corpus, index it, query it.

Simulates a small observation period, persists the three provider
archives into an :class:`~repro.service.store.ArchiveStore`, reloads
them warm-started, and answers the query API's endpoints offline through
:class:`~repro.service.api.QueryService` — the same code path
``repro-serve`` exposes over HTTP.

Run with::

    python examples/serve_archive.py

then serve the same store for real with::

    python -m repro.service.cli serve --store <printed store path>
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import SimulationConfig, run_simulation
from repro.service import ArchiveStore, DomainIndex, QueryService


def main() -> None:
    config = SimulationConfig.small(alexa_change_day=9)
    print(f"Simulating {config.n_days} days over {config.total_domains()} domains ...")
    run = run_simulation(config)

    store_dir = Path(tempfile.mkdtemp(prefix="repro-store-")) / "store"
    # The context manager flushes batched tails and rewrites the manifest
    # durably on every exit path — the idiom all store users should copy.
    with ArchiveStore.from_archives(store_dir, run.archives) as store:
        shard_bytes = sum(p.stat().st_size for p in store_dir.rglob("*.rls"))
        print("\n== Archive store ==")
        print(f"  {len(store)} snapshots, {len(store.providers())} providers, "
              f"{shard_bytes / 1024:.0f} KiB on disk at {store_dir}")

        print("\n== Warm-started reload ==")
        archives = store.load_archives()
        for name, archive in sorted(archives.items()):
            seeded = "warm" if "_analysis_cache" in archive.__dict__ else "cold"
            print(f"  {name:<9} {len(archive)} days, delta engine {seeded}")

        index = DomainIndex.from_archives(archives)
        probe = archives["alexa"][0].entries[0]
        print(f"\n== Rank history of {probe} (domain index) ==")
        for provider in index.providers():
            history = index.history(probe, provider)
            longevity = index.longevity(probe, provider)
            ranks = ", ".join(str(rank) for _, rank in history[:7])
            print(f"  {provider:<9} listed {longevity.days_listed} days, "
                  f"first ranks: {ranks}")

        print("\n== Query API (offline, same code path as repro-serve) ==")
        service = QueryService(store)
        for target in (f"/v1/domains/{probe}/history?top_k={config.top_k}",
                       "/v1/providers/alexa/stability?top_n=100",
                       "/v1/compare?providers=alexa,majestic,umbrella&top_n=100"):
            response = service.handle_request(target)
            repeat = service.handle_request(target)
            print(f"  GET {target}")
            print(f"      {response.status}, {len(response.body)} bytes, "
                  f"ETag {response.etag[:18]}..., "
                  f"repeat from LRU: {repeat.headers['X-Repro-Cache']}")
        payload = service.handle_request(
            "/v1/providers/alexa/stability?top_n=100").json()
        print(f"  alexa churn fraction (top 100): "
              f"{payload['churn_fraction']:.4f}")

        print("\n== Follower replica (tails the leader's mutation log) ==")
        from repro.service import Replica

        def fetch(since, limit):
            return service.handle_request(
                f"/v1/replication/log?since={since}&max={limit}").json()

        with ArchiveStore(store_dir.parent / "follower") as follower_store:
            replica = Replica(follower_store, fetch, sleep=lambda s: None)
            applied = replica.sync_to_leader()
            status = replica.status()
            print(f"  applied {applied} log entries, staleness "
                  f"{status['staleness']} (leader version "
                  f"{status['leader_version']})")
            follower = QueryService(follower_store, role="follower")
            follower.attach_replica(replica)
            target = "/v1/providers/alexa/stability?top_n=100"
            identical = (follower.handle_request(target).body
                         == service.handle_request(target).body)
            print(f"  follower payload byte-identical to leader: {identical}")
            print(f"  GET /v1/ready -> "
                  f"{follower.handle_request('/v1/ready').status}")


if __name__ == "__main__":
    main()
