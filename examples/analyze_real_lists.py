#!/usr/bin/env python3
"""Analysing real (downloaded) top-list snapshots with the same toolkit.

Every analysis in :mod:`repro.core` operates on ``ListSnapshot`` /
``ListArchive`` objects, so it runs unchanged on real list downloads
(Alexa/Umbrella ``top-1m.csv``, Majestic ``majestic_million.csv``).  This
example demonstrates the workflow end to end; because the environment is
offline, it first *writes* a small archive of CSV files (from the
simulator) and then analyses those files exactly as you would analyse real
downloads collected with ``curl`` + ``cron``.

Run with::

    python examples/analyze_real_lists.py [directory-with-csv-files]
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

from repro import SimulationConfig, run_simulation
from repro.core import (
    alias_count,
    intersection_matrix,
    mean_daily_change,
    structure_summary,
    summarise_archive,
)
from repro.listio import read_archive, write_archive
from repro.survey import match_keywords


def prepare_demo_directory(directory: Path) -> None:
    """Write a small simulated archive as provider-style CSV files."""
    run = run_simulation(SimulationConfig.small(n_days=7))
    for archive in run.archives.values():
        write_archive(archive, directory)
    print(f"  wrote {sum(1 for _ in directory.glob('*.csv'))} CSV snapshots to {directory}")


def analyse_directory(directory: Path) -> None:
    archives = {name: read_archive(directory, provider=name)
                for name in ("alexa", "umbrella", "majestic")}
    archives = {name: archive for name, archive in archives.items() if len(archive)}
    if not archives:
        print("  no recognisable list CSVs found "
              "(expected <provider>-<date>.csv files)")
        return

    print("\n== Archive summary ==")
    for name, archive in archives.items():
        print(f"  {name:<9} {len(archive)} daily snapshots, "
              f"{len(archive[0])} entries each, "
              f"mean daily change {mean_daily_change(archive):.0f}")

    print("\n== Structure of the latest snapshot ==")
    for name, archive in archives.items():
        summary = structure_summary(archive[-1])
        print(f"  {name:<9} {100 * summary.base_domain_share:5.1f}% base domains, "
              f"{summary.valid_tlds} valid TLDs, {summary.aliases} aliases, "
              f"{alias_count(archive[-1].entries)} DUPSLD")

    print("\n== Archive-level structure means (Table 2 style) ==")
    for name, archive in archives.items():
        aggregate = summarise_archive(archive, sample_every=max(1, len(archive) // 3))
        print(f"  {name:<9} TLD coverage {aggregate.tld_coverage}  "
              f"base domains {aggregate.base_domains}")

    if len(archives) >= 2:
        print("\n== Intersections of the latest snapshots ==")
        latest = {name: archive[-1] for name, archive in archives.items()}
        for lists, count in intersection_matrix(latest).items():
            print(f"  {' ∩ '.join(lists):<35} {count}")

    print("\n== Survey helper: does a paragraph reference a top list? ==")
    paragraph = ("We resolved all domains of the Alexa Top 1M and the Majestic "
                 "Million on 2018-04-30.")
    print(f"  keywords found in the example paragraph: {match_keywords(paragraph)}")


def main() -> None:
    if len(sys.argv) > 1:
        directory = Path(sys.argv[1])
        print(f"Analysing existing list archive in {directory} ...")
        analyse_directory(directory)
        return
    with tempfile.TemporaryDirectory() as tmp:
        directory = Path(tmp)
        print("No directory given; writing a demo archive first.")
        prepare_demo_directory(directory)
        analyse_directory(directory)


if __name__ == "__main__":
    main()
