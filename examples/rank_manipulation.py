#!/usr/bin/env python3
"""Rank manipulation: place a test domain in a DNS-query-based top list.

Reproduces the Section 7 experiments:

* the Umbrella rank-injection grid (RIPE-Atlas-style probes x query
  frequency, Figure 5),
* the TTL sweep showing caching/TTL barely matters,
* the "how many backlinks buy which Majestic rank" sweep,
* and the Alexa toolbar telemetry model (what the panel leaks).

Run with::

    python examples/rank_manipulation.py
"""

from __future__ import annotations

from repro import SimulationConfig, run_simulation
from repro.ranking import (
    AlexaToolbar,
    MajesticBacklinkExperiment,
    ProbeFleet,
    UmbrellaInjectionExperiment,
    UmbrellaTtlExperiment,
)


def main() -> None:
    config = SimulationConfig.small(alexa_change_day=None)
    run = run_simulation(config)
    day = config.n_days // 2

    print("== Umbrella rank injection (Figure 5) ==")
    fleet = ProbeFleet.paper_grid()
    print(f"  total measurement workload: {fleet.total_daily_queries():,.0f} queries/day "
          f"across {len(fleet)} measurements")
    experiment = UmbrellaInjectionExperiment(run.provider("umbrella"))
    probe_counts = (100, 1_000, 5_000, 10_000)
    frequencies = (1, 10, 50, 100)
    grid = experiment.run_grid(day, probe_counts=probe_counts, query_frequencies=frequencies)
    header = "".join(f"{f:>10}" for f in frequencies)
    row_label = "probes / q-day"
    print(f"  {row_label:<15}{header}")
    for probes in probe_counts:
        cells = ""
        for freq in frequencies:
            rank = grid[(probes, freq)].rank
            cells += f"{rank if rank is not None else '-':>10}"
        print(f"  {probes:<15}{cells}")
    effect = experiment.probes_vs_volume_effect(day)
    print(f"  10k probes @ 1 q/day  -> rank {effect['10k-probes-1q']}")
    print(f"  1k probes  @ 100 q/day -> rank {effect['1k-probes-100q']}  "
          "(10x the query volume, much worse rank)")
    print(f"  after stopping the probes -> rank {experiment.rank_after_stopping(day + 1)}")

    print("\n== TTL sweep (Section 7.2) ==")
    ttl_experiment = UmbrellaTtlExperiment(run.provider("umbrella"))
    for ttl, rank in ttl_experiment.run(day).items():
        print(f"  TTL {ttl:>6}s -> rank {rank}")
    print(f"  maximum rank spread across TTLs: {ttl_experiment.max_rank_spread(day)}")

    print("\n== Majestic backlink purchasing (Section 7.3) ==")
    backlinks = MajesticBacklinkExperiment(run.provider("majestic"))
    for count, rank in backlinks.sweep(day, [10, 100, 500, 2_000, 10_000]).items():
        print(f"  {count:>6} referring /24 subnets -> rank {rank}")
    wanted = config.top_k
    print(f"  reaching rank {wanted} requires about "
          f"{backlinks.backlinks_for_rank(day, wanted):,} referring subnets")

    print("\n== Alexa toolbar telemetry (Section 7.1) ==")
    toolbar = AlexaToolbar(demographics={"age": "30-39", "gender": "f",
                                         "install_location": "home"})
    toolbar.visit("https://www.google.com/search?q=embarrassing+medical+question")
    toolbar.visit("https://shop.example.com/basket?credit_card_last4=1234")
    toolbar.visit("https://broken.example.org/", loaded=False)
    print(f"  installation id (aid): {toolbar.aid}")
    for record in toolbar.telemetry:
        label = "anonymised" if record.anonymised else "FULL URL"
        print(f"  transmitted [{label}]: {record.url}")
    print(f"  pages that never loaded are not transmitted "
          f"({len(toolbar.telemetry)} of 3 visits reported)")


if __name__ == "__main__":
    main()
