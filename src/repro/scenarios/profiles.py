"""Named, frozen simulation profiles.

The paper's central finding is that the three top lists live in wildly
different stability regimes: Majestic churns ~1% of its entries per day,
pre-change Alexa a few percent, Umbrella tens of percent, and post-change
Alexa up to ~50%.  A :class:`SimulationProfile` freezes one such regime —
a complete :class:`~repro.population.config.SimulationConfig` plus any
scenario-level inputs (injected measurement traffic) — under a stable
name, so analyses, benchmarks, goldens and docs all refer to the same
reproducible dataset.

The built-in presets:

``paper_realistic``
    The paper's steady-state regime: ~1% mean daily churn across the
    three lists (large well-aggregated panels, smoothed resolver window,
    slow backlink drift, damped weekly modulation).
``high_churn_stress``
    A deliberately noisy regime (short windows, full sampling noise,
    fast population turnover) that stress-tests the delta engines.
``alexa_change_2018``
    The January-2018 event: Alexa switches from a 10-day to a 1-day
    window mid-period, splitting the archive into a calm and a volatile
    half.
``weekend_heavy``
    Exaggerated weekday/weekend modulation, for the Section 6.2 weekly
    pattern analyses.
``manipulated``
    The Section 7.2 rank-manipulation setting: measurement traffic is
    injected against the resolver-based ranking mid-period.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from types import MappingProxyType
from typing import Iterator, Mapping, Optional

from repro.population.config import SimulationConfig


@dataclass(frozen=True)
class InjectionSpec:
    """One injected-traffic measurement a scenario runs (Section 7.2).

    ``day`` is the simulation day on which the injection is active; the
    runner feeds the spec through
    :class:`~repro.ranking.manipulation.UmbrellaInjectionExperiment`, so
    scoring stays in one place.
    """

    fqdn: str
    n_clients: int
    queries_per_client: float
    day: int

    def __post_init__(self) -> None:
        if self.day < 0:
            raise ValueError("day must be non-negative")
        if self.n_clients < 0:
            raise ValueError("n_clients must be non-negative")
        if self.queries_per_client < 0:
            raise ValueError("queries_per_client must be non-negative")


@dataclass(frozen=True)
class SimulationProfile:
    """A named, frozen scenario: configuration plus scenario-level inputs."""

    name: str
    description: str
    config: SimulationConfig
    #: Head size used by the head-sensitive analyses; ``None`` falls back
    #: to ``config.top_k``.
    analysis_top_k: Optional[int] = None
    #: Measurement traffic injected against the resolver-based ranking.
    injections: tuple[InjectionSpec, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or any(c.isspace() for c in self.name):
            raise ValueError("profile name must be a non-empty token")
        if self.analysis_top_k is not None and self.analysis_top_k <= 0:
            raise ValueError("analysis_top_k must be positive")
        for spec in self.injections:
            if spec.day >= self.config.n_days:
                raise ValueError(
                    f"injection day {spec.day} outside the {self.config.n_days}-day period")

    @property
    def top_k(self) -> int:
        """Effective head size of the scenario's head-level analyses."""
        return self.analysis_top_k or self.config.top_k

    def with_config(self, **overrides: object) -> "SimulationProfile":
        """A copy of the profile with configuration fields overridden.

        The copy is given a derived name (``<name>+custom``) so it never
        collides with the frozen preset in per-profile caches.
        """
        return replace(self, name=f"{self.name}+custom",
                       config=replace(self.config, **overrides))  # type: ignore[arg-type]

    def at_scale(self, scale: object) -> "SimulationProfile":
        """A copy of the profile resized to a named scale preset.

        ``profile.at_scale("tiny")`` is how the CLI's ``--tiny``/``--scale``
        flags and the scale test matrix resize a scenario: the copy's name
        gains a ``+<scale>`` suffix and its configuration takes the
        preset's overrides.  Synthetic-only presets (``full_1m``) raise
        :class:`repro.scale.ScaleError` — see :mod:`repro.scale`.
        """
        from repro.scale import scaled_profile  # local: scale imports providers

        return scaled_profile(self, scale)  # type: ignore[arg-type]


#: Scale shared by all presets: small enough that every scenario simulates
#: in a few seconds, large enough that head/tail effects are visible.
_SCENARIO_SCALE: dict[str, object] = dict(
    n_domains=3_000, new_domains_per_day=20, n_days=21,
    list_size=800, top_k=100,
    alexa_panel_users=25_000, alexa_visits_per_user=25.0,
    umbrella_clients=20_000, umbrella_queries_per_client=40.0,
    majestic_linking_subnets=400_000,
    alexa_window_days=10, majestic_window_days=7,
)


def _scenario_config(**overrides: object) -> SimulationConfig:
    params = dict(_SCENARIO_SCALE)
    params.update(overrides)
    return SimulationConfig(**params)  # type: ignore[arg-type]


def _build_presets() -> dict[str, SimulationProfile]:
    presets = [
        SimulationProfile(
            name="paper_realistic",
            description=("Steady-state regime of the paper: ~1% mean daily churn "
                         "(damped sampling noise, smoothed resolver window, slow "
                         "population turnover)."),
            config=_scenario_config(
                new_domains_per_day=5,
                sampling_noise_scale=0.2,
                weekend_amplitude=0.5,
                umbrella_window_days=3,
            ),
        ),
        SimulationProfile(
            name="high_churn_stress",
            description=("Deliberately volatile regime (1-day windows, full "
                         "sampling noise, fast population turnover) that "
                         "stress-tests the incremental delta engines."),
            config=_scenario_config(
                n_days=14,
                new_domains_per_day=40,
                alexa_window_days=2,
                sampling_noise_scale=1.0,
            ),
        ),
        SimulationProfile(
            name="alexa_change_2018",
            description=("The January-2018 event: Alexa collapses its ranking "
                         "window from 10 days to 1 mid-period, turning a calm "
                         "list volatile overnight."),
            config=_scenario_config(alexa_change_day=10),
        ),
        SimulationProfile(
            name="weekend_heavy",
            description=("Exaggerated weekday/weekend modulation for the weekly "
                         "pattern analyses (leisure domains surge on weekends, "
                         "office platforms drain)."),
            config=_scenario_config(
                weekend_amplitude=2.5,
                sampling_noise_scale=0.3,
            ),
        ),
        SimulationProfile(
            name="manipulated",
            description=("Section 7.2 rank manipulation: measurement traffic is "
                         "injected against the resolver ranking mid-period, from "
                         "many-probes-few-queries to few-probes-many-queries."),
            config=_scenario_config(n_days=14),
            injections=(
                InjectionSpec(fqdn="rank-injection-a.example-measurement.org",
                              n_clients=10_000, queries_per_client=1.0, day=7),
                InjectionSpec(fqdn="rank-injection-b.example-measurement.org",
                              n_clients=1_000, queries_per_client=100.0, day=7),
                InjectionSpec(fqdn="rank-injection-c.example-measurement.org",
                              n_clients=100, queries_per_client=10.0, day=7),
            ),
        ),
    ]
    return {profile.name: profile for profile in presets}


#: The frozen built-in presets, by name.
PROFILES: Mapping[str, SimulationProfile] = MappingProxyType(_build_presets())


def profile_names() -> tuple[str, ...]:
    """Names of the built-in scenario profiles, in registry order."""
    return tuple(PROFILES)


def iter_profiles() -> Iterator[SimulationProfile]:
    """Iterate over the built-in scenario profiles."""
    return iter(PROFILES.values())


def get_profile(name: str) -> SimulationProfile:
    """Look up a built-in profile by name (with a helpful error)."""
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(PROFILES)
        raise KeyError(f"unknown scenario profile {name!r} (known: {known})") from None
