"""Scenario runner: one call from a profile to a serialisable report.

:class:`ScenarioRunner` composes a
:class:`~repro.scenarios.profiles.SimulationProfile` with the full
analysis battery — intersection, rank dynamics, weekly patterns,
stability, and the Section 9 recommendation checks — and condenses the
results into a :class:`ScenarioReport`: a plain-data, deterministically
serialisable summary of everything the scenario shows.

Reports are reproducible end to end: the same profile (and therefore the
same seed) produces byte-identical JSON, which is what the golden-run
regression harness (:mod:`repro.scenarios.golden`) asserts against the
fingerprints committed under ``tests/goldens/``.
"""

from __future__ import annotations

import dataclasses
import datetime as dt
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Union

from repro.core.intersection import intersection_over_time
from repro.core.rank_dynamics import (
    churn_by_rank,
    kendall_tau_series,
    rank_variation,
    strong_correlation_share,
)
from repro.core.recommendations import StudyPlan, StudyPurpose, evaluate_study_plan
from repro.core.stability import (
    cumulative_unique_domains,
    daily_changes,
    days_in_list,
    intersection_with_reference,
    mean_daily_change,
    new_domains_per_day,
)
from repro.core.weekly import sld_group_dynamics, weekday_weekend_ks
from repro.providers.base import ListArchive
from repro.providers.simulation import SimulationRun, run_profile
from repro.ranking.manipulation import UmbrellaInjectionExperiment
from repro.scenarios.profiles import SimulationProfile, get_profile

#: Bump when the report layout changes incompatibly (goldens must then be
#: regenerated intentionally via ``make goldens``).
SCHEMA_VERSION = 1

#: Seeded example domains whose rank variation every scenario tracks
#: (the spread of Table 4: a head domain, two mid-list, one boundary).
_PROBE_DOMAINS = ("google.com", "netflix.com", "office.com", "jetblue.com")

#: Decimal places kept for every float in a report: far beyond analysis
#: noise, short of platform-dependent last-ulp differences.
_FLOAT_DECIMALS = 10


def canonical_float(value: float) -> float:
    """Canonical float for serialisation (see :data:`_FLOAT_DECIMALS`).

    Shared by every layer that serialises analysis numbers (reports,
    goldens, the :mod:`repro.service` query API), so "the same number"
    is byte-identical everywhere it appears.
    """
    return round(float(value), _FLOAT_DECIMALS)


_f = canonical_float


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _config_dict(profile: SimulationProfile) -> dict[str, Any]:
    """The profile's configuration as JSON-clean data."""
    raw = dataclasses.asdict(profile.config)
    clean: dict[str, Any] = {}
    for key, value in raw.items():
        if isinstance(value, dt.date):
            clean[key] = value.isoformat()
        elif isinstance(value, tuple):
            clean[key] = list(value)
        else:
            clean[key] = value
    return clean


def _tau_summary(taus: list[float]) -> dict[str, Any]:
    if not taus:
        return {"n": 0, "mean": 0.0, "min": 0.0, "strong_share": 0.0}
    return {
        "n": len(taus),
        "mean": _f(sum(taus) / len(taus)),
        "min": _f(min(taus)),
        "strong_share": _f(strong_correlation_share(taus)),
    }


def _head_sample(archive: ListArchive, top_k: int, index: int) -> dict[str, Any]:
    snapshot = archive[index].top(top_k)
    return {
        "date": snapshot.date.isoformat(),
        "sha256": _sha256("\n".join(snapshot.entries)),
        "top10": list(snapshot.entries[:10]),
    }


@dataclass
class ScenarioReport:
    """Serialisable summary of one scenario's full analysis battery."""

    profile: str
    description: str
    config: dict[str, Any]
    top_k: int
    providers: dict[str, Any]
    intersection: dict[str, Any]
    recommendations: dict[str, Any]
    manipulation: dict[str, Any] = field(default_factory=dict)
    schema_version: int = SCHEMA_VERSION

    # -- serialisation ----------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-data representation (JSON-clean, reconstructible)."""
        return dataclasses.asdict(self)

    def to_json(self) -> str:
        """Canonical JSON: sorted keys, stable layout, byte-reproducible."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    def to_bytes(self) -> bytes:
        """The canonical JSON document as UTF-8 bytes.

        These are the exact bytes the archive store persists and the
        query API serves, so "stored report" and "freshly computed
        report" are indistinguishable on the wire.
        """
        return self.to_json().encode("utf-8")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioReport":
        return cls(**dict(data))

    @classmethod
    def from_json(cls, text: str) -> "ScenarioReport":
        return cls.from_dict(json.loads(text))

    # -- regression fingerprint -------------------------------------------
    def fingerprint(self) -> dict[str, Any]:
        """Compact deterministic digest used by the golden-run harness.

        Contains the scenario-level invariants a refactor must preserve:
        churn rates, tau/KS summaries, top-k head hashes, intersection
        means, recommendation severities and manipulation outcomes — not
        the full per-day series, so goldens stay small and reviewable.
        """
        providers: dict[str, Any] = {}
        for name, section in sorted(self.providers.items()):
            stability = section["stability"]
            dynamics = section["rank_dynamics"]
            weekly = section["weekly"]
            decay = stability["reference_decay"]
            providers[name] = {
                "churn_fraction": stability["churn_fraction"],
                "mean_daily_change": stability["mean_daily_change"],
                "cumulative_unique": stability["cumulative_unique"],
                "always_listed_share": stability["always_listed_share"],
                "reference_decay_final": (
                    decay[str(max(int(offset) for offset in decay))] if decay else None),
                "tau_day_to_day": dynamics["tau_day_to_day"],
                "churn_by_rank": dynamics["churn_by_rank"],
                "ks_mean": weekly["ks_mean"],
                "ks_disjoint_share": weekly["disjoint_share"],
                "sld_groups": sorted(weekly["sld_groups"]),
                "head_hashes": {position: sample["sha256"]
                                for position, sample in section["head_sample"].items()},
            }
        return {
            "schema_version": self.schema_version,
            "profile": self.profile,
            "config_digest": _sha256(json.dumps(self.config, sort_keys=True)),
            "top_k": self.top_k,
            "providers": providers,
            "intersection": {pair: stats["mean"]
                             for pair, stats in sorted(self.intersection["pairs"].items())},
            "recommendations": {
                name: {severity: section[severity]
                       for severity in ("critical", "warning", "info")}
                for name, section in sorted(self.recommendations.items())
            },
            "manipulation": {fqdn: outcome["rank"]
                             for fqdn, outcome in sorted(self.manipulation.items())},
        }


class ScenarioRunner:
    """Runs a scenario profile through the full analysis battery."""

    def __init__(self, profile: Union[str, SimulationProfile],
                 use_cache: bool = True) -> None:
        self.profile = get_profile(profile) if isinstance(profile, str) else profile
        self.use_cache = use_cache

    # -- pipeline ---------------------------------------------------------
    def simulate(self) -> SimulationRun:
        """The scenario's (per-profile cached) simulation run."""
        return run_profile(self.profile, use_cache=self.use_cache)

    def run(self) -> ScenarioReport:
        """Simulate the scenario and compute the full report."""
        profile = self.profile
        run = self.simulate()
        top_k = profile.top_k
        providers = {name: self._provider_section(archive, top_k)
                     for name, archive in run.archives.items()}
        return ScenarioReport(
            profile=profile.name,
            description=profile.description,
            config=_config_dict(profile),
            top_k=top_k,
            providers=providers,
            intersection=self._intersection_section(run, top_k),
            recommendations=self._recommendations_section(run),
            manipulation=self._manipulation_section(run),
        )

    # -- sections ---------------------------------------------------------
    def _provider_section(self, archive: ListArchive, top_k: int) -> dict[str, Any]:
        list_size = len(archive[0]) if len(archive) else 0
        changes = daily_changes(archive)
        mean_change = mean_daily_change(archive)
        new_counts = new_domains_per_day(archive)
        cumulative = cumulative_unique_domains(archive)
        counts = days_in_list(archive)
        always = (sum(1 for v in counts.values() if v == len(archive)) / len(counts)
                  if counts else 0.0)
        decay = intersection_with_reference(archive, reference_days=range(7))

        sizes = sorted({max(1, top_k // 2), top_k,
                        max(1, list_size // 2), max(1, list_size)})
        churn_sizes = churn_by_rank(archive, sizes)
        variation = rank_variation(archive, _PROBE_DOMAINS)

        ks = weekday_weekend_ks(archive, top_n=top_k)
        disjoint = (sum(1 for v in ks.values() if v >= 0.999) / len(ks)) if ks else 0.0
        groups = sld_group_dynamics(archive, top_n=top_k)

        middle = len(archive) // 2
        return {
            "days": len(archive),
            "list_size": list_size,
            "stability": {
                "mean_daily_change": _f(mean_change),
                "churn_fraction": _f(mean_change / max(1, list_size)),
                "daily_changes": {date.isoformat(): count
                                  for date, count in sorted(changes.items())},
                "new_per_day_mean": _f(sum(new_counts.values()) / max(1, len(new_counts))),
                "cumulative_unique": (list(cumulative.values())[-1] if cumulative else 0),
                "always_listed_share": _f(always),
                "reference_decay": {str(offset): _f(value)
                                    for offset, value in sorted(decay.items())},
            },
            "rank_dynamics": {
                "churn_by_rank": {str(size): _f(share)
                                  for size, share in sorted(churn_sizes.items())},
                "tau_day_to_day": _tau_summary(
                    kendall_tau_series(archive, top_n=top_k, mode="day-to-day")),
                "tau_vs_first": _tau_summary(
                    kendall_tau_series(archive, top_n=top_k, mode="vs-first")),
                "rank_variation": {
                    domain: {
                        "highest": var.highest,
                        "median": None if var.median is None else _f(var.median),
                        "lowest": var.lowest,
                        "days_listed": var.days_listed,
                    }
                    for domain, var in sorted(variation.items())
                },
            },
            "weekly": {
                "ks_domains": len(ks),
                "ks_mean": _f(sum(ks.values()) / len(ks)) if ks else 0.0,
                "disjoint_share": _f(disjoint),
                "sld_groups": {
                    group: {"weekday_mean": _f(dyn.weekday_mean),
                            "weekend_mean": _f(dyn.weekend_mean)}
                    for group, dyn in sorted(groups.items())
                },
            },
            "head_sample": {
                "first": _head_sample(archive, top_k, 0),
                "middle": _head_sample(archive, top_k, middle),
                "last": _head_sample(archive, top_k, len(archive) - 1),
            },
        }

    def _intersection_section(self, run: SimulationRun, top_k: int) -> dict[str, Any]:
        series = intersection_over_time(run.archives, top_n=top_k)
        per_pair: dict[str, list[int]] = {}
        for matrix in series.values():
            for pair, count in matrix.items():
                per_pair.setdefault("&".join(pair), []).append(count)
        return {
            "days": len(series),
            "top_n": top_k,
            "pairs": {
                pair: {"mean": _f(sum(counts) / len(counts)),
                       "min": min(counts), "max": max(counts)}
                for pair, counts in sorted(per_pair.items())
            },
        }

    def _recommendations_section(self, run: SimulationRun) -> dict[str, Any]:
        sections: dict[str, Any] = {}
        for name, archive in run.archives.items():
            plan = StudyPlan(purpose=StudyPurpose.PROTOCOL_ADOPTION,
                             lists_used=(name,),
                             measurement_days=len(archive),
                             documents_list_date=True,
                             documents_measurement_date=True,
                             publishes_list_copy=True)
            report = evaluate_study_plan(plan, archives={name: archive},
                                         weekend=run.config.weekend_days)
            sections[name] = {
                "critical": len(report.critical),
                "warning": len(report.warnings),
                "info": len(report.findings) - len(report.critical) - len(report.warnings),
                "passes": report.passes,
                "checks": sorted(f"{finding.severity.value}:{finding.check}"
                                 for finding in report.findings),
            }
        return sections

    def _manipulation_section(self, run: SimulationRun) -> dict[str, Any]:
        if not self.profile.injections:
            return {}
        outcomes: dict[str, Any] = {}
        for spec in self.profile.injections:
            experiment = UmbrellaInjectionExperiment(run.providers["umbrella"],
                                                     test_domain=spec.fqdn)
            cell = experiment.run_cell(spec.day, n_probes=spec.n_clients,
                                       queries_per_day=spec.queries_per_client)
            outcomes[spec.fqdn] = {
                "day": spec.day,
                "n_clients": spec.n_clients,
                "queries_per_client": _f(spec.queries_per_client),
                "rank": cell.rank,
            }
        return outcomes


def run_scenario(profile: Union[str, SimulationProfile],
                 use_cache: bool = True) -> ScenarioReport:
    """Convenience wrapper: build a runner for ``profile`` and run it."""
    return ScenarioRunner(profile, use_cache=use_cache).run()
