"""Golden-run regression harness for the scenario pipeline.

Each scenario's :meth:`~repro.scenarios.runner.ScenarioReport.fingerprint`
— churn rates, tau/KS summaries, intersection means, top-k head hashes —
is committed as a small JSON file (``tests/goldens/<profile>.json``).
The golden test re-runs every scenario and compares the live fingerprint
against the committed one, so a refactor of any cached fast path is
checked by *scenario-level parity*, not just unit tests: if the delta
engine, the PSL trie, or a provider drifts by a single entry anywhere in
the battery, a head hash or a churn rate moves and the diff names it.

Goldens are refreshed intentionally with ``make goldens`` (or
``python scripts/refresh_goldens.py``) when an algorithm change is
*supposed* to alter results; the diff in review then documents exactly
which scenario statistics moved.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, Union

from repro.scenarios.profiles import SimulationProfile, get_profile, profile_names
from repro.scenarios.runner import ScenarioReport, run_scenario


def golden_path(directory: Union[str, Path], profile_name: str) -> Path:
    """Path of the golden fingerprint file for ``profile_name``."""
    return Path(directory) / f"{profile_name}.json"


def fingerprint_to_json(fingerprint: Mapping[str, Any]) -> str:
    """Canonical JSON serialisation of a fingerprint (sorted, newline-terminated)."""
    return json.dumps(fingerprint, indent=2, sort_keys=True) + "\n"


def write_golden(report: ScenarioReport, directory: Union[str, Path]) -> Path:
    """Write ``report``'s fingerprint as the committed golden file."""
    path = golden_path(directory, report.profile)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(fingerprint_to_json(report.fingerprint()), encoding="utf-8")
    return path


def load_golden(directory: Union[str, Path], profile_name: str) -> dict[str, Any]:
    """Load the committed golden fingerprint for ``profile_name``."""
    return json.loads(golden_path(directory, profile_name).read_text(encoding="utf-8"))


def diff_fingerprints(live: Mapping[str, Any], golden: Mapping[str, Any],
                      _prefix: str = "") -> list[str]:
    """Human-readable differences between two fingerprints (empty = equal).

    Walks both structures and reports every leaf that was added, removed
    or changed, as ``path: golden -> live`` lines — so a failing golden
    test names the exact statistic that moved.
    """
    differences: list[str] = []
    keys = sorted(set(live) | set(golden))
    for key in keys:
        path = f"{_prefix}{key}"
        if key not in golden:
            differences.append(f"{path}: missing from golden (live={live[key]!r})")
        elif key not in live:
            differences.append(f"{path}: missing from live run (golden={golden[key]!r})")
        else:
            a, b = live[key], golden[key]
            if isinstance(a, Mapping) and isinstance(b, Mapping):
                differences.extend(diff_fingerprints(a, b, _prefix=f"{path}."))
            elif a != b:
                differences.append(f"{path}: {b!r} -> {a!r}")
    return differences


def check_against_golden(report: ScenarioReport,
                         directory: Union[str, Path]) -> list[str]:
    """Differences between ``report`` and its committed golden (empty = pass)."""
    path = golden_path(directory, report.profile)
    if not path.exists():
        return [f"no golden committed at {path} (run `make goldens` to create it)"]
    return diff_fingerprints(report.fingerprint(), load_golden(directory, report.profile))


def refresh_goldens(directory: Union[str, Path],
                    profiles: Optional[Iterable[Union[str, SimulationProfile]]] = None
                    ) -> list[Path]:
    """Re-run the scenarios and (re)write their golden fingerprints.

    This is the *intentional* update path: call it (via ``make goldens``)
    when an algorithm change is supposed to move scenario statistics, and
    commit the resulting diff.
    """
    selected = list(profiles) if profiles is not None else list(profile_names())
    paths: list[Path] = []
    for entry in selected:
        profile = get_profile(entry) if isinstance(entry, str) else entry
        report = run_scenario(profile)
        paths.append(write_golden(report, directory))
    return paths
