"""Scenario profiles and the golden-run regression harness.

This package turns the simulation into a catalogue of named, frozen
regimes and makes "run the whole paper on regime X" a single call:

* :mod:`repro.scenarios.profiles` — :class:`SimulationProfile` presets
  (``paper_realistic``, ``high_churn_stress``, ``alexa_change_2018``,
  ``weekend_heavy``, ``manipulated``).
* :mod:`repro.scenarios.runner` — :class:`ScenarioRunner` composes a
  profile with the full analysis battery (intersection, rank dynamics,
  weekly patterns, stability, recommendations) into a reproducible,
  serialisable :class:`ScenarioReport`.
* :mod:`repro.scenarios.golden` — compact deterministic fingerprints per
  scenario, committed under ``tests/goldens/`` and compared on every test
  run, so refactors of the cached fast paths are caught by scenario-level
  parity.

Typical use::

    from repro.scenarios import run_scenario

    report = run_scenario("paper_realistic")
    print(report.providers["alexa"]["stability"]["churn_fraction"])
"""

from repro.scenarios.golden import (
    check_against_golden,
    diff_fingerprints,
    golden_path,
    load_golden,
    refresh_goldens,
    write_golden,
)
from repro.scenarios.profiles import (
    PROFILES,
    InjectionSpec,
    SimulationProfile,
    get_profile,
    iter_profiles,
    profile_names,
)
from repro.scenarios.runner import (
    SCHEMA_VERSION,
    ScenarioReport,
    ScenarioRunner,
    canonical_float,
    run_scenario,
)

__all__ = [
    "InjectionSpec",
    "PROFILES",
    "SCHEMA_VERSION",
    "ScenarioReport",
    "ScenarioRunner",
    "SimulationProfile",
    "canonical_float",
    "check_against_golden",
    "diff_fingerprints",
    "get_profile",
    "golden_path",
    "iter_profiles",
    "load_golden",
    "profile_names",
    "refresh_goldens",
    "run_scenario",
    "write_golden",
]
