"""HTTP/2 adoption measurements over a target set (Section 8.3)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.population.internet import SyntheticInternet
from repro.web.http2 import Http2Prober


@dataclass(frozen=True)
class Http2Characteristics:
    """Aggregated HTTP/2 adoption of one target set."""

    target: str
    total: int
    http2_enabled: int

    @property
    def adoption_share(self) -> float:
        """Percentage of targets serving their landing page over HTTP/2."""
        return 100.0 * self.http2_enabled / self.total if self.total else 0.0


class Http2Measurement:
    """nghttp2-style HTTP/2 probing against the synthetic web hosts."""

    def __init__(self, internet: SyntheticInternet, prober: Optional[Http2Prober] = None) -> None:
        self.internet = internet
        self.prober = prober or Http2Prober(internet.hosts)

    def measure(self, names: Iterable[str], target: str = "targets") -> Http2Characteristics:
        """Probe every name; redirects are followed, data must flow over h2."""
        names = list(names)
        enabled = sum(1 for name in names if self.prober.probe(name).http2_enabled)
        return Http2Characteristics(target=target, total=len(names), http2_enabled=enabled)
