"""Measurement harness: target sets and the combined per-target measurement.

A :class:`TargetSet` is the unit the paper measures: a top list (or its
Top-1k head) downloaded on a given day, or the general population of
com/net/org domains.  The :class:`MeasurementHarness` runs all DNS, TLS
and HTTP/2 measurements of Section 8 against a target set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.measurement.dns_measure import DnsCharacteristics, DnsMeasurement
from repro.measurement.http2_measure import Http2Characteristics, Http2Measurement
from repro.measurement.tls_measure import TlsCharacteristics, TlsMeasurement
from repro.population.internet import SyntheticInternet
from repro.population.zonefile import ZoneFile
from repro.providers.base import ListSnapshot


@dataclass(frozen=True)
class TargetSet:
    """A named set of domains to measure."""

    name: str
    domains: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.domains:
            raise ValueError("target set must not be empty")

    def __len__(self) -> int:
        return len(self.domains)

    def __iter__(self):
        return iter(self.domains)

    @classmethod
    def from_snapshot(cls, snapshot: ListSnapshot, top_n: Optional[int] = None,
                      name: Optional[str] = None) -> "TargetSet":
        """Build a target set from a list snapshot (optionally its head)."""
        entries = snapshot.entries if top_n is None else snapshot.entries[:top_n]
        label = name or (f"{snapshot.provider}-{top_n}" if top_n else snapshot.provider)
        return cls(name=label, domains=tuple(entries))

    @classmethod
    def from_zonefile(cls, zonefile: ZoneFile, sample: Optional[int] = None,
                      seed: Optional[int] = 0, name: str = "com/net/org") -> "TargetSet":
        """Build the general-population target (optionally subsampled)."""
        names = zonefile.sample(sample, seed=seed) if sample else zonefile.names
        return cls(name=name, domains=tuple(names))

    @classmethod
    def from_names(cls, names: Iterable[str], name: str = "targets") -> "TargetSet":
        """Build a target set from an arbitrary collection of names."""
        return cls(name=name, domains=tuple(names))


@dataclass
class MeasurementReport:
    """All Section-8 measurements of one target set."""

    target: str
    dns: DnsCharacteristics
    tls: TlsCharacteristics
    http2: Http2Characteristics

    def metric(self, name: str) -> float:
        """Look up a metric by its Table 5 row name."""
        mapping = {
            "nxdomain": self.dns.nxdomain_share,
            "ipv6": self.dns.ipv6_share,
            "caa": self.dns.caa_share,
            "cname": self.dns.cname_share,
            "cdn": self.dns.cdn_share,
            "unique_as_v4": float(self.dns.unique_as_v4),
            "unique_as_v6": float(self.dns.unique_as_v6),
            "top5_as": self.dns.top_as_share(5),
            "tls": self.tls.tls_share,
            "hsts": self.tls.hsts_share_of_tls,
            "http2": self.http2.adoption_share,
        }
        if name not in mapping:
            raise KeyError(f"unknown metric {name!r}")
        return mapping[name]

    @classmethod
    def metric_names(cls) -> tuple[str, ...]:
        """All metric row names available on a report."""
        return ("nxdomain", "ipv6", "caa", "cname", "cdn", "unique_as_v4",
                "unique_as_v6", "top5_as", "tls", "hsts", "http2")


class MeasurementHarness:
    """Runs the Section-8 measurement suite against target sets."""

    def __init__(self, internet: SyntheticInternet) -> None:
        self.internet = internet
        self.dns = DnsMeasurement(internet)
        self.tls = TlsMeasurement(internet)
        self.http2 = Http2Measurement(internet)

    def measure_dns(self, target: TargetSet) -> DnsCharacteristics:
        """DNS-only measurement (cheaper; used for daily time series)."""
        return self.dns.measure(target.domains, target=target.name)

    def measure_tls(self, target: TargetSet) -> TlsCharacteristics:
        """TLS/HSTS-only measurement."""
        return self.tls.measure(target.domains, target=target.name)

    def measure_http2(self, target: TargetSet) -> Http2Characteristics:
        """HTTP/2-only measurement."""
        return self.http2.measure(target.domains, target=target.name)

    def measure(self, target: TargetSet) -> MeasurementReport:
        """Run every measurement against ``target``."""
        return MeasurementReport(
            target=target.name,
            dns=self.measure_dns(target),
            tls=self.measure_tls(target),
            http2=self.measure_http2(target),
        )
