"""Disjunct-domain classification services (Section 5.3, Table 3).

The paper classifies the domains unique to a single Top-1k list using the
MalwareBytes hpHosts blacklist (advertising/tracking services) and the
Lumen Privacy Monitor dataset (domains contacted by mobile apps).  The
synthetic equivalents are built from the population's category labels,
and a membership test against the other lists' Top-1M completes Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from repro.core.structure import normalise_to_base_domains
from repro.domain.psl import PublicSuffixList
from repro.population.internet import SyntheticInternet


class BlacklistService:
    """hpHosts-style blacklist of advertising/tracking base domains."""

    def __init__(self, blacklisted: Iterable[str]) -> None:
        self._blacklisted = {d.strip().lower().rstrip(".") for d in blacklisted}

    @classmethod
    def from_internet(cls, internet: SyntheticInternet) -> "BlacklistService":
        """Build the blacklist from the population's tracker-style domains."""
        return cls(d.name for d in internet.domains if d.blacklisted)

    def __len__(self) -> int:
        return len(self._blacklisted)

    def __contains__(self, domain: str) -> bool:
        return self.is_blacklisted(domain)

    def is_blacklisted(self, domain: str) -> bool:
        """Whether ``domain`` (or its base domain suffix) is blacklisted."""
        domain = domain.strip().lower().rstrip(".")
        if domain in self._blacklisted:
            return True
        parts = domain.split(".")
        return any(".".join(parts[i:]) in self._blacklisted for i in range(1, len(parts) - 1))

    def share(self, domains: Iterable[str]) -> float:
        """Percentage of ``domains`` that are blacklisted."""
        domains = list(domains)
        if not domains:
            return 0.0
        return 100.0 * sum(self.is_blacklisted(d) for d in domains) / len(domains)


class MobileTrafficMonitor:
    """Lumen-style record of domains contacted by mobile applications."""

    def __init__(self, mobile_domains: Iterable[str]) -> None:
        self._mobile = {d.strip().lower().rstrip(".") for d in mobile_domains}

    @classmethod
    def from_internet(cls, internet: SyntheticInternet) -> "MobileTrafficMonitor":
        """Build the monitor from the population's mobile-flagged domains."""
        return cls(d.name for d in internet.domains if d.mobile)

    def __len__(self) -> int:
        return len(self._mobile)

    def __contains__(self, domain: str) -> bool:
        return self.is_mobile(domain)

    def is_mobile(self, domain: str) -> bool:
        """Whether ``domain`` (or its base domain suffix) appears in mobile traffic."""
        domain = domain.strip().lower().rstrip(".")
        if domain in self._mobile:
            return True
        parts = domain.split(".")
        return any(".".join(parts[i:]) in self._mobile for i in range(1, len(parts) - 1))

    def share(self, domains: Iterable[str]) -> float:
        """Percentage of ``domains`` flagged as mobile traffic."""
        domains = list(domains)
        if not domains:
            return 0.0
        return 100.0 * sum(self.is_mobile(d) for d in domains) / len(domains)


@dataclass(frozen=True)
class DisjunctClassification:
    """One row of Table 3: how one list's unique domains classify."""

    provider: str
    disjunct_count: int
    blacklist_share: float
    mobile_share: float
    other_top1m_share: float


def classify_disjunct(disjunct: Mapping[str, Iterable[str]],
                      blacklist: BlacklistService,
                      mobile: MobileTrafficMonitor,
                      other_top1m: Mapping[str, Iterable[str]],
                      psl: Optional[PublicSuffixList] = None
                      ) -> dict[str, DisjunctClassification]:
    """Classify each list's disjunct domains (Table 3).

    ``other_top1m`` maps each provider to the union of the *other* lists'
    Top-1M domains over the same period, used for the "% Top 1M" column.
    """
    result: dict[str, DisjunctClassification] = {}
    for provider, domains in disjunct.items():
        domains = list(domains)
        others = normalise_to_base_domains(other_top1m.get(provider, ()), psl=psl)
        own_bases = normalise_to_base_domains(domains, psl=psl)
        in_others = sum(1 for d in own_bases if d in others)
        result[provider] = DisjunctClassification(
            provider=provider,
            disjunct_count=len(domains),
            blacklist_share=blacklist.share(domains),
            mobile_share=mobile.share(domains),
            other_top1m_share=(100.0 * in_others / len(own_bases)) if own_bases else 0.0,
        )
    return result
