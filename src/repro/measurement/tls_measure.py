"""TLS and HSTS measurements over a target set (Section 8.2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.population.internet import SyntheticInternet
from repro.web.tls import TlsProber


@dataclass(frozen=True)
class TlsCharacteristics:
    """Aggregated TLS/HSTS characteristics of one target set."""

    target: str
    total: int
    tls_capable: int
    hsts_enabled: int

    @property
    def tls_share(self) -> float:
        """Percentage of targets with a successful TLS handshake."""
        return 100.0 * self.tls_capable / self.total if self.total else 0.0

    @property
    def hsts_share_of_tls(self) -> float:
        """Percentage of TLS-capable targets serving a valid HSTS header.

        Matches Table 5, which reports HSTS "out of the TLS-enabled
        domains".
        """
        return 100.0 * self.hsts_enabled / self.tls_capable if self.tls_capable else 0.0


class TlsMeasurement:
    """zgrab-style TLS/HSTS measurement against the synthetic web hosts."""

    def __init__(self, internet: SyntheticInternet, prober: Optional[TlsProber] = None) -> None:
        self.internet = internet
        self.prober = prober or TlsProber(internet.hosts)

    def measure(self, names: Iterable[str], target: str = "targets") -> TlsCharacteristics:
        """Probe every name for TLS and (over TLS) HSTS support."""
        names = list(names)
        tls_capable = 0
        hsts_enabled = 0
        for name in names:
            result = self.prober.probe(name)
            if result.tls_capable:
                tls_capable += 1
                if result.hsts_enabled:
                    hsts_enabled += 1
        return TlsCharacteristics(target=target, total=len(names),
                                  tls_capable=tls_capable, hsts_enabled=hsts_enabled)
