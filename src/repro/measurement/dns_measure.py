"""DNS measurements over a target set (Section 8.1).

For every target name the measurement resolves A and AAAA records
(following CNAME chains of up to 10 links, like the paper), checks CAA on
the base domain, detects CDN use from the CNAME chain of the raw and
www-prefixed name, and maps resolved IPv4/IPv6 addresses to their origin
AS.  The aggregate result carries every DNS-derived number appearing in
Table 5 and Figures 6 and 7.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional

from repro.dns.records import RecordType
from repro.dns.resolver import CachingResolver, Resolution
from repro.domain.name import DomainName
from repro.domain.psl import PublicSuffixList
from repro.population.internet import SyntheticInternet
from repro.routing.asdb import AsDatabase, AsInfo
from repro.web.cdn import CdnDetector


@dataclass
class DnsCharacteristics:
    """Aggregated DNS characteristics of one target set on one day."""

    target: str
    total: int
    nxdomain: int = 0
    ipv6_enabled: int = 0
    caa_enabled: int = 0
    cname: int = 0
    cdn: int = 0
    cdn_providers: Counter = field(default_factory=Counter)
    as_counts_v4: Counter = field(default_factory=Counter)
    as_counts_v6: Counter = field(default_factory=Counter)

    def share(self, attribute: str) -> float:
        """Percentage share of ``attribute`` (e.g. ``"nxdomain"``) of the total."""
        if self.total == 0:
            return 0.0
        return 100.0 * getattr(self, attribute) / self.total

    @property
    def nxdomain_share(self) -> float:
        return self.share("nxdomain")

    @property
    def ipv6_share(self) -> float:
        return self.share("ipv6_enabled")

    @property
    def caa_share(self) -> float:
        return self.share("caa_enabled")

    @property
    def cname_share(self) -> float:
        return self.share("cname")

    @property
    def cdn_share(self) -> float:
        return self.share("cdn")

    @property
    def unique_as_v4(self) -> int:
        return len(self.as_counts_v4)

    @property
    def unique_as_v6(self) -> int:
        return len(self.as_counts_v6)

    def top_as_share(self, top_n: int = 5) -> float:
        """Share (percent of mapped names) of the ``top_n`` IPv4 origin ASes."""
        total = sum(self.as_counts_v4.values())
        if total == 0:
            return 0.0
        top = sum(count for _, count in self.as_counts_v4.most_common(top_n))
        return 100.0 * top / total

    def top_as(self, top_n: int = 5) -> Mapping[AsInfo, float]:
        """The ``top_n`` IPv4 origin ASes and their shares (fraction)."""
        total = sum(self.as_counts_v4.values())
        if total == 0:
            return {}
        return {info: count / total
                for info, count in self.as_counts_v4.most_common(top_n)}

    def top_cdns(self, top_n: int = 5) -> Mapping[str, float]:
        """The ``top_n`` CDN providers and their share of CDN-hosted names."""
        total = sum(self.cdn_providers.values())
        if total == 0:
            return {}
        return {provider: count / total
                for provider, count in self.cdn_providers.most_common(top_n)}


class DnsMeasurement:
    """Measure DNS characteristics of target names against a zone/AS database."""

    def __init__(self, internet: SyntheticInternet,
                 cdn_detector: Optional[CdnDetector] = None,
                 psl: Optional[PublicSuffixList] = None) -> None:
        self.internet = internet
        self.resolver = CachingResolver(internet.zone, enable_cache=False)
        self.asdb: AsDatabase = internet.asdb
        self.cdn_detector = cdn_detector or CdnDetector()
        self.psl = psl or internet.psl

    def _resolve(self, name: str, rtype: RecordType) -> Resolution:
        return self.resolver.resolve(name, rtype)

    def measure(self, names: Iterable[str], target: str = "targets") -> DnsCharacteristics:
        """Measure all ``names``; the name list defines the denominator."""
        names = list(names)
        result = DnsCharacteristics(target=target, total=len(names))
        for name in names:
            self._measure_one(name, result)
        return result

    def _measure_one(self, name: str, result: DnsCharacteristics) -> None:
        parsed = DomainName.parse(name, psl=self.psl)
        a_resolution = self._resolve(name, RecordType.A)
        if a_resolution.is_nxdomain:
            result.nxdomain += 1
            return
        aaaa_resolution = self._resolve(name, RecordType.AAAA)
        routed_v6 = [addr for addr in aaaa_resolution.addresses
                     if self.asdb.is_routed(addr)]
        if routed_v6:
            result.ipv6_enabled += 1
        # CAA is checked on the base domain, as CAs do (Section 8.1.1).
        caa_target = parsed.base or parsed.name
        caa_resolution = self._resolve(caa_target, RecordType.CAA)
        if any(r.rtype is RecordType.CAA and r.rdata.caa_tag in ("issue", "issuewild")
               for r in caa_resolution.records):
            result.caa_enabled += 1
        # CNAME / CDN detection on the raw and the www-prefixed name.
        chain = list(a_resolution.cname_chain)
        if parsed.depth == 0:
            www_resolution = self._resolve(f"www.{parsed.name}", RecordType.A)
            chain.extend(www_resolution.cname_chain)
        if chain:
            result.cname += 1
            provider = self.cdn_detector.detect_chain(chain)
            if provider is not None:
                result.cdn += 1
                result.cdn_providers[provider] += 1
        # Origin-AS mapping of the first resolved address of each family.
        if a_resolution.addresses:
            origin = self.asdb.origin(a_resolution.addresses[0])
            if origin is not None:
                result.as_counts_v4[origin] += 1
        if routed_v6:
            origin_v6 = self.asdb.origin(routed_v6[0])
            if origin_v6 is not None:
                result.as_counts_v6[origin_v6] += 1
