"""Reporting helpers: time series (Figures 6 and 8) and Table 5 assembly."""

from __future__ import annotations

import datetime as dt
from typing import Mapping, Optional, Sequence

from repro.core.bias import ComparisonTable
from repro.measurement.harness import MeasurementHarness, TargetSet
from repro.providers.base import ListArchive
from repro.providers.simulation import SimulationRun

#: Metrics that only need the (cheaper) DNS measurement.
_DNS_METRICS = ("nxdomain", "ipv6", "caa", "cname", "cdn", "unique_as_v4",
                "unique_as_v6", "top5_as")


def _metric_from_reports(harness: MeasurementHarness, target: TargetSet,
                         metric: str) -> float:
    if metric in _DNS_METRICS:
        dns = harness.measure_dns(target)
        dns_values = {
            "nxdomain": dns.nxdomain_share, "ipv6": dns.ipv6_share,
            "caa": dns.caa_share, "cname": dns.cname_share, "cdn": dns.cdn_share,
            "unique_as_v4": float(dns.unique_as_v4),
            "unique_as_v6": float(dns.unique_as_v6),
            "top5_as": dns.top_as_share(5),
        }
        return dns_values[metric]
    if metric in ("tls", "hsts"):
        tls = harness.measure_tls(target)
        return tls.tls_share if metric == "tls" else tls.hsts_share_of_tls
    if metric == "http2":
        return harness.measure_http2(target).adoption_share
    raise KeyError(f"unknown metric {metric!r}")


def daily_series(harness: MeasurementHarness,
                 archives: Mapping[str, ListArchive],
                 metric: str,
                 top_n: Optional[int] = None,
                 population: Optional[TargetSet] = None,
                 sample_every: int = 1) -> dict[str, dict[dt.date, float]]:
    """Measure ``metric`` for every archive day (Figures 6 and 8).

    Returns ``{target name: {date: value}}``; with ``top_n`` the Top-n
    head of each snapshot is measured instead of the full list.  The
    general population, when given, is measured once per ``sample_every``
    dates (the paper probes the com/net/org zone weekly).
    """
    if sample_every <= 0:
        raise ValueError("sample_every must be positive")
    series: dict[str, dict[dt.date, float]] = {}
    for name, archive in archives.items():
        label = f"{name}-{top_n}" if top_n else name
        series[label] = {}
        for index, snapshot in enumerate(archive.snapshots()):
            if index % sample_every:
                continue
            target = TargetSet.from_snapshot(snapshot, top_n=top_n, name=label)
            series[label][snapshot.date] = _metric_from_reports(harness, target, metric)
    if population is not None:
        dates = sorted({date for per in series.values() for date in per})
        value = _metric_from_reports(harness, population, metric)
        series[population.name] = {date: value for date in dates}
    return series


#: Table 5 metric rows and their human-readable names.
TABLE5_METRICS: tuple[tuple[str, str], ...] = (
    ("nxdomain", "NXDOMAIN"),
    ("ipv6", "IPv6-enabled"),
    ("caa", "CAA-enabled"),
    ("cname", "CNAMEs"),
    ("cdn", "CDNs (via CNAME)"),
    ("unique_as_v4", "Unique AS IPv4"),
    ("unique_as_v6", "Unique AS IPv6"),
    ("top5_as", "Top 5 AS (Share)"),
    ("tls", "TLS-capable"),
    ("hsts", "HSTS-enabled HTTPS"),
    ("http2", "HTTP2"),
)


def build_comparison_table(run: SimulationRun,
                           harness: Optional[MeasurementHarness] = None,
                           sample_days: Sequence[int] = (-5, -3, -1),
                           top_k: Optional[int] = None,
                           population_sample: Optional[int] = None,
                           metrics: Optional[Sequence[str]] = None) -> ComparisonTable:
    """Assemble the Table-5-style comparison for a simulation run.

    For each provider the full list ("1M" analogue) and its Top-k head
    ("1k" analogue) are measured on the snapshots selected by
    ``sample_days`` (negative indices count from the end of the archive);
    the com/net/org population is the comparison base.
    """
    harness = harness or MeasurementHarness(run.internet)
    top_k = top_k or run.config.top_k
    metrics = list(metrics) if metrics is not None else [m for m, _ in TABLE5_METRICS]
    population = TargetSet.from_zonefile(run.zonefile, sample=population_sample)

    # Collect per-day samples per target.
    samples: dict[str, dict[str, list[float]]] = {m: {} for m in metrics}
    for provider, archive in run.archives.items():
        snapshots = archive.snapshots()
        for scope, top_n in ((f"{provider}-1k", top_k), (f"{provider}-1M", None)):
            for day in sample_days:
                snapshot = snapshots[day]
                target = TargetSet.from_snapshot(snapshot, top_n=top_n, name=scope)
                report = harness.measure(target)
                for metric in metrics:
                    samples[metric].setdefault(scope, []).append(report.metric(metric))
    population_report = harness.measure(population)

    label_by_metric = dict(TABLE5_METRICS)
    table = ComparisonTable(base_target=population.name)
    for metric in metrics:
        values: dict[str, list[float]] = dict(samples[metric])
        values[population.name] = [population_report.metric(metric)]
        table.add_characteristic(label_by_metric.get(metric, metric), values)
    return table
