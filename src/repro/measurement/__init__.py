"""Measurement harness (Section 8).

Runs the paper's measurements — DNS record types (NXDOMAIN, IPv6, CAA),
hosting infrastructure (CNAME/CDN, origin AS), TLS/HSTS, and HTTP/2 —
against a *target set* (a top list, a Top-1k head, or the general
population) over the synthetic Internet, and assembles the Table-5-style
comparison of lists against the general population.
"""

from repro.measurement.classify import BlacklistService, MobileTrafficMonitor, classify_disjunct
from repro.measurement.dns_measure import DnsCharacteristics, DnsMeasurement
from repro.measurement.harness import MeasurementHarness, TargetSet
from repro.measurement.http2_measure import Http2Measurement
from repro.measurement.report import build_comparison_table, daily_series
from repro.measurement.tls_measure import TlsCharacteristics, TlsMeasurement

__all__ = [
    "BlacklistService",
    "DnsCharacteristics",
    "DnsMeasurement",
    "Http2Measurement",
    "MeasurementHarness",
    "MobileTrafficMonitor",
    "TargetSet",
    "TlsCharacteristics",
    "TlsMeasurement",
    "build_comparison_table",
    "classify_disjunct",
    "daily_series",
]
