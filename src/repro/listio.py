"""Reading and writing top lists in the providers' CSV formats.

Real top lists are distributed as ``top-1m.csv`` files with ``rank,domain``
rows (Majestic adds more columns; the domain is always the last relevant
column we use).  These helpers parse such files into
:class:`~repro.providers.base.ListSnapshot` objects and write archives
back out, so every analysis in :mod:`repro.core` runs unchanged on real
downloaded snapshots.
"""

from __future__ import annotations

import csv
import datetime as dt
import io
import zipfile
from pathlib import Path
from typing import Optional

from repro.providers.base import ListArchive, ListSnapshot


def parse_top_list_csv(text: str, provider: str, date: Optional[dt.date] = None,
                       domain_column: int = 1) -> ListSnapshot:
    """Parse CSV text with one ranked domain per row.

    ``domain_column`` selects the column holding the domain name (1 for
    the Alexa/Umbrella ``rank,domain`` format; Majestic's
    ``rank,tld,domain,...`` format uses 2).  Header rows (no digit in the
    first column) are skipped; duplicate domains keep their first rank.
    """
    entries: list[str] = []
    seen: set[str] = set()
    for row in csv.reader(io.StringIO(text)):
        if not row:
            continue
        first = row[0].strip()
        if not first or not first[0].isdigit():
            continue
        if domain_column >= len(row):
            continue
        domain = row[domain_column].strip().lower().rstrip(".")
        if not domain or domain in seen:
            continue
        seen.add(domain)
        entries.append(domain)
    return ListSnapshot(provider=provider, date=date or dt.date.today(),
                        entries=tuple(entries))


def read_top_list(path: str | Path, provider: str,
                  date: Optional[dt.date] = None,
                  domain_column: int = 1) -> ListSnapshot:
    """Read a top-list CSV file; ``.zip`` archives (Alexa-style) are supported."""
    path = Path(path)
    if path.suffix == ".zip":
        with zipfile.ZipFile(path) as archive:
            inner = archive.namelist()[0]
            text = archive.read(inner).decode("utf-8")
    else:
        text = path.read_text(encoding="utf-8")
    return parse_top_list_csv(text, provider=provider, date=date,
                              domain_column=domain_column)


def write_top_list(snapshot: ListSnapshot, path: str | Path) -> None:
    """Write a snapshot as a ``rank,domain`` CSV file."""
    snapshot.to_csv(path)


def write_archive(archive: ListArchive, directory: str | Path) -> None:
    """Write one CSV per snapshot into ``directory``."""
    archive.to_directory(directory)


def read_archive(directory: str | Path, provider: str) -> ListArchive:
    """Read an archive directory written by :func:`write_archive`."""
    return ListArchive.from_directory(directory, provider=provider)
