"""Reading and writing top lists in the providers' CSV formats.

Real top lists are distributed as ``top-1m.csv`` files with ``rank,domain``
rows (Majestic adds more columns; the domain is always the last relevant
column we use).  These helpers parse such files into
:class:`~repro.providers.base.ListSnapshot` objects and write archives
back out, so every analysis in :mod:`repro.core` runs unchanged on real
downloaded snapshots.

Parsing interns straight into the shared
:class:`~repro.interning.DomainInterner`: each row's domain becomes a
uint32 id the moment it is read, deduplication runs on an int set, and
the snapshot is built columnar via
:meth:`~repro.providers.base.ListSnapshot.from_ids` — the transient
per-row strings are garbage the moment the id is known, so parsing a
month of 1M-entry lists keeps one copy of each distinct name instead of
thirty.
"""

from __future__ import annotations

import csv
import datetime as dt
import gzip
import io
import re
import zipfile
from array import array
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Iterator, Optional

from repro.domain.name import InvalidDomainError
from repro.interning import default_interner
from repro.providers.base import ListArchive, ListSnapshot

_FILENAME_DATE = re.compile(r"(\d{4}-\d{2}-\d{2})")


def date_from_filename(path: str | Path) -> Optional[dt.date]:
    """First valid ISO date embedded in ``path``'s file name, if any.

    Real list downloads are commonly archived as
    ``alexa-2018-01-30.csv`` / ``top-1m_2018-01-30.csv.zip``; this is the
    deterministic date source :func:`read_top_list` falls back to.
    """
    for match in _FILENAME_DATE.finditer(Path(path).name):
        try:
            return dt.date.fromisoformat(match.group(1))
        except ValueError:
            continue
    return None


def iter_csv_domains(source: "str | Iterable[str]", domain_column: int = 1):
    """Yield the raw domain cell of every *ranked* row of a top-list CSV.

    The one row filter shared by :func:`parse_top_list_csv` and the
    serving layer's ``POST /v1/ingest`` CSV branch, so a file the
    offline parser accepts is never rejected over the wire (or vice
    versa): header rows (no digit in the first cell), rows without the
    domain column and rows whose cell is empty are skipped; everything
    else is yielded verbatim (stripped) for the caller to normalise or
    validate.

    ``source`` is whole CSV text or any iterable of lines (an open text
    file, a decompressing stream) — the streaming form never holds more
    than one row in memory, which is how a 1M-entry day flows from disk
    or socket into the interner without a day-sized string list.
    """
    if isinstance(source, str):
        source = io.StringIO(source)
    for row in csv.reader(source):
        if not row:
            continue
        first = row[0].strip()
        if not first or not first[0].isdigit():
            continue
        if domain_column >= len(row):
            continue
        domain = row[domain_column].strip()
        if domain:
            yield domain


class _CountingLines:
    """Pass-through line iterator counting non-blank lines as they flow.

    The streaming parser's error messages report how many CSV rows the
    input held; counting during the single pass keeps the "no valid row"
    diagnostics of the materialised parser without re-reading (or ever
    holding) the text.
    """

    __slots__ = ("_lines", "rows")

    def __init__(self, lines: Iterable[str]) -> None:
        self._lines = iter(lines)
        self.rows = 0

    def __iter__(self) -> Iterator[str]:
        return self

    def __next__(self) -> str:
        line = next(self._lines)
        if line.strip():
            self.rows += 1
        return line


def parse_top_list_rows(lines: Iterable[str], provider: str, date: dt.date,
                        domain_column: int = 1,
                        source: Optional[str] = None) -> ListSnapshot:
    """Parse an iterable of CSV *lines* into a snapshot, streaming.

    The one-pass core of :func:`parse_top_list_csv` and
    :func:`read_top_list`: each row's domain becomes an interned id the
    moment its line is read, so a 1M-entry day costs one id column plus
    one row in flight — never a day-sized list of Python strings.
    Semantics (row filter, lowercasing, duplicate-keeps-first-rank,
    empty-input errors) are identical to the text form.
    """
    if date is None:
        raise ValueError(
            "a snapshot date is required (parsing the same text on different "
            "days must not produce different snapshots); pass the list's "
            "download date explicitly")
    counted = _CountingLines(lines)
    intern = default_interner().intern
    entry_ids = array("I")
    seen: set[int] = set()
    for raw in iter_csv_domains(counted, domain_column):
        domain = raw.lower().rstrip(".")
        if not domain:
            continue
        domain_id = intern(domain)
        if domain_id in seen:
            continue
        seen.add(domain_id)
        entry_ids.append(domain_id)
    if not entry_ids:
        where = f"{source}: " if source else ""
        if counted.rows == 0:
            raise ValueError(
                f"{where}top list is empty (no CSV rows at all); an empty "
                "snapshot would silently zero every downstream metric")
        raise ValueError(
            f"{where}no valid ranked row among {counted.rows} CSV row(s): "
            f"every row was a header, lacked column {domain_column + 1}, or "
            f"had an empty domain cell (is domain_column={domain_column} "
            "right for this provider's format?)")
    return ListSnapshot.from_ids(provider=provider, date=date, ids=entry_ids)


def parse_top_list_csv(text: str, provider: str, date: dt.date,
                       domain_column: int = 1,
                       source: Optional[str] = None) -> ListSnapshot:
    """Parse CSV text with one ranked domain per row.

    ``date`` is required: every stability analysis keys on the snapshot
    date, and defaulting to "today" would silently attach a different
    date to the same text when re-parsed across midnight.

    ``domain_column`` selects the column holding the domain name (1 for
    the Alexa/Umbrella ``rank,domain`` format; Majestic's
    ``rank,tld,domain,...`` format uses 2).  Header rows (no digit in the
    first column) are skipped; duplicate domains keep their first rank.

    Empty text, and text whose every row is filtered out, raise
    ``ValueError`` — an empty snapshot would silently zero every
    stability metric downstream.  ``source`` (e.g. the file path) names
    the offending input in that error.
    """
    return parse_top_list_rows(io.StringIO(text), provider=provider,
                               date=date, domain_column=domain_column,
                               source=source)


def _zip_csv_member(archive: zipfile.ZipFile, path: Path) -> str:
    """The member of an Alexa-style zip holding the list CSV.

    Real ``top-1m.csv.zip`` downloads can carry directory entries or
    metadata files before the payload, so "first member" is not reliable:
    prefer the first ``*.csv`` member, fall back to the first regular
    file, and reject archives with neither.
    """
    names = archive.namelist()
    files = [name for name in names if not name.endswith("/")]
    for name in files:
        if name.lower().endswith(".csv"):
            return name
    if files:
        return files[0]
    raise ValueError(f"{path.name!r} contains no files")


def read_top_list(path: str | Path, provider: str,
                  date: Optional[dt.date] = None,
                  domain_column: int = 1) -> ListSnapshot:
    """Read a top-list CSV file; ``.zip`` (Alexa-style) and ``.csv.gz``
    (Umbrella/Majestic mirror-style) archives are supported.

    The snapshot date is taken from ``date`` or, failing that, derived
    from an ISO date embedded in the file name
    (``alexa-2018-01-30.csv``).  A file with neither is rejected rather
    than silently stamped with the day the parser happened to run.
    """
    path = Path(path)
    if date is None:
        date = date_from_filename(path)
        if date is None:
            raise ValueError(
                f"cannot determine the snapshot date of {path.name!r}: pass "
                "date= or embed an ISO date in the file name "
                "(e.g. alexa-2018-01-30.csv)")
    # Stream lines straight off the (decompressing) file object: a
    # 1M-entry download is parsed row by row into the id column without
    # the whole text — or any per-day string list — ever existing.
    with _open_list_lines(path) as lines:
        return parse_top_list_rows(
            lines, provider=provider, date=date,
            domain_column=domain_column, source=str(path))


@contextmanager
def _open_list_lines(path: Path) -> Iterator[Iterable[str]]:
    """Open a list file as a lazily-decoded line stream.

    ``.zip`` members and ``.csv.gz`` bodies decompress incrementally as
    lines are pulled — the archive is never inflated whole.
    """
    if path.suffix == ".zip":
        with zipfile.ZipFile(path) as archive:
            inner = _zip_csv_member(archive, path)
            with archive.open(inner) as member:
                yield io.TextIOWrapper(member, encoding="utf-8", newline="")
    elif path.suffix == ".gz":
        with gzip.open(path, "rt", encoding="utf-8", newline="") as lines:
            yield lines
    else:
        with path.open("r", encoding="utf-8", newline="") as lines:
            yield lines


def stream_wire_top_list(path: str | Path, provider: str,
                         date: Optional[dt.date] = None,
                         domain_column: int = 1
                         ) -> tuple[ListSnapshot, int]:
    """Read a top-list file through *wire* validation, streaming.

    The offline twin of ``POST /v1/ingest``'s CSV branch (and the
    ``repro-serve ingest`` engine): rows flow file → row filter →
    :func:`~repro.providers.base.clean_wire_entry` → interner without a
    day-sized string list, junk rows are skipped and counted, and
    nothing invalid ever occupies id space.  Returns
    ``(snapshot, skipped_rows)``.  Date handling and the empty-input
    errors match :func:`read_top_list`.
    """
    path = Path(path)
    if date is None:
        date = date_from_filename(path)
        if date is None:
            raise ValueError(
                f"cannot determine the snapshot date of {path.name!r}: pass "
                "date= or embed an ISO date in the file name "
                "(e.g. alexa-2018-01-30.csv)")
    with _open_list_lines(path) as lines:
        counted = _CountingLines(lines)
        try:
            return ListSnapshot.from_wire_rows(
                provider, date, iter_csv_domains(counted, domain_column))
        except InvalidDomainError:
            if counted.rows == 0:
                raise ValueError(
                    f"{path}: top list is empty (no CSV rows at all); an "
                    "empty snapshot would silently zero every downstream "
                    "metric") from None
            raise ValueError(
                f"{path}: no valid ranked row among {counted.rows} CSV "
                f"row(s): every row was a header, lacked column "
                f"{domain_column + 1}, failed wire validation, or had an "
                f"empty domain cell (is domain_column={domain_column} "
                "right for this provider's format?)") from None


def write_top_list(snapshot: ListSnapshot, path: str | Path) -> None:
    """Write a snapshot as a ``rank,domain`` CSV file."""
    snapshot.to_csv(path)


def write_archive(archive: ListArchive, directory: str | Path) -> None:
    """Write one CSV per snapshot into ``directory``."""
    archive.to_directory(directory)


def read_archive(directory: str | Path, provider: str) -> ListArchive:
    """Read an archive directory written by :func:`write_archive`."""
    return ListArchive.from_directory(directory, provider=provider)
