"""Kendall's tau rank correlation coefficient.

Section 6.3 of the paper uses Kendall's tau [Kendall 1938] to measure the
similarity in the *order* of top lists between days.  This module
implements tau-a and tau-b from scratch with an O(n log n) inversion
counter on an iterative Fenwick (binary indexed) tree, plus a convenience
wrapper that compares two ranked lists of items restricted to their
common elements (how the paper compares two days of a Top 1k list).  The
wrapper takes a rank-coordinate fast path: positions in a ranked list are
already distinct integers sorted on the first list, so the tie machinery
and the sort are skipped entirely.

The items may be any hashables; the columnar pipeline passes the
snapshots' interned-id columns (``ListSnapshot.entry_ids()``), which is
the default fast lane — the rank dictionaries then hash dense uint32
ids instead of domain strings, and the result is bit-identical because
ids and entries are bijective.
"""

from __future__ import annotations

from typing import Hashable, Sequence


def _count_inversions(values: Sequence[float], distinct: bool = False) -> int:
    """Number of inversions (pairs ``i < j`` with ``values[i] > values[j]``).

    Iterative Fenwick-tree counter: coordinate-compress the values, then
    for each element add the count of previously seen elements that are
    strictly greater (``seen - prefix_count(<= value)``).  Callers that
    know the values are distinct (the rank-coordinate fast path) pass
    ``distinct=True`` to skip the dedup pass.
    """
    n = len(values)
    if n < 2:
        return 0
    unique = values if distinct else set(values)
    order = {value: index for index, value in enumerate(sorted(unique), start=1)}
    size = len(order)
    tree = [0] * (size + 1)
    inversions = 0
    for seen, value in enumerate(values):
        index = order[value]
        not_greater = 0
        while index:
            not_greater += tree[index]
            index -= index & -index
        inversions += seen - not_greater
        index = order[value]
        while index <= size:
            tree[index] += 1
            index += index & -index
    return inversions


def _tie_pairs(values: Sequence[float]) -> int:
    """Number of pairs tied on ``values``."""
    counts: dict[float, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    return sum(c * (c - 1) // 2 for c in counts.values())


def kendall_tau(x: Sequence[float], y: Sequence[float], variant: str = "b") -> float:
    """Compute Kendall's tau between two equal-length numeric sequences.

    Parameters
    ----------
    x, y:
        Paired observations.
    variant:
        ``"a"`` for tau-a (no tie correction) or ``"b"`` for tau-b
        (corrects for ties, the common default).

    Returns
    -------
    float
        Correlation in [-1, 1].  Perfectly concordant orderings give 1.0,
        perfectly reversed orderings -1.0.

    Raises
    ------
    ValueError
        If the sequences differ in length, contain fewer than two
        observations, or ``variant`` is unknown.
    """
    if len(x) != len(y):
        raise ValueError(f"length mismatch: {len(x)} != {len(y)}")
    n = len(x)
    if n < 2:
        raise ValueError("need at least two observations")
    if variant not in ("a", "b"):
        raise ValueError(f"unknown variant {variant!r}")

    # Sort by x (breaking ties by y), then count inversions in y:
    # each inversion is a discordant pair.
    paired = sorted(zip(x, y), key=lambda p: (p[0], p[1]))
    discordant = _count_inversions([p[1] for p in paired])

    total_pairs = n * (n - 1) // 2
    ties_x = _tie_pairs(x)
    ties_y = _tie_pairs(y)
    ties_xy = _tie_pairs([(a, b) for a, b in zip(x, y)])  # type: ignore[arg-type]

    # Pairs tied in x are neither concordant nor discordant; the inversion
    # count above never counts a pair tied in x as discordant because ties
    # in x are sorted by ascending y.
    concordant = total_pairs - discordant - ties_x - ties_y + ties_xy

    if variant == "a":
        return (concordant - discordant) / total_pairs

    denom_x = total_pairs - ties_x
    denom_y = total_pairs - ties_y
    if denom_x == 0 or denom_y == 0:
        return 0.0
    return (concordant - discordant) / (denom_x * denom_y) ** 0.5


def kendall_tau_ranked_lists(
    list_a: Sequence[Hashable],
    list_b: Sequence[Hashable],
    restrict_to_common: bool = True,
) -> float:
    """Kendall's tau between two ranked lists of items (e.g. domains).

    The paper compares, e.g., the Alexa Top 1k of two days.  The lists may
    contain different items; by default the comparison is restricted to
    the items present in both lists (their relative order is compared).

    Returns 1.0 for identical orderings.  Raises ``ValueError`` when fewer
    than two common items exist.
    """
    rank_b = {item: idx for idx, item in enumerate(list_b)}
    if (restrict_to_common and len(rank_b) == len(list_b)
            and len(set(list_a)) == len(list_a)):
        # Rank-coordinate fast path: the common items are enumerated in
        # ``list_a`` order, so the x ranks are strictly increasing and the
        # y ranks are distinct integers — no ties, no sort, and no
        # ``rank_a`` dictionary needed.  The discordant pairs are exactly
        # the inversions of the y sequence, and tau-b's denominator
        # collapses to the total pair count.  Lists with duplicate items
        # fall through to the general path, whose tie handling reproduces
        # their (degenerate) tau.
        y = [rank_b[item] for item in list_a if item in rank_b]
        if len(y) < 2:
            raise ValueError("need at least two common items to correlate")
        total_pairs = len(y) * (len(y) - 1) // 2
        discordant = _count_inversions(y, distinct=True)
        concordant = total_pairs - discordant
        return (concordant - discordant) / total_pairs
    if restrict_to_common:
        common = [item for item in list_a if item in rank_b]
    else:
        common = list(dict.fromkeys(list(list_a) + list(list_b)))
    if len(common) < 2:
        raise ValueError("need at least two common items to correlate")
    rank_a = {item: idx for idx, item in enumerate(list_a)}
    missing_rank = max(len(list_a), len(list_b))
    x = [rank_a.get(item, missing_rank) for item in common]
    y = [rank_b.get(item, missing_rank) for item in common]
    return kendall_tau(x, y, variant="b")
