"""Two-sample Kolmogorov-Smirnov distance.

Section 6.2 of the paper computes, per domain, the KS distance between the
distribution of its weekday ranks and its weekend ranks; a distance of 1
means the two distributions share no support (the domain's weekend ranks
never overlap its weekday ranks).
"""

from __future__ import annotations

from typing import Sequence


def ks_distance(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """Return the two-sample KS statistic ``sup_x |F_a(x) - F_b(x)|``.

    Both samples must be non-empty.  The statistic lies in [0, 1]; it is 0
    for identical empirical distributions and 1 for distributions with
    disjoint support.
    """
    if not sample_a or not sample_b:
        raise ValueError("both samples must be non-empty")
    a = sorted(sample_a)
    b = sorted(sample_b)
    n_a = len(a)
    n_b = len(b)
    i = j = 0
    cdf_a = cdf_b = 0.0
    distance = 0.0
    while i < n_a and j < n_b:
        value = min(a[i], b[j])
        while i < n_a and a[i] == value:
            i += 1
        while j < n_b and b[j] == value:
            j += 1
        cdf_a = i / n_a
        cdf_b = j / n_b
        distance = max(distance, abs(cdf_a - cdf_b))
    # Remaining tail of the longer sample can only increase one CDF to 1.0;
    # the supremum there is |1 - cdf_other| which is already covered when
    # the shorter sample is exhausted.
    distance = max(distance, abs(1.0 - cdf_b) if i >= n_a else 0.0)
    distance = max(distance, abs(1.0 - cdf_a) if j >= n_b else 0.0)
    return min(1.0, distance)
