"""Statistics substrate used throughout the analysis library.

Implements the statistical tools the paper relies on: Kendall's tau rank
correlation (Section 6.3), the two-sample Kolmogorov-Smirnov distance
(Section 6.2), empirical CDFs, Zipf/power-law sampling (the popularity
model motivated in Section 6.1), and the significance-deviation marking
rule used in Table 5.
"""

from repro.stats.distributions import (
    EmpiricalCDF,
    ZipfSampler,
    empirical_cdf_points,
    zipf_weights,
)
from repro.stats.kendall import kendall_tau, kendall_tau_ranked_lists
from repro.stats.ks import ks_distance
from repro.stats.summary import (
    DeviationFlag,
    MeanStd,
    classify_deviation,
    mean_std,
    median,
    share,
)

__all__ = [
    "DeviationFlag",
    "EmpiricalCDF",
    "MeanStd",
    "ZipfSampler",
    "classify_deviation",
    "empirical_cdf_points",
    "kendall_tau",
    "kendall_tau_ranked_lists",
    "ks_distance",
    "mean_std",
    "median",
    "share",
    "zipf_weights",
]
