"""Summary statistics and the paper's significance-deviation marking.

Table 5 reports each measured characteristic as ``mean ± std`` and marks
each cell as significantly exceeding (▲), significantly falling behind
(▼), or not significantly deviating from (■) its base value.  The paper's
rule: a deviation is significant when it exceeds 50% of the base value;
for base values over 40% the threshold is 25% and 5 sigma.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class MeanStd:
    """Mean and (population) standard deviation of a sample."""

    mean: float
    std: float
    n: int

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return f"{self.mean:.2f} ± {self.std:.2f}"


def mean_std(sample: Iterable[float]) -> MeanStd:
    """Compute mean and population standard deviation of ``sample``."""
    values = [float(v) for v in sample]
    if not values:
        raise ValueError("empty sample")
    n = len(values)
    mean = sum(values) / n
    variance = sum((v - mean) ** 2 for v in values) / n
    return MeanStd(mean=mean, std=math.sqrt(variance), n=n)


class DeviationFlag(enum.Enum):
    """Significance marker used in Table 5."""

    EXCEEDS = "▲"
    FALLS_BEHIND = "▼"
    NOT_SIGNIFICANT = "■"

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return self.value


def classify_deviation(
    value: float,
    base: float,
    value_std: float = 0.0,
    high_base_threshold: float = 40.0,
    relative_margin: float = 0.50,
    high_base_margin: float = 0.25,
    sigma_factor: float = 5.0,
) -> DeviationFlag:
    """Classify ``value`` against ``base`` per the paper's Table 5 rule.

    Parameters
    ----------
    value, base:
        The measured characteristic for the top list and for the baseline
        (e.g. the general population), in the same unit (typically percent).
    value_std:
        Standard deviation of the measured value; only used for the
        high-base 5-sigma criterion.
    high_base_threshold:
        Base values above this (percent) switch to the stricter rule.
    relative_margin:
        Relative deviation that counts as significant for low bases (50%).
    high_base_margin:
        Relative deviation for high bases (25%).
    sigma_factor:
        Number of standard deviations the difference must also exceed for
        high bases.
    """
    if base < 0:
        raise ValueError("base must be non-negative")
    diff = value - base
    if base > high_base_threshold:
        margin = high_base_margin * base
        sigma_margin = sigma_factor * value_std
        threshold = max(margin, sigma_margin)
    else:
        threshold = relative_margin * base
    if base == 0:
        # Any non-zero value deviates from a zero base.
        threshold = 0.0
    if diff > threshold and not math.isclose(diff, threshold):
        return DeviationFlag.EXCEEDS
    if diff < -threshold and not math.isclose(diff, -threshold):
        return DeviationFlag.FALLS_BEHIND
    return DeviationFlag.NOT_SIGNIFICANT


def share(predicate_true: int, total: int) -> float:
    """Return a percentage share, 0.0 when ``total`` is zero."""
    if total <= 0:
        return 0.0
    return 100.0 * predicate_true / total


def median(sample: Sequence[float]) -> float:
    """Return the median of a non-empty sample."""
    values = sorted(float(v) for v in sample)
    if not values:
        raise ValueError("empty sample")
    n = len(values)
    mid = n // 2
    if n % 2 == 1:
        return values[mid]
    return 0.5 * (values[mid - 1] + values[mid])
