"""Distributions: Zipf/power-law popularity weights and empirical CDFs.

The paper observes (Section 6.1) that accessed domains follow a power-law
distribution, which is why ranks in the long tail are based on small,
noisy counts.  The synthetic population uses the Zipf weights implemented
here; the analysis figures use the empirical CDF helper.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


def zipf_weights(n: int, exponent: float = 1.0) -> np.ndarray:
    """Return normalised Zipf weights ``w_k ∝ 1 / k^exponent`` for ranks 1..n."""
    if n <= 0:
        raise ValueError("n must be positive")
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = ranks ** (-exponent)
    return weights / weights.sum()


class ZipfSampler:
    """Sampler over ``n`` items with Zipf-distributed probabilities.

    Used by the traffic simulation to draw which domain a panel user
    visits or a DNS client resolves.
    """

    def __init__(self, n: int, exponent: float = 1.0, rng: np.random.Generator | None = None) -> None:
        self._weights = zipf_weights(n, exponent)
        self._cumulative = np.cumsum(self._weights)
        self._rng = rng if rng is not None else np.random.default_rng()
        self.n = n
        self.exponent = exponent

    def sample(self, size: int) -> np.ndarray:
        """Draw ``size`` item indices (0-based) i.i.d. from the Zipf law."""
        if size < 0:
            raise ValueError("size must be non-negative")
        uniform = self._rng.random(size)
        return np.searchsorted(self._cumulative, uniform, side="left")

    def probability(self, index: int) -> float:
        """Probability of drawing item ``index`` (0-based rank)."""
        if not 0 <= index < self.n:
            raise IndexError(index)
        return float(self._weights[index])


@dataclass(frozen=True)
class EmpiricalCDF:
    """Empirical cumulative distribution function over a numeric sample."""

    values: tuple[float, ...]

    @classmethod
    def from_sample(cls, sample: Iterable[float]) -> "EmpiricalCDF":
        values = tuple(sorted(float(v) for v in sample))
        if not values:
            raise ValueError("empty sample")
        return cls(values=values)

    def __call__(self, x: float) -> float:
        """Return P(X <= x)."""
        return bisect.bisect_right(self.values, x) / len(self.values)

    def quantile(self, q: float) -> float:
        """Return the smallest value v with CDF(v) >= q, for q in (0, 1]."""
        if not 0 < q <= 1:
            raise ValueError("q must be in (0, 1]")
        idx = max(0, int(np.ceil(q * len(self.values))) - 1)
        return self.values[idx]

    def points(self) -> list[tuple[float, float]]:
        """Return (value, cumulative probability) pairs for plotting."""
        n = len(self.values)
        return [(v, (i + 1) / n) for i, v in enumerate(self.values)]


def empirical_cdf_points(sample: Sequence[float]) -> list[tuple[float, float]]:
    """Convenience wrapper returning CDF plot points for ``sample``."""
    return EmpiricalCDF.from_sample(sample).points()
