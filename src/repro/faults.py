"""Deterministic fault injection for the serving substrate.

Disks tear writes, fsyncs fail, processes die between a data write and
its manifest rename, and networks drop responses mid-body.  The store
and API layers are built to survive all of that — but a robustness claim
is only worth what its tests can *reproduce*, and "kill -9 at the right
microsecond" is not a reproducible test.  This module turns every
failure mode into a named **injection point** driven by a seeded
:class:`FaultPlan`, so a chaos schedule is an ordinary value: the same
seed fires the same faults at the same calls, every run, on every
machine.

Design rules:

* **One attribute check when disabled.**  Production call sites guard
  every injection with ``if faults.ACTIVE is not None`` — a module
  attribute load and an identity test.  With no plan installed the hot
  path pays nothing else (the ``--replication`` benchmark asserts the
  cached-read overhead stays under 2%).
* **Namespaced determinism.**  Each injection point draws from its own
  child RNG, seeded as ``f"{seed}:{point}"`` — the same discipline as a
  simulation config's per-subsystem ``child_rng``: adding a rule for one
  point never shifts the random stream of another.
* **Crashes are not errors.**  :class:`InjectedCrash` derives from
  ``BaseException`` and means *the process died here*: code that would
  normally roll partial work back must re-raise it untouched (the store
  append does exactly that), leaving the torn on-disk state for the
  next open's recovery path — which is what a real crash leaves.

Injection points currently threaded through the codebase:

==============================  ============================================
``store.table.write``           domain-table tail append (torn/error/crash)
``store.shard.write``           shard record append (torn/error/crash)
``store.table.fsync``           table tail fsync
``store.shard.fsync``           shard tail fsync
``store.dirty.fsync``           batched-append catch-up fsync
``store.manifest.write``        manifest tmp-file write (torn tmp is safe)
``store.manifest.fsync``        manifest tmp fsync
``store.manifest.rename.before``  just before the atomic manifest rename
``store.manifest.rename.after``   just after it (data durable, cleanup not)
``store.report.write``          report tmp-file write (torn tmp is safe)
``store.dir.fsync``             directory-entry fsync
``api.request``                 request admission (slow → stall;
                                error → 503 degraded answer)
``api.request.read``            POST body read (drop/torn → client vanished)
``api.response.write``          response body write (drop/torn/slow)
``replica.fetch``               follower's replication-log fetch
``replica.apply``               follower applying one log entry
==============================  ============================================
"""

from __future__ import annotations

import fnmatch
import threading
import time
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.obs import metrics as _metrics
from repro.util.ringlog import RingLog

#: Capacity of :attr:`FaultPlan.fired`.  Large enough that every test
#: schedule's full trace fits (the densest chaos run fires a few
#: hundred faults); small enough that a plan left installed in a
#: long-running worker is bounded memory.
FIRED_CAPACITY = 4096

# Mirrors every ``plan.fired`` append into the process metrics registry,
# so the chaos suite can assert fire counts from ``/v1/metrics`` alone.
# Fires are rare by construction; the registry lock is affordable.
_M_FIRED = _metrics.counter(
    "repro_faults_fired_total",
    "Injected faults fired, by injection point and fault kind.",
    labelnames=("point", "kind"))

__all__ = [
    "ACTIVE",
    "FaultPlan",
    "FaultRule",
    "InjectedCrash",
    "InjectedFault",
    "fired_crash",
    "injected",
    "install",
    "is_crash",
    "uninstall",
]

#: Fault kinds a rule may inject.
KINDS = ("error", "crash", "torn", "slow", "drop")


class InjectedFault(OSError):
    """A deterministic injected I/O failure (an ordinary ``OSError``).

    Raised for ``error`` rules and after the kept prefix of a ``torn``
    write: callers' normal error handling (append rollback, retry
    policies, 500 envelopes) must treat it exactly like a real failure.
    """

    def __init__(self, point: str, detail: str = "injected fault") -> None:
        super().__init__(f"{detail} at {point!r}")
        self.point = point


class InjectedCrash(BaseException):
    """A simulated process death at an injection point.

    Deliberately **not** an :class:`Exception`: nothing that catches
    ``Exception`` (retry loops, error envelopes) may swallow it, and
    rollback code must detect it via :func:`is_crash` and re-raise
    without undoing partial writes — a real crash does not get to run
    ``except`` blocks.  Tests catch it at the harness level and
    simulate the restart by reopening the store from disk.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"injected crash at {point!r}")
        self.point = point


def is_crash(error: BaseException) -> bool:
    """Whether ``error`` is a simulated process death (see above)."""
    return isinstance(error, InjectedCrash)


@dataclass(frozen=True)
class FaultRule:
    """One deterministic fault source bound to an injection-point pattern.

    ``point`` is an ``fnmatch`` pattern (``"store.*"`` matches every
    store point).  A rule fires when the point's 1-based call counter is
    in ``on_calls`` (if given) *and* the point's child RNG draws under
    ``probability``; ``max_fires`` bounds the total fires so a
    probabilistic schedule always lets a retry loop win eventually.
    """

    point: str
    kind: str
    probability: float = 1.0
    on_calls: Optional[tuple[int, ...]] = None
    max_fires: Optional[int] = None
    #: ``slow`` rules sleep this many seconds.
    delay: float = 0.005
    #: ``torn`` rules keep this many bytes; ``None`` draws a prefix
    #: length from the point's child RNG (deterministic per seed).
    keep_bytes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r} "
                             f"(expected one of {', '.join(KINDS)})")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1] "
                             f"(got {self.probability})")


class FaultPlan:
    """A seeded schedule of injected faults over named points.

    Thread-safe: per-point call counters, fire counts and child RNGs are
    guarded by one lock (chaos tests run writers, readers and the
    replica tailer concurrently).  The plan records every fired fault in
    :attr:`fired` as ``(point, call_index, kind)`` so a test can assert
    its schedule actually executed.  ``fired`` is a bounded
    :class:`~repro.util.ringlog.RingLog` (capacity
    :data:`FIRED_CAPACITY`): a plan left installed in a long-running
    worker must not leak memory through its own trace, and
    ``fired.dropped`` records whether eviction ever happened — every
    test schedule fires far fewer faults than the cap, so full-trace
    equality assertions still see the complete history.
    """

    def __init__(self, seed: int, rules: Iterable[FaultRule] = ()) -> None:
        self.seed = seed
        self.rules = tuple(rules)
        self.fired: RingLog = RingLog(FIRED_CAPACITY)
        self._lock = threading.Lock()
        self._calls: dict[str, int] = {}
        self._fires: dict[int, int] = {}  # rule index -> times fired
        self._rngs: dict[str, "random.Random"] = {}
        # point -> tuple of (rule_index, rule) whose pattern matches it;
        # memoised so a ruleless point costs one dict probe per hit.
        self._matched: dict[str, tuple[tuple[int, FaultRule], ...]] = {}

    # -- plumbing ---------------------------------------------------------
    def _rules_for(self, point: str) -> tuple[tuple[int, FaultRule], ...]:
        matched = self._matched.get(point)
        if matched is None:
            matched = tuple((i, rule) for i, rule in enumerate(self.rules)
                            if fnmatch.fnmatchcase(point, rule.point))
            self._matched[point] = matched
        return matched

    def _rng(self, point: str) -> "random.Random":
        rng = self._rngs.get(point)
        if rng is None:
            import random

            rng = self._rngs[point] = random.Random(f"{self.seed}:{point}")
        return rng

    def _select(self, point: str) -> Optional[tuple[FaultRule, int]]:
        """The rule firing at this call of ``point`` (and the call index)."""
        with self._lock:
            call = self._calls.get(point, 0) + 1
            self._calls[point] = call
            for index, rule in self._rules_for(point):
                if rule.on_calls is not None and call not in rule.on_calls:
                    continue
                if rule.max_fires is not None \
                        and self._fires.get(index, 0) >= rule.max_fires:
                    continue
                if rule.probability < 1.0 \
                        and self._rng(point).random() >= rule.probability:
                    continue
                self._fires[index] = self._fires.get(index, 0) + 1
                self.fired.append((point, call, rule.kind))
                # The registry child has its own short lock; obs never
                # calls back into faults, so the nesting cannot deadlock.
                _M_FIRED.labels(point=point, kind=rule.kind).inc()
                return rule, call
        return None

    def calls(self, point: str) -> int:
        """How many times ``point`` has been hit."""
        with self._lock:
            return self._calls.get(point, 0)

    # -- injection --------------------------------------------------------
    def hit(self, point: str) -> None:
        """Pass through ``point``: sleep, raise, or do nothing.

        ``torn`` rules degrade to ``error`` here — tearing only means
        something at a write point (use :meth:`on_write` there).
        """
        selected = self._select(point)
        if selected is None:
            return
        rule, _ = selected
        if rule.kind == "slow":
            time.sleep(rule.delay)
        elif rule.kind == "crash":
            raise InjectedCrash(point)
        elif rule.kind == "drop":
            raise ConnectionResetError(f"injected connection drop at {point!r}")
        else:  # error, torn
            raise InjectedFault(point)

    def on_write(self, point: str, size: int) -> Optional[int]:
        """Pass a ``size``-byte write through ``point``.

        Returns ``None`` (write everything) or the number of bytes the
        caller must write before raising :class:`InjectedFault` — the
        torn-write contract.  Non-torn kinds behave as in :meth:`hit`.
        """
        selected = self._select(point)
        if selected is None:
            return None
        rule, _ = selected
        if rule.kind == "slow":
            time.sleep(rule.delay)
            return None
        if rule.kind == "crash":
            raise InjectedCrash(point)
        if rule.kind == "drop":
            raise ConnectionResetError(f"injected connection drop at {point!r}")
        if rule.kind == "torn":
            if rule.keep_bytes is not None:
                return min(rule.keep_bytes, size)
            return self._rng(point).randrange(0, max(size, 1))
        raise InjectedFault(point)

    def torn_write(self, point: str, handle, data: bytes) -> None:
        """Write ``data`` to ``handle``, honouring the plan at ``point``.

        The shared torn-write helper: a firing ``torn`` rule writes the
        kept prefix, flushes it (the tear must reach the OS to be
        observable by recovery), then raises :class:`InjectedFault`.
        """
        keep = self.on_write(point, len(data))
        if keep is None:
            handle.write(data)
            return
        handle.write(data[:keep])
        handle.flush()
        raise InjectedFault(point, f"torn write ({keep}/{len(data)} bytes)")


#: The installed plan, or ``None``.  Production call sites check this
#: attribute and do nothing else when it is ``None``.
ACTIVE: Optional[FaultPlan] = None

_install_lock = threading.Lock()


def install(plan: FaultPlan) -> FaultPlan:
    """Install ``plan`` as the process-wide active fault plan."""
    global ACTIVE
    with _install_lock:
        ACTIVE = plan
    return plan


def uninstall() -> None:
    """Deactivate fault injection (the default state)."""
    global ACTIVE
    with _install_lock:
        ACTIVE = None


class injected:
    """Context manager installing ``plan`` for the ``with`` body.

    Usable around a whole chaos schedule::

        with faults.injected(FaultPlan(seed=7, rules=[...])) as plan:
            ...
        assert plan.fired
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan

    def __enter__(self) -> FaultPlan:
        return install(self.plan)

    def __exit__(self, *exc_info: object) -> None:
        uninstall()


def fired_crash(plan: FaultPlan) -> bool:
    """Whether ``plan`` has fired at least one ``crash`` rule."""
    return any(kind == "crash" for _, _, kind in plan.fired)
