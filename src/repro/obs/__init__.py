"""repro.obs — stdlib-only telemetry for the serving stack.

Three small modules, importable from anywhere in the package (they
import nothing from :mod:`repro` outside this subpackage, so even
:mod:`repro.faults` can depend on them):

* :mod:`repro.obs.metrics` — a process-global :class:`MetricsRegistry`
  of counters/gauges/fixed-bucket histograms rendered in deterministic
  Prometheus text-exposition format (served at ``GET /v1/metrics``).
* :mod:`repro.obs.logging` — structured JSON event logging
  (``ts``/``level``/``event``/``trace_id`` + key/values).
* :mod:`repro.obs.tracing` — ``X-Request-Id`` propagation through a
  :mod:`contextvars` variable, leader ↔ follower correlatable.

See the README's "Observability" section for the metric catalogue and
the cost model (hot paths use plain GIL-atomic ints merged at scrape
time; registry instruments are for ≥ tens-of-µs paths).
"""

from repro.obs.logging import configure, enabled, log_event
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    REGISTRY,
    MetricsRegistry,
    counter,
    gauge,
    histogram,
    parse_exposition,
    render,
)
from repro.obs.tracing import current_trace_id, new_trace_id, trace

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "REGISTRY",
    "configure",
    "counter",
    "current_trace_id",
    "enabled",
    "gauge",
    "histogram",
    "log_event",
    "new_trace_id",
    "parse_exposition",
    "render",
    "trace",
]
