"""Request tracing: cheap trace ids carried in a :mod:`contextvars` var.

A trace id is born at the wire layer (or taken verbatim from an
incoming ``X-Request-Id`` header), activated for the duration of the
request, and read back by the structured logger and by outbound calls
(the replica tailer stamps its leader fetches with the current id so a
leader's access log lines correlate with follower sync cycles).

Id generation is deliberately cheap: a per-process random prefix drawn
once at import plus a monotonically increasing sequence — ~200 ns,
versus ~2 µs for ``uuid4``.  Ids are 16 lowercase hex chars, unique
per process and collision-resistant across processes.
"""

from __future__ import annotations

import contextvars
import itertools
import os
from contextlib import contextmanager
from typing import Iterator, Optional

__all__ = [
    "activate",
    "current_trace_id",
    "deactivate",
    "new_trace_id",
    "trace",
]

_TRACE: contextvars.ContextVar[Optional[str]] = contextvars.ContextVar(
    "repro_trace_id", default=None)

_PREFIX = os.urandom(4).hex()
_SEQ = itertools.count(1)


def new_trace_id() -> str:
    """A fresh 16-hex-char trace id (process-random prefix + sequence)."""
    return f"{_PREFIX}{next(_SEQ):08x}"


def current_trace_id() -> Optional[str]:
    """The trace id active in this context, or ``None``."""
    return _TRACE.get()


def activate(trace_id: str) -> contextvars.Token:
    """Make ``trace_id`` current; pass the token to :func:`deactivate`."""
    return _TRACE.set(trace_id)


def deactivate(token: contextvars.Token) -> None:
    _TRACE.reset(token)


@contextmanager
def trace(trace_id: Optional[str] = None) -> Iterator[str]:
    """``with trace() as tid:`` — activate a (fresh) id for the block."""
    tid = trace_id if trace_id else new_trace_id()
    token = _TRACE.set(tid)
    try:
        yield tid
    finally:
        _TRACE.reset(token)
