"""Structured JSON logging with a shared schema.

Every line is one JSON object: ``{"ts", "level", "event",
"trace_id", ...key/values}`` — ``trace_id`` injected automatically from
:mod:`repro.obs.tracing` when a trace is active.  Events go to stderr
(overridable for tests via :func:`configure`).

The default threshold is ``warning`` so the library stays silent under
tests and batch use; ``repro-serve serve`` configures ``info``.  The
``REPRO_LOG_LEVEL`` environment variable overrides the initial
threshold (``debug``/``info``/``warning``/``error``/``off``).

Emission cost is only paid above threshold — ``log_event`` at a
suppressed level is one dict lookup and an int compare (~50 ns), cheap
enough for debug events on warm paths.  Truly hot paths should still
guard with :func:`enabled` before building kwargs.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import IO, Optional

from repro.obs import tracing

__all__ = ["configure", "enabled", "log_event"]

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40, "off": 100}

_state = {
    "threshold": LEVELS.get(
        os.environ.get("REPRO_LOG_LEVEL", "").strip().lower(),
        LEVELS["warning"]),
    "stream": None,  # None → sys.stderr resolved at call time
}


def configure(level: Optional[str] = None,
              stream: Optional[IO[str]] = None) -> None:
    """Set the threshold and/or output stream (``None`` leaves it as is)."""
    if level is not None:
        if level not in LEVELS:
            raise ValueError(f"unknown log level: {level!r}")
        _state["threshold"] = LEVELS[level]
    if stream is not None:
        _state["stream"] = stream


def enabled(level: str) -> bool:
    """True when events at ``level`` would be emitted."""
    return LEVELS[level] >= _state["threshold"]


def log_event(event: str, level: str = "info", **fields: object) -> None:
    """Emit one schema-shaped JSON line (no-op below the threshold)."""
    if LEVELS[level] < _state["threshold"]:
        return
    record = {
        "ts": round(time.time(), 6),
        "level": level,
        "event": event,
        "trace_id": tracing.current_trace_id(),
    }
    record.update(fields)
    stream = _state["stream"] or sys.stderr
    try:
        stream.write(json.dumps(record, default=str) + "\n")
        stream.flush()
    except (OSError, ValueError):
        pass  # a closed/broken log stream must never take the service down
