"""Process-global metrics: counters, gauges, fixed-bucket histograms.

Stdlib-only and dependency-free — the serving stack (and the fault
layer underneath it) imports this module, so it must import nothing
from :mod:`repro` itself.

Cost model (mirrors :mod:`repro.faults`): registry instruments share
one :class:`threading.Lock` and are intended for paths that already
cost ≥ tens of microseconds (store appends, archive loads, ingest,
replica sync cycles, retries, error envelopes).  True hot paths — the
~5 µs cached in-process read — must *not* take that lock; they keep
plain ``int`` attributes on their owning object (GIL-atomic to read,
never torn) and :meth:`MetricsRegistry.render` merges those in at
scrape time via the ``extra`` parameter.  The measured dormant cost of
the hot-path scheme is <2% of a cached read (``BENCH_obs.json``).

Rendering follows the Prometheus text-exposition format v0.0.4 and is
deterministic: families sorted by name, labelled children sorted by
label values, values formatted identically on every scrape — so a
frozen registry renders byte-stable output.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "aggregate_expositions",
    "counter",
    "gauge",
    "histogram",
    "parse_exposition",
    "render",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default latency buckets (seconds): 100 µs .. 10 s, roughly log-spaced.
#: Wide enough for everything from an index lookup to a 1M-day append.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 10.0,
)


def _format_value(value: float) -> str:
    """Deterministic sample-value formatting (ints stay integral)."""
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return (value.replace("\\", "\\\\")
                 .replace("\"", "\\\"")
                 .replace("\n", "\\n"))


def _label_block(labels: Sequence[Tuple[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{_escape_label(value)}"'
                     for key, value in labels)
    return "{" + inner + "}"


class _Instrument:
    """Common family plumbing: named, labelled, children under one lock."""

    kind = ""

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labelnames: Sequence[str]) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label) or label == "le":
                raise ValueError(f"invalid label name: {label!r}")
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._lock = registry._lock
        self._children: Dict[Tuple[str, ...], object] = {}
        if not self.labelnames:
            self._children[()] = self._make_child()

    def _new_child(self):
        raise NotImplementedError

    def _make_child(self):
        child = self._new_child()
        child._lock = self._lock
        return child

    def labels(self, **labels: str):
        """Return the child for the given label values (get-or-create)."""
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}")
        key = tuple(str(labels[name]) for name in self.labelnames)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = self._children[key] = self._make_child()
        return child

    def _default(self):
        if self.labelnames:
            raise ValueError(
                f"{self.name} is labelled {self.labelnames}; use .labels()")
        return self._children[()]


class _CounterChild:
    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount


class Counter(_Instrument):
    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild()

    def inc(self, amount: float = 1) -> None:
        self._default().inc(amount)

    def value(self, **labels: str) -> float:
        child = self.labels(**labels) if labels else self._default()
        return child.value


class _GaugeChild:
    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount


class Gauge(_Instrument):
    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild()

    def set(self, value: float) -> None:
        self._default().set(value)

    def inc(self, amount: float = 1) -> None:
        self._default().inc(amount)

    def value(self, **labels: str) -> float:
        child = self.labels(**labels) if labels else self._default()
        return child.value


class _HistogramChild:
    __slots__ = ("buckets", "counts", "sum", "count", "_lock")

    def __init__(self, buckets: Tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # last slot is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[bisect_left(self.buckets, value)] += 1
            self.sum += value
            self.count += 1


class Histogram(_Instrument):
    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labelnames: Sequence[str],
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        ordered = tuple(float(b) for b in buckets)
        if not ordered or list(ordered) != sorted(set(ordered)):
            raise ValueError("histogram buckets must be sorted and unique")
        self.buckets = ordered
        super().__init__(registry, name, help, labelnames)

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    def child_values(self, **labels: str) -> Tuple[List[int], float, int]:
        child = self.labels(**labels) if labels else self._default()
        return list(child.counts), child.sum, child.count


#: An extra family injected at render time: (name, kind, help, samples)
#: where samples is a sequence of (labels-mapping, value).  Used for
#: hot-path plain-int counters that live outside the registry.
ExtraFamily = Tuple[str, str, str, Sequence[Tuple[Mapping[str, str], float]]]


class MetricsRegistry:
    """Get-or-create instrument families, one shared lock, stable render."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Instrument] = {}

    def _get_or_create(self, cls, name: str, help: str,
                       labelnames: Sequence[str], **kwargs) -> _Instrument:
        with self._lock:
            existing = self._families.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"{name} already registered as {existing.kind}")
            if existing.labelnames != tuple(labelnames):
                raise ValueError(
                    f"{name} already registered with labels "
                    f"{existing.labelnames}")
            if (kwargs.get("buckets") is not None
                    and tuple(float(b) for b in kwargs["buckets"])
                    != existing.buckets):
                raise ValueError(f"{name} already registered with "
                                 f"different buckets")
            return existing
        instrument = cls(self, name, help, labelnames, **{
            key: value for key, value in kwargs.items() if value is not None})
        with self._lock:
            return self._families.setdefault(name, instrument)

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._get_or_create(Histogram, name, help, labelnames,
                                   buckets=buckets)

    def reset(self) -> None:
        """Zero every child (families stay registered).  For tests."""
        with self._lock:
            for family in self._families.values():
                for key in list(family._children):
                    family._children[key] = family._make_child()

    def render(self, extra: Iterable[ExtraFamily] = ()) -> bytes:
        """Prometheus text exposition, byte-stable for a frozen registry."""
        blocks: Dict[str, List[str]] = {}
        with self._lock:
            families = sorted(self._families.items())
            for name, family in families:
                lines = [f"# HELP {name} {_escape_help(family.help)}",
                         f"# TYPE {name} {family.kind}"]
                for key, child in sorted(family._children.items()):
                    pairs = list(zip(family.labelnames, key))
                    if family.kind == "histogram":
                        cumulative = 0
                        for bound, count in zip(family.buckets + (math.inf,),
                                                child.counts):
                            cumulative += count
                            le = pairs + [("le", _format_value(bound))]
                            lines.append(f"{name}_bucket{_label_block(le)} "
                                         f"{cumulative}")
                        lines.append(f"{name}_sum{_label_block(pairs)} "
                                     f"{_format_value(child.sum)}")
                        lines.append(f"{name}_count{_label_block(pairs)} "
                                     f"{child.count}")
                    else:
                        lines.append(f"{name}{_label_block(pairs)} "
                                     f"{_format_value(child.value)}")
                blocks[name] = lines
        for name, kind, help, samples in extra:
            if name in blocks:
                raise ValueError(f"extra family {name} shadows a "
                                 f"registered one")
            lines = [f"# HELP {name} {_escape_help(help)}",
                     f"# TYPE {name} {kind}"]
            decorated = sorted(
                (tuple(sorted(labels.items())), value)
                for labels, value in samples)
            for pairs, value in decorated:
                lines.append(f"{name}{_label_block(pairs)} "
                             f"{_format_value(value)}")
            blocks[name] = lines
        out: List[str] = []
        for name in sorted(blocks):
            out.extend(blocks[name])
        return ("\n".join(out) + "\n").encode("utf-8") if out else b""

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """JSON-safe dump of the registry (for benchmark artifacts)."""
        result: Dict[str, Dict[str, object]] = {}
        with self._lock:
            for name, family in sorted(self._families.items()):
                samples = []
                for key, child in sorted(family._children.items()):
                    labels = dict(zip(family.labelnames, key))
                    if family.kind == "histogram":
                        samples.append({"labels": labels,
                                        "sum": child.sum,
                                        "count": child.count})
                    else:
                        samples.append({"labels": labels,
                                        "value": child.value})
                result[name] = {"kind": family.kind, "samples": samples}
        return result


def parse_exposition(text: str) -> Dict[str, float]:
    """Parse exposition text into ``{"name{labels}": value}``.

    Shared by the ``repro-serve stats`` CLI, the tests, and the CI smoke
    assertions.  Keys keep the rendered label block verbatim (sorted by
    the renderer, so keys are stable across scrapes).
    """
    samples: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        if not key:
            raise ValueError(f"malformed sample line: {line!r}")
        samples[key] = float(value)
    return samples


def aggregate_expositions(texts: Iterable[str]) -> str:
    """Merge several exposition scrapes into one combined exposition.

    This is how the pre-fork worker pool presents one ``/v1/metrics``
    for N processes: the parent scrapes every worker and serves the
    merged text.  Counters and histogram samples (``_bucket``/``_sum``/
    ``_count``) **sum** across inputs — per-worker request tallies
    become pool totals — while gauges take the **maximum** (the pool's
    staleness is its worst worker's, not the sum of everyone's).

    ``HELP``/``TYPE`` metadata comes from the first scrape mentioning a
    family; samples keep first-appearance order inside each family (so
    histogram buckets stay in ascending ``le`` order — every worker
    renders from the same registry code) and families sort by name.
    The output round-trips through :func:`parse_exposition` like any
    single-process render.
    """
    helps: Dict[str, str] = {}
    kinds: Dict[str, str] = {}
    family_order: List[str] = []
    sample_order: Dict[str, List[str]] = {}
    values: Dict[str, float] = {}

    for text in texts:
        current: Optional[str] = None
        for raw in text.splitlines():
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line.split(None, 3)
                if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                    name = parts[2]
                    rest = parts[3] if len(parts) > 3 else ""
                    if parts[1] == "TYPE":
                        kinds.setdefault(name, rest)
                        current = name
                        if name not in sample_order:
                            family_order.append(name)
                            sample_order[name] = []
                    else:
                        helps.setdefault(name, rest)
                continue
            key, _, value_text = line.rpartition(" ")
            if not key:
                raise ValueError(f"malformed sample line: {line!r}")
            bare = key.split("{", 1)[0]
            # Samples belong to the family of the preceding TYPE line
            # (histogram children carry _bucket/_sum/_count suffixes);
            # a sample with no TYPE at all is its own untyped family.
            family = bare
            if current is not None and (
                    bare == current
                    or bare in (current + "_bucket", current + "_sum",
                                current + "_count")):
                family = current
            if family not in sample_order:
                family_order.append(family)
                sample_order[family] = []
                kinds.setdefault(family, "untyped")
            value = float(value_text)
            if key not in values:
                values[key] = value
                sample_order[family].append(key)
            elif kinds.get(family) == "gauge":
                values[key] = max(values[key], value)
            else:
                values[key] += value

    lines: List[str] = []
    for family in sorted(family_order):
        help_text = helps.get(family)
        if help_text is not None:
            lines.append(f"# HELP {family} {help_text}")
        lines.append(f"# TYPE {family} {kinds.get(family, 'untyped')}")
        for key in sample_order[family]:
            lines.append(f"{key} {_format_value(values[key])}")
    return "\n".join(lines) + "\n" if lines else ""


#: The process-global registry every subsystem registers into.
REGISTRY = MetricsRegistry()


def counter(name: str, help: str = "",
            labelnames: Sequence[str] = ()) -> Counter:
    return REGISTRY.counter(name, help, labelnames)


def gauge(name: str, help: str = "",
          labelnames: Sequence[str] = ()) -> Gauge:
    return REGISTRY.gauge(name, help, labelnames)


def histogram(name: str, help: str = "", labelnames: Sequence[str] = (),
              buckets: Optional[Sequence[float]] = None) -> Histogram:
    return REGISTRY.histogram(name, help, labelnames, buckets)


def render(extra: Iterable[ExtraFamily] = ()) -> bytes:
    return REGISTRY.render(extra)
