"""Domain-name substrate.

This package implements the DNS naming concepts the paper relies on
(Section 5 terminology): labels, public suffixes, base domains,
second-level domains (SLD, the label left of a public suffix), subdomain
depth, and the IANA TLD registry used to distinguish valid from invalid
top-level domains.
"""

from repro.domain.name import (
    DomainName,
    base_domain,
    normalise,
    sld_group,
    subdomain_depth,
)
from repro.domain.psl import PublicSuffixList
from repro.domain.tld import TldRegistry

__all__ = [
    "DomainName",
    "PublicSuffixList",
    "TldRegistry",
    "base_domain",
    "normalise",
    "sld_group",
    "subdomain_depth",
]
