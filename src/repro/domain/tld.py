"""IANA TLD registry model.

Section 5.1 of the paper counts *valid* and *invalid* top-level domains per
list against the IANA TLD directory (1,543 TLDs as of May 2018).  This
module provides a registry with the same interface: membership checks,
valid/invalid counting over a collection of domains, and coverage ratios.

The built-in registry is a curated set of real TLDs sufficient for the
synthetic population; a full ``tlds-alpha-by-domain.txt`` file can be
loaded with :meth:`TldRegistry.from_file`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

#: Number of TLDs in the IANA root zone at the paper's snapshot date
#: (May 20th, 2018); used for coverage ratios when scaling to the paper.
IANA_TLD_COUNT_MAY_2018 = 1543

_GENERIC_TLDS = (
    "com", "net", "org", "edu", "gov", "mil", "int", "info", "biz", "name",
    "mobi", "pro", "aero", "asia", "cat", "coop", "jobs", "museum", "tel",
    "travel", "xxx", "arpa", "io", "co", "me", "tv", "cc", "app", "dev",
    "xyz", "online", "site", "top", "club", "shop", "blog", "cloud", "live",
    "news", "space", "store", "tech", "website", "wiki", "win", "work",
    "agency", "life", "today", "world", "zone", "email", "network",
    "digital", "media", "systems", "solutions", "services", "academy",
    "link", "page", "art", "bank", "bar", "beer", "best", "bid", "bio",
    "build", "buzz", "cafe", "camp", "care", "cash", "casino", "center",
    "chat", "city", "clinic", "codes", "coffee", "community", "company",
    "cool", "credit", "date", "deals", "design", "direct", "dog", "domains",
    "download", "earth", "energy", "engineering", "events", "exchange",
    "expert", "express", "farm", "fashion", "finance", "fit", "fitness",
    "flights", "fun", "fund", "gallery", "games", "global", "gold", "golf",
    "group", "guide", "guru", "health", "help", "host", "house", "how",
    "ink", "institute", "international", "jewelry", "kitchen", "land",
    "lawyer", "lease", "legal", "loan", "love", "ltd", "market",
    "marketing", "mba", "menu", "money", "movie", "ninja", "one", "partners",
    "parts", "party", "photo", "photography", "photos", "pics", "pictures",
    "pizza", "plus", "press", "pub", "racing", "recipes", "red", "rent",
    "repair", "report", "rest", "restaurant", "review", "reviews", "rocks",
    "run", "sale", "school", "science", "security", "sexy", "shoes", "show",
    "singles", "ski", "soccer", "social", "software", "solar", "stream",
    "studio", "style", "支付", "support", "surf", "systems", "tax", "taxi",
    "team", "tips", "tools", "tours", "town", "toys", "trade", "training",
    "tube", "university", "uno", "vacations", "ventures", "video", "villas",
    "vip", "vision", "vote", "voyage", "watch", "webcam", "wedding", "wine",
    "works", "wtf", "yoga",
)

_COUNTRY_TLDS = (
    "ac", "ad", "ae", "af", "ag", "ai", "al", "am", "ao", "aq", "ar", "as",
    "at", "au", "aw", "ax", "az", "ba", "bb", "bd", "be", "bf", "bg", "bh",
    "bi", "bj", "bm", "bn", "bo", "br", "bs", "bt", "bw", "by", "bz", "ca",
    "cd", "cf", "cg", "ch", "ci", "ck", "cl", "cm", "cn", "cr", "cu", "cv",
    "cw", "cx", "cy", "cz", "de", "dj", "dk", "dm", "do", "dz", "ec", "ee",
    "eg", "er", "es", "et", "eu", "fi", "fj", "fk", "fm", "fo", "fr", "ga",
    "gd", "ge", "gf", "gg", "gh", "gi", "gl", "gm", "gn", "gp", "gq", "gr",
    "gt", "gu", "gw", "gy", "hk", "hm", "hn", "hr", "ht", "hu", "id", "ie",
    "il", "im", "in", "iq", "ir", "is", "it", "je", "jm", "jo", "jp", "ke",
    "kg", "kh", "ki", "km", "kn", "kp", "kr", "kw", "ky", "kz", "la", "lb",
    "lc", "li", "lk", "lr", "ls", "lt", "lu", "lv", "ly", "ma", "mc", "md",
    "mg", "mh", "mk", "ml", "mm", "mn", "mo", "mp", "mq", "mr", "ms",
    "mt", "mu", "mv", "mw", "mx", "my", "mz", "na", "nc", "ne", "nf", "ng",
    "ni", "nl", "no", "np", "nr", "nu", "nz", "om", "pa", "pe", "pf", "pg",
    "ph", "pk", "pl", "pm", "pn", "pr", "ps", "pt", "pw", "py", "qa", "re",
    "ro", "rs", "ru", "rw", "sa", "sb", "sc", "sd", "se", "sg", "sh", "si",
    "sk", "sl", "sm", "sn", "so", "sr", "ss", "st", "sv", "sx", "sy", "sz",
    "tc", "td", "tf", "tg", "th", "tj", "tk", "tl", "tm", "tn", "to", "tr",
    "tt", "tw", "tz", "ua", "ug", "uk", "us", "uy", "uz", "va", "vc", "ve",
    "vg", "vi", "vn", "vu", "wf", "ws", "ye", "yt", "za", "zm", "zw",
)


@dataclass(frozen=True)
class TldCoverage:
    """Valid/invalid TLD counts for a collection of domain names."""

    valid_tlds: int
    invalid_tlds: int
    valid_domains: int
    invalid_domains: int
    registry_size: int

    @property
    def coverage_ratio(self) -> float:
        """Fraction of the registry's TLDs present in the collection."""
        if self.registry_size == 0:
            return 0.0
        return self.valid_tlds / self.registry_size

    @property
    def invalid_domain_share(self) -> float:
        """Fraction of domains whose TLD is not in the registry."""
        total = self.valid_domains + self.invalid_domains
        if total == 0:
            return 0.0
        return self.invalid_domains / total


class TldRegistry:
    """Registry of valid top-level domains (IANA-style)."""

    def __init__(self, tlds: Iterable[str] | None = None) -> None:
        if tlds is None:
            tlds = set(_GENERIC_TLDS) | set(_COUNTRY_TLDS)
        self._tlds: set[str] = {t.strip().lower().strip(".") for t in tlds if t.strip()}

    @classmethod
    def from_file(cls, path: str) -> "TldRegistry":
        """Load a registry from an IANA ``tlds-alpha-by-domain.txt`` file."""
        tlds: list[str] = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                tlds.append(line.lower())
        return cls(tlds)

    def __len__(self) -> int:
        return len(self._tlds)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._tlds))

    def __contains__(self, tld: str) -> bool:
        return self.is_valid(tld)

    def is_valid(self, tld: str) -> bool:
        """Return whether ``tld`` is a registered TLD."""
        return tld.strip().lower().strip(".") in self._tlds

    def add(self, tld: str) -> None:
        """Register an additional TLD (e.g. a newly delegated gTLD)."""
        tld = tld.strip().lower().strip(".")
        if not tld:
            raise ValueError("empty TLD")
        self._tlds.add(tld)

    def tld_of(self, domain: str) -> str:
        """Return the rightmost label of ``domain``."""
        domain = domain.strip().lower().strip(".")
        if not domain:
            raise ValueError("empty domain name")
        return domain.rsplit(".", 1)[-1]

    def coverage(self, domains: Iterable[str]) -> TldCoverage:
        """Count valid and invalid TLDs over ``domains`` (Section 5.1)."""
        valid: Counter[str] = Counter()
        invalid: Counter[str] = Counter()
        for domain in domains:
            domain = domain.strip().lower().strip(".")
            if not domain:
                continue
            tld = domain.rsplit(".", 1)[-1]
            if tld in self._tlds:
                valid[tld] += 1
            else:
                invalid[tld] += 1
        return TldCoverage(
            valid_tlds=len(valid),
            invalid_tlds=len(invalid),
            valid_domains=sum(valid.values()),
            invalid_domains=sum(invalid.values()),
            registry_size=len(self._tlds),
        )

    def invalid_tld_histogram(self, domains: Iterable[str]) -> Mapping[str, int]:
        """Return a mapping of invalid TLD -> number of domains using it."""
        invalid: Counter[str] = Counter()
        for domain in domains:
            domain = domain.strip().lower().strip(".")
            if not domain:
                continue
            tld = domain.rsplit(".", 1)[-1]
            if tld not in self._tlds:
                invalid[tld] += 1
        return dict(invalid)
