"""Public Suffix List engine.

The paper defines its terminology against the Mozilla Public Suffix List
(PSL): for ``www.net.in.tum.de``, ``de`` is the public suffix, ``tum.de``
the base domain, and labels further left are subdomains.  The PSL is a
rule list with three kinds of rules:

* normal rules (``com``, ``co.uk``) — the suffix is the rule itself;
* wildcard rules (``*.ck``) — any single label under the rule is a suffix;
* exception rules (``!www.ck``) — override a wildcard.

This module implements the standard PSL matching algorithm over an
in-memory rule set.  A built-in default rule set covers the suffixes that
matter for the paper's analyses (generic TLDs, common ccTLDs, multi-label
suffixes such as ``co.uk`` and ``com.au``, and "private" suffixes such as
``blogspot.com`` that the paper groups specially); callers can supply
their own rules, e.g. parsed from a downloaded PSL file.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

#: Suffix rules shipped with the library.  This is intentionally a compact,
#: curated subset of the real PSL: enough to drive every analysis in the
#: reproduction, and easily replaced via :meth:`PublicSuffixList.from_rules`.
DEFAULT_RULES: tuple[str, ...] = (
    # Generic / legacy TLDs.
    "com", "net", "org", "edu", "gov", "mil", "int", "info", "biz",
    "name", "mobi", "pro", "aero", "asia", "cat", "coop", "jobs",
    "museum", "tel", "travel", "xxx", "arpa",
    # New gTLDs that appear in top lists.
    "io", "co", "me", "tv", "cc", "app", "dev", "xyz", "online", "site",
    "top", "club", "shop", "blog", "cloud", "live", "news", "space",
    "store", "tech", "website", "wiki", "win", "work", "agency", "life",
    "today", "world", "zone", "email", "network", "digital", "media",
    "systems", "solutions", "services", "academy", "link", "page",
    # Country-code TLDs.
    "de", "uk", "fr", "nl", "it", "es", "pt", "se", "no", "fi", "dk",
    "pl", "cz", "ch", "at", "be", "ie", "gr", "hu", "ro", "bg", "ru",
    "ua", "tr", "il", "sa", "ae", "in", "cn", "jp", "kr", "tw", "hk",
    "sg", "my", "th", "vn", "id", "ph", "au", "nz", "za", "ng", "ke",
    "eg", "ma", "br", "ar", "cl", "mx", "pe", "ve", "ca", "us", "eu",
    "is", "lt", "lv", "ee", "sk", "si", "hr", "rs", "by", "kz", "ir",
    "pk", "bd", "lk", "np",
    # Multi-label public suffixes.
    "co.uk", "org.uk", "ac.uk", "gov.uk", "me.uk", "net.uk",
    "com.au", "net.au", "org.au", "edu.au", "gov.au",
    "co.jp", "ne.jp", "or.jp", "ac.jp", "go.jp",
    "co.kr", "or.kr", "ac.kr",
    "com.br", "net.br", "org.br", "gov.br",
    "com.cn", "net.cn", "org.cn", "gov.cn", "edu.cn",
    "com.mx", "org.mx",
    "com.ar", "com.tr", "com.tw", "com.hk", "com.sg", "com.my",
    "co.in", "net.in", "org.in", "ac.in", "gov.in",
    "co.za", "org.za", "co.nz", "net.nz", "org.nz",
    "co.il", "org.il", "ac.il",
    "com.ua", "com.ru", "com.pl", "com.vn", "com.ph", "com.eg",
    "com.sa", "com.ng", "co.id", "co.th",
    # Wildcard and exception examples (kept for algorithmic completeness).
    "*.ck", "!www.ck",
    # Widely used "private" suffixes; the paper groups blogspot.* together.
    "blogspot.com", "blogspot.de", "blogspot.co.uk", "blogspot.com.br",
    "blogspot.in", "blogspot.mx", "blogspot.jp", "blogspot.fr",
    "appspot.com", "github.io", "gitlab.io", "herokuapp.com",
    "azurewebsites.net", "cloudfront.net", "amazonaws.com",
    "fastly.net", "akamaized.net", "wordpress.com", "tumblr.com",
)


class PublicSuffixList:
    """Matcher implementing the Public Suffix List algorithm.

    Parameters
    ----------
    rules:
        Iterable of PSL rules (``"com"``, ``"co.uk"``, ``"*.ck"``,
        ``"!www.ck"``).  When omitted the built-in default rule set is used.
    """

    def __init__(self, rules: Optional[Iterable[str]] = None) -> None:
        self._exact: set[str] = set()
        self._wildcard: set[str] = set()
        self._exception: set[str] = set()
        for rule in (rules if rules is not None else DEFAULT_RULES):
            self.add_rule(rule)

    @classmethod
    def from_rules(cls, rules: Iterable[str]) -> "PublicSuffixList":
        """Build a list from an iterable of rules (e.g. a parsed PSL file)."""
        return cls(rules=rules)

    @classmethod
    def from_file(cls, path: str) -> "PublicSuffixList":
        """Parse a PSL file in the upstream format (comments, blank lines)."""
        rules: list[str] = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line or line.startswith("//"):
                    continue
                rules.append(line)
        return cls(rules=rules)

    def add_rule(self, rule: str) -> None:
        """Register a single PSL rule."""
        rule = rule.strip().lower().strip(".")
        if not rule:
            raise ValueError("empty PSL rule")
        if rule.startswith("!"):
            self._exception.add(rule[1:])
        elif rule.startswith("*."):
            self._wildcard.add(rule[2:])
        else:
            self._exact.add(rule)

    def __len__(self) -> int:
        return len(self._exact) + len(self._wildcard) + len(self._exception)

    def __contains__(self, suffix: str) -> bool:
        return self.is_public_suffix(suffix)

    def is_public_suffix(self, name: str) -> bool:
        """Return whether ``name`` itself is a public suffix."""
        name = name.strip().lower().strip(".")
        if not name:
            return False
        return self.public_suffix(name) == name

    def public_suffix(self, name: str) -> Optional[str]:
        """Return the public suffix of ``name`` or ``None`` for empty input.

        Follows the PSL algorithm: the longest matching rule wins,
        exception rules beat wildcard rules, and an unknown TLD is treated
        as a public suffix of one label (the implicit ``*`` rule).
        """
        name = name.strip().lower().strip(".")
        if not name:
            return None
        labels = name.split(".")
        best: Optional[Sequence[str]] = None
        for start in range(len(labels)):
            candidate = labels[start:]
            cand_str = ".".join(candidate)
            parent = ".".join(candidate[1:])
            if cand_str in self._exception:
                # The exception rule's suffix is the rule minus its left label.
                match = candidate[1:]
                if best is None or len(match) > len(best):
                    best = match
                continue
            if cand_str in self._exact:
                if best is None or len(candidate) > len(best):
                    best = candidate
            if parent and parent in self._wildcard and cand_str not in self._exception:
                if best is None or len(candidate) > len(best):
                    best = candidate
        if best is None:
            # Implicit "*" rule: the rightmost label is the public suffix.
            best = labels[-1:]
        return ".".join(best)

    def base_domain(self, name: str) -> Optional[str]:
        """Return the registrable (base) domain: public suffix plus one label.

        Returns ``None`` when ``name`` is itself a public suffix or empty.
        """
        name = name.strip().lower().strip(".")
        if not name:
            return None
        suffix = self.public_suffix(name)
        if suffix is None or name == suffix:
            return None
        suffix_labels = suffix.count(".") + 1
        labels = name.split(".")
        if len(labels) <= suffix_labels:
            return None
        return ".".join(labels[-(suffix_labels + 1):])

    def sld_group(self, name: str) -> Optional[str]:
        """Return the second-level-domain group label used in Section 6.2.

        The paper groups domains by the label immediately left of the
        public suffix (e.g. all ``blogspot.*`` domains share the group
        ``blogspot``).  Returns ``None`` if no such label exists.
        """
        base = self.base_domain(name)
        if base is None:
            return None
        return base.split(".")[0]
