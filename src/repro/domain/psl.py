"""Public Suffix List engine.

The paper defines its terminology against the Mozilla Public Suffix List
(PSL): for ``www.net.in.tum.de``, ``de`` is the public suffix, ``tum.de``
the base domain, and labels further left are subdomains.  The PSL is a
rule list with three kinds of rules:

* normal rules (``com``, ``co.uk``) — the suffix is the rule itself;
* wildcard rules (``*.ck``) — any single label under the rule is a suffix;
* exception rules (``!www.ck``) — override a wildcard.

This module implements the standard PSL matching algorithm over an
in-memory rule set.  Matching walks a reversed-label suffix trie once per
name (right to left), instead of materialising every candidate suffix
string, and the ``(public suffix, base domain)`` answer per name is kept
in a bounded LRU memo that is shared by every caller — the daily top
lists overlap almost completely between days, so the memo turns the
normalisation hot path into dictionary lookups.  :meth:`add_rule` bumps
an internal version and drops the memo, so rule changes are always
visible to later lookups.

A built-in default rule set covers the suffixes that matter for the
paper's analyses (generic TLDs, common ccTLDs, multi-label suffixes such
as ``co.uk`` and ``com.au``, and "private" suffixes such as
``blogspot.com`` that the paper groups specially); callers can supply
their own rules, e.g. parsed from a downloaded PSL file.
"""

from __future__ import annotations

import copy
from collections import OrderedDict
from typing import Iterable, Optional, Sequence

#: Suffix rules shipped with the library.  This is intentionally a compact,
#: curated subset of the real PSL: enough to drive every analysis in the
#: reproduction, and easily replaced via :meth:`PublicSuffixList.from_rules`.
DEFAULT_RULES: tuple[str, ...] = (
    # Generic / legacy TLDs.
    "com", "net", "org", "edu", "gov", "mil", "int", "info", "biz",
    "name", "mobi", "pro", "aero", "asia", "cat", "coop", "jobs",
    "museum", "tel", "travel", "xxx", "arpa",
    # New gTLDs that appear in top lists.
    "io", "co", "me", "tv", "cc", "app", "dev", "xyz", "online", "site",
    "top", "club", "shop", "blog", "cloud", "live", "news", "space",
    "store", "tech", "website", "wiki", "win", "work", "agency", "life",
    "today", "world", "zone", "email", "network", "digital", "media",
    "systems", "solutions", "services", "academy", "link", "page",
    # Country-code TLDs.
    "de", "uk", "fr", "nl", "it", "es", "pt", "se", "no", "fi", "dk",
    "pl", "cz", "ch", "at", "be", "ie", "gr", "hu", "ro", "bg", "ru",
    "ua", "tr", "il", "sa", "ae", "in", "cn", "jp", "kr", "tw", "hk",
    "sg", "my", "th", "vn", "id", "ph", "au", "nz", "za", "ng", "ke",
    "eg", "ma", "br", "ar", "cl", "mx", "pe", "ve", "ca", "us", "eu",
    "is", "lt", "lv", "ee", "sk", "si", "hr", "rs", "by", "kz", "ir",
    "pk", "bd", "lk", "np",
    # Multi-label public suffixes.
    "co.uk", "org.uk", "ac.uk", "gov.uk", "me.uk", "net.uk",
    "com.au", "net.au", "org.au", "edu.au", "gov.au",
    "co.jp", "ne.jp", "or.jp", "ac.jp", "go.jp",
    "co.kr", "or.kr", "ac.kr",
    "com.br", "net.br", "org.br", "gov.br",
    "com.cn", "net.cn", "org.cn", "gov.cn", "edu.cn",
    "com.mx", "org.mx",
    "com.ar", "com.tr", "com.tw", "com.hk", "com.sg", "com.my",
    "co.in", "net.in", "org.in", "ac.in", "gov.in",
    "co.za", "org.za", "co.nz", "net.nz", "org.nz",
    "co.il", "org.il", "ac.il",
    "com.ua", "com.ru", "com.pl", "com.vn", "com.ph", "com.eg",
    "com.sa", "com.ng", "co.id", "co.th",
    # Wildcard and exception examples (kept for algorithmic completeness).
    "*.ck", "!www.ck",
    # Widely used "private" suffixes; the paper groups blogspot.* together.
    "blogspot.com", "blogspot.de", "blogspot.co.uk", "blogspot.com.br",
    "blogspot.in", "blogspot.mx", "blogspot.jp", "blogspot.fr",
    "appspot.com", "github.io", "gitlab.io", "herokuapp.com",
    "azurewebsites.net", "cloudfront.net", "amazonaws.com",
    "fastly.net", "akamaized.net", "wordpress.com", "tumblr.com",
)

#: Default bound on the per-list lookup memo (names, not bytes).
DEFAULT_MEMO_SIZE = 262_144

#: Monotonic id source for :attr:`PublicSuffixList.cache_key`.  ``id()``
#: is unsafe as a cache key — it can be reused after an instance dies.
_instance_ids = iter(range(1, 2**63)).__next__


class _TrieNode:
    """One reversed-label trie node (label path reads right-to-left)."""

    __slots__ = ("children", "is_exact", "is_exception", "has_wildcard")

    def __init__(self) -> None:
        self.children: dict[str, _TrieNode] = {}
        self.is_exact = False
        self.is_exception = False
        self.has_wildcard = False


class PublicSuffixList:
    """Matcher implementing the Public Suffix List algorithm.

    Parameters
    ----------
    rules:
        Iterable of PSL rules (``"com"``, ``"co.uk"``, ``"*.ck"``,
        ``"!www.ck"``).  When omitted the built-in default rule set is used.
    memo_size:
        Bound on the internal lookup memo (number of distinct names).
    """

    def __init__(self, rules: Optional[Iterable[str]] = None,
                 memo_size: int = DEFAULT_MEMO_SIZE) -> None:
        self._rule_count = 0
        self._root = _TrieNode()
        self._memo: OrderedDict[str, tuple[Optional[str], Optional[str]]] = OrderedDict()
        self._memo_size = max(0, memo_size)
        self._version = 0
        self._uid = _instance_ids()
        for rule in (rules if rules is not None else DEFAULT_RULES):
            self.add_rule(rule)

    @classmethod
    def from_rules(cls, rules: Iterable[str]) -> "PublicSuffixList":
        """Build a list from an iterable of rules (e.g. a parsed PSL file)."""
        return cls(rules=rules)

    @classmethod
    def from_file(cls, path: str) -> "PublicSuffixList":
        """Parse a PSL file in the upstream format (comments, blank lines)."""
        rules: list[str] = []
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line or line.startswith("//"):
                    continue
                rules.append(line)
        return cls(rules=rules)

    @property
    def version(self) -> int:
        """Monotonic rule-set version; bumps whenever a rule is added.

        Caches layered above the PSL (parse memos, per-archive normalised
        sets) key on :attr:`cache_key` so a rule change invalidates them
        without any back-references.
        """
        return self._version

    @property
    def cache_key(self) -> tuple[int, int]:
        """Stable identity+version key for external caches.

        The first component is a process-unique instance id (never
        reused, unlike ``id()``), the second the rule-set version.
        """
        return (self._uid, self._version)

    def __setstate__(self, state: dict) -> None:
        # pickle/copy restore path: a copy must not share the original's
        # cache identity (or diverging copies could serve each other's
        # externally cached results), nor its mutable trie/memos (or
        # copy.copy originals would see the copy's add_rule mutations
        # without a version bump).
        self.__dict__.update(state)
        self.__dict__["_uid"] = _instance_ids()
        self.__dict__["_root"] = copy.deepcopy(self._root)
        self.__dict__["_memo"] = OrderedDict()
        self.__dict__.pop("_derived_memos", None)

    def add_rule(self, rule: str) -> None:
        """Register a single PSL rule and invalidate cached lookups."""
        rule = rule.strip().lower().strip(".")
        if not rule:
            raise ValueError("empty PSL rule")
        if rule.startswith("!"):
            added = self._insert(rule[1:], kind="exception")
        elif rule.startswith("*."):
            added = self._insert(rule[2:], kind="wildcard")
        else:
            added = self._insert(rule, kind="exact")
        if added:
            # Duplicate rules change no answers, so cached lookups (and
            # every cache layered on the version) stay valid.
            self._rule_count += 1
            self._version += 1
            self._memo.clear()

    def _insert(self, suffix: str, kind: str) -> bool:
        """Insert a rule into the trie; return whether it was new."""
        node = self._root
        for label in reversed(suffix.split(".")):
            node = node.children.setdefault(label, _TrieNode())
        if kind == "exact":
            added = not node.is_exact
            node.is_exact = True
        elif kind == "exception":
            added = not node.is_exception
            node.is_exception = True
        else:
            added = not node.has_wildcard
            node.has_wildcard = True
        return added

    def __len__(self) -> int:
        return self._rule_count

    def __contains__(self, suffix: str) -> bool:
        return self.is_public_suffix(suffix)

    def _suffix_label_count(self, labels: Sequence[str]) -> int:
        """Length (in labels) of the longest matching rule's suffix, 0 if none.

        Single right-to-left walk.  Exception rules beat wildcard rules for
        the same candidate, and an exception's suffix is the rule minus its
        left label — all matches of equal length denote the same suffix
        string, so tracking the maximum length is sufficient.

        A degenerate single-label exception rule (``!x``, invalid per the
        PSL spec) matches zero labels and falls through to the implicit
        ``*`` rule; the previous matcher returned a broken empty-string
        suffix for it, so this is an intentional divergence.
        """
        node = self._root
        best = 0
        depth = 0
        for label in labels[::-1]:
            child = node.children.get(label)
            if node.has_wildcard and not (child is not None and child.is_exception):
                if depth + 1 > best:
                    best = depth + 1
            if child is None:
                break
            depth += 1
            if child.is_exception:
                if depth - 1 > best:
                    best = depth - 1
            elif child.is_exact:
                if depth > best:
                    best = depth
            node = child
        return best

    def _lookup(self, name: str) -> tuple[Optional[str], Optional[str]]:
        """Memoised ``(public suffix, base domain)`` for a normalised name."""
        memo = self._memo
        hit = memo.get(name)
        if hit is not None:
            memo.move_to_end(name)
            return hit
        labels = name.split(".")
        count = self._suffix_label_count(labels)
        if count == 0:
            # Implicit "*" rule: the rightmost label is the public suffix.
            count = 1
        if count >= len(labels):
            result = (name, None)
        else:
            suffix = ".".join(labels[len(labels) - count:])
            base = ".".join(labels[len(labels) - count - 1:])
            result = (suffix, base)
        if self._memo_size:
            if len(memo) >= self._memo_size:
                memo.popitem(last=False)
            memo[name] = result
        return result

    def suffix_and_base(self, name: str) -> tuple[Optional[str], Optional[str]]:
        """Return ``(public suffix, base domain)`` of ``name`` in one lookup.

        The base domain is ``None`` when the name is itself a public
        suffix; both are ``None`` for empty input.
        """
        name = name.strip().lower().strip(".")
        if not name:
            return None, None
        return self._lookup(name)

    def is_public_suffix(self, name: str) -> bool:
        """Return whether ``name`` itself is a public suffix."""
        name = name.strip().lower().strip(".")
        if not name:
            return False
        return self._lookup(name)[0] == name

    def public_suffix(self, name: str) -> Optional[str]:
        """Return the public suffix of ``name`` or ``None`` for empty input.

        Follows the PSL algorithm: the longest matching rule wins,
        exception rules beat wildcard rules, and an unknown TLD is treated
        as a public suffix of one label (the implicit ``*`` rule).
        """
        return self.suffix_and_base(name)[0]

    def base_domain(self, name: str) -> Optional[str]:
        """Return the registrable (base) domain: public suffix plus one label.

        Returns ``None`` when ``name`` is itself a public suffix or empty.
        """
        return self.suffix_and_base(name)[1]

    def sld_group(self, name: str) -> Optional[str]:
        """Return the second-level-domain group label used in Section 6.2.

        The paper groups domains by the label immediately left of the
        public suffix (e.g. all ``blogspot.*`` domains share the group
        ``blogspot``).  Returns ``None`` if no such label exists.
        """
        base = self.base_domain(name)
        if base is None:
            return None
        return base.split(".", 1)[0]


_DEFAULT_LIST: Optional[PublicSuffixList] = None


def default_list() -> PublicSuffixList:
    """The process-wide default :class:`PublicSuffixList` (built lazily).

    Shared by every module that accepts ``psl=None``, so the default
    rule set is matched by one trie and memoised once, not once per
    importing module.
    """
    global _DEFAULT_LIST
    if _DEFAULT_LIST is None:
        _DEFAULT_LIST = PublicSuffixList()
    return _DEFAULT_LIST
