"""Domain name parsing and classification.

Implements the terminology of Section 5 of the paper.  For the name
``www.net.in.tum.de`` (with ``de`` as public suffix):

* public suffix: ``de``
* base domain: ``tum.de``
* first subdomain: ``in.tum.de``
* second subdomain: ``net.in.tum.de``
* ``www.net.in.tum.de`` is therefore a *third-level* subdomain
  (``subdomain_depth == 3``).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from repro.domain.psl import PublicSuffixList, default_list

#: Maximum length of a DNS name in presentation format.
MAX_NAME_LENGTH = 253
#: Maximum length of a single DNS label.
MAX_LABEL_LENGTH = 63

_DEFAULT_PSL = default_list()


class InvalidDomainError(ValueError):
    """Raised when a string cannot be interpreted as a DNS domain name."""


def normalise(name: str) -> str:
    """Normalise a domain name: lowercase, strip whitespace and trailing dot.

    Raises
    ------
    InvalidDomainError
        If the name is empty, too long, or contains an empty or over-long
        label.
    """
    if name is None:
        raise InvalidDomainError("domain name is None")
    cleaned = name.strip().lower().rstrip(".")
    if not cleaned:
        raise InvalidDomainError("empty domain name")
    if len(cleaned) > MAX_NAME_LENGTH:
        raise InvalidDomainError(f"domain name longer than {MAX_NAME_LENGTH} bytes: {name!r}")
    for label in cleaned.split("."):
        if not label:
            raise InvalidDomainError(f"empty label in {name!r}")
        if len(label) > MAX_LABEL_LENGTH:
            raise InvalidDomainError(f"label longer than {MAX_LABEL_LENGTH} bytes in {name!r}")
        if " " in label:
            raise InvalidDomainError(f"whitespace inside label in {name!r}")
    return cleaned


@dataclass(frozen=True)
class DomainName:
    """A parsed, normalised domain name with PSL-derived structure.

    Attributes
    ----------
    name:
        The normalised full name.
    public_suffix:
        The public suffix (per PSL) of the name.
    base:
        The registrable (base) domain, or ``None`` if the name is itself a
        public suffix.
    depth:
        Subdomain depth below the base domain.  The base domain itself has
        depth 0, ``www.example.com`` depth 1, and so on.
    """

    name: str
    public_suffix: Optional[str]
    base: Optional[str]
    depth: int

    @classmethod
    def parse(cls, raw: str, psl: Optional[PublicSuffixList] = None) -> "DomainName":
        """Parse and classify ``raw`` using ``psl`` (default built-in PSL)."""
        psl = psl or _DEFAULT_PSL
        name = normalise(raw)
        suffix, base = psl.suffix_and_base(name)
        if base is None:
            depth = 0
        else:
            depth = name.count(".") - base.count(".")
        return cls(name=name, public_suffix=suffix, base=base, depth=depth)

    @property
    def labels(self) -> tuple[str, ...]:
        """Labels of the name, left to right."""
        return tuple(self.name.split("."))

    @property
    def tld(self) -> str:
        """Rightmost label of the name."""
        return self.labels[-1]

    @property
    def is_base_domain(self) -> bool:
        """True when the name equals its registrable domain."""
        return self.base is not None and self.name == self.base

    @property
    def sld(self) -> Optional[str]:
        """Second-level-domain group: label left of the public suffix."""
        if self.base is None:
            return None
        return self.base.split(".")[0]

    def parent(self) -> Optional["DomainName"]:
        """Return the name with its leftmost label removed, if any."""
        labels = self.labels
        if len(labels) <= 1:
            return None
        return DomainName.parse(".".join(labels[1:]))

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@lru_cache(maxsize=262144)
def _parse_cached_versioned(name: str, _psl_version: int) -> DomainName:
    # The version argument keys the cache on the default PSL's rule set,
    # so adding a rule to it after lookups cannot serve stale parses.
    return DomainName.parse(name)


def _parse_cached(name: str) -> DomainName:
    return _parse_cached_versioned(name, _DEFAULT_PSL.version)


def base_domain(name: str, psl: Optional[PublicSuffixList] = None) -> Optional[str]:
    """Return the registrable domain of ``name`` (``None`` for bare suffixes)."""
    if psl is None:
        return _parse_cached(normalise(name)).base
    return DomainName.parse(name, psl=psl).base


def subdomain_depth(name: str, psl: Optional[PublicSuffixList] = None) -> int:
    """Return the subdomain depth of ``name`` below its base domain."""
    if psl is None:
        return _parse_cached(normalise(name)).depth
    return DomainName.parse(name, psl=psl).depth


def sld_group(name: str, psl: Optional[PublicSuffixList] = None) -> Optional[str]:
    """Return the SLD group label (Section 6.2) of ``name``."""
    if psl is None:
        return _parse_cached(normalise(name)).sld
    return DomainName.parse(name, psl=psl).sld
