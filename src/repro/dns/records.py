"""DNS record types, response codes and resource records.

Only the record types exercised by the paper's measurements are modelled:
A, AAAA (IPv6 adoption), CNAME (CDN detection, chain chasing), CAA
(Certification Authority Authorization adoption), NS and TXT (zone
plumbing and tests).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class RecordType(enum.Enum):
    """Subset of DNS RR types used by the reproduction."""

    A = "A"
    AAAA = "AAAA"
    CNAME = "CNAME"
    NS = "NS"
    TXT = "TXT"
    CAA = "CAA"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class Rcode(enum.Enum):
    """DNS response codes relevant to the measurements."""

    NOERROR = 0
    SERVFAIL = 2
    NXDOMAIN = 3
    REFUSED = 5

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True)
class RData:
    """Typed record data.

    ``address`` holds A/AAAA addresses, ``target`` CNAME/NS targets,
    ``text`` TXT payloads, and ``caa_tag``/``caa_value`` the CAA property
    (``issue``/``issuewild``/``iodef``) and its value.
    """

    address: Optional[str] = None
    target: Optional[str] = None
    text: Optional[str] = None
    caa_tag: Optional[str] = None
    caa_value: Optional[str] = None
    caa_flags: int = 0

    @classmethod
    def for_address(cls, address: str) -> "RData":
        return cls(address=address)

    @classmethod
    def for_target(cls, target: str) -> "RData":
        return cls(target=target.lower().rstrip("."))

    @classmethod
    def for_text(cls, text: str) -> "RData":
        return cls(text=text)

    @classmethod
    def for_caa(cls, tag: str, value: str, flags: int = 0) -> "RData":
        tag = tag.lower()
        if tag not in ("issue", "issuewild", "iodef"):
            raise ValueError(f"unknown CAA tag {tag!r}")
        return cls(caa_tag=tag, caa_value=value, caa_flags=flags)


@dataclass(frozen=True)
class ResourceRecord:
    """A single resource record in presentation-style form."""

    name: str
    rtype: RecordType
    rdata: RData
    ttl: int = 300

    def __post_init__(self) -> None:
        object.__setattr__(self, "name", self.name.lower().rstrip("."))
        if self.ttl < 0:
            raise ValueError("TTL must be non-negative")
        self._validate()

    def _validate(self) -> None:
        if self.rtype in (RecordType.A, RecordType.AAAA) and not self.rdata.address:
            raise ValueError(f"{self.rtype} record requires an address")
        if self.rtype in (RecordType.CNAME, RecordType.NS) and not self.rdata.target:
            raise ValueError(f"{self.rtype} record requires a target")
        if self.rtype is RecordType.CAA and not self.rdata.caa_tag:
            raise ValueError("CAA record requires a tag")
        if self.rtype is RecordType.A and self.rdata.address and ":" in self.rdata.address:
            raise ValueError("A record cannot carry an IPv6 address")
        if self.rtype is RecordType.AAAA and self.rdata.address and ":" not in self.rdata.address:
            raise ValueError("AAAA record must carry an IPv6 address")

    @property
    def value(self) -> str:
        """Human-readable record value (address, target, text or CAA)."""
        if self.rtype in (RecordType.A, RecordType.AAAA):
            return self.rdata.address or ""
        if self.rtype in (RecordType.CNAME, RecordType.NS):
            return self.rdata.target or ""
        if self.rtype is RecordType.TXT:
            return self.rdata.text or ""
        return f'{self.rdata.caa_flags} {self.rdata.caa_tag} "{self.rdata.caa_value}"'


@dataclass
class DnsResponse:
    """A response to a single-question DNS query."""

    qname: str
    qtype: RecordType
    rcode: Rcode
    answers: list[ResourceRecord] = field(default_factory=list)

    @property
    def is_nxdomain(self) -> bool:
        return self.rcode is Rcode.NXDOMAIN

    @property
    def is_empty(self) -> bool:
        """NOERROR with no answers (NODATA)."""
        return self.rcode is Rcode.NOERROR and not self.answers
