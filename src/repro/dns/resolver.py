"""Caching, CNAME-chasing resolver with query logging.

Two consumers rely on this module:

* The measurement harness (Section 8.1) resolves A/AAAA/CAA for every
  domain in a target set, following CNAME chains up to 10 links, exactly
  as the paper describes for its IPv6-adoption measurement.
* The Umbrella provider consumes the resolver's *query log*: the Umbrella
  Top 1M ranks fully-qualified names by how many distinct clients queried
  them through OpenDNS.  The log therefore records the querying client and
  whether the answer was served from cache (cached answers would not reach
  an upstream resolver, the TTL effect studied in Section 7.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.dns.errors import ResolutionLoopError
from repro.dns.records import DnsResponse, Rcode, RecordType, ResourceRecord
from repro.dns.zone import ZoneDatabase

#: The paper follows chains "of up to 10 CNAMEs".
MAX_CNAME_CHAIN = 10


@dataclass(frozen=True)
class QueryLogEntry:
    """One query observed by the resolver (the OpenDNS-style vantage)."""

    qname: str
    qtype: RecordType
    client_id: Optional[str]
    timestamp: float
    from_cache: bool
    rcode: Rcode


@dataclass
class Resolution:
    """Result of resolving a name with CNAME chasing."""

    qname: str
    qtype: RecordType
    rcode: Rcode
    addresses: list[str] = field(default_factory=list)
    cname_chain: list[str] = field(default_factory=list)
    records: list[ResourceRecord] = field(default_factory=list)

    @property
    def is_nxdomain(self) -> bool:
        return self.rcode is Rcode.NXDOMAIN

    @property
    def resolved(self) -> bool:
        """True when at least one address of the queried type was found."""
        return bool(self.addresses)

    @property
    def final_name(self) -> str:
        """Last name in the CNAME chain (or the query name itself)."""
        return self.cname_chain[-1] if self.cname_chain else self.qname


@dataclass
class _CacheEntry:
    response: DnsResponse
    expires_at: float


class CachingResolver:
    """Stub resolver over a :class:`ZoneDatabase` with a TTL-bound cache."""

    def __init__(
        self,
        zone: ZoneDatabase,
        enable_cache: bool = True,
        max_chain: int = MAX_CNAME_CHAIN,
        log_queries: bool = False,
    ) -> None:
        self._zone = zone
        self._cache: dict[tuple[str, RecordType], _CacheEntry] = {}
        self._enable_cache = enable_cache
        self._max_chain = max_chain
        self._log_queries = log_queries
        self._query_log: list[QueryLogEntry] = []
        self._clock: float = 0.0
        self.cache_hits = 0
        self.cache_misses = 0

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._clock

    def advance_clock(self, seconds: float) -> None:
        """Advance the simulated clock (expires cache entries lazily)."""
        if seconds < 0:
            raise ValueError("cannot move the clock backwards")
        self._clock += seconds

    # -- query log -------------------------------------------------------
    @property
    def query_log(self) -> list[QueryLogEntry]:
        """Queries observed so far (only populated when logging is on)."""
        return self._query_log

    def clear_query_log(self) -> None:
        self._query_log.clear()

    def flush_cache(self) -> None:
        """Drop all cached responses."""
        self._cache.clear()

    # -- resolution ------------------------------------------------------
    def query(self, qname: str, qtype: RecordType, client_id: Optional[str] = None) -> DnsResponse:
        """Answer a single query, consulting the cache first."""
        qname = qname.strip().lower().rstrip(".")
        key = (qname, qtype)
        entry = self._cache.get(key) if self._enable_cache else None
        if entry is not None and entry.expires_at > self._clock:
            self.cache_hits += 1
            self._log(qname, qtype, client_id, from_cache=True, rcode=entry.response.rcode)
            return entry.response
        self.cache_misses += 1
        response = self._zone.query(qname, qtype)
        if self._enable_cache:
            ttl = min((r.ttl for r in response.answers), default=60)
            self._cache[key] = _CacheEntry(response=response, expires_at=self._clock + ttl)
        self._log(qname, qtype, client_id, from_cache=False, rcode=response.rcode)
        return response

    def _log(self, qname: str, qtype: RecordType, client_id: Optional[str],
             from_cache: bool, rcode: Rcode) -> None:
        if not self._log_queries:
            return
        self._query_log.append(QueryLogEntry(
            qname=qname, qtype=qtype, client_id=client_id,
            timestamp=self._clock, from_cache=from_cache, rcode=rcode,
        ))

    def resolve(self, qname: str, qtype: RecordType = RecordType.A,
                client_id: Optional[str] = None) -> Resolution:
        """Resolve ``qname`` following CNAME chains up to the configured limit.

        Raises
        ------
        ResolutionLoopError
            If the CNAME chain exceeds the limit (loops included).
        """
        current = qname.strip().lower().rstrip(".")
        chain: list[str] = []
        all_records: list[ResourceRecord] = []
        rcode = Rcode.NOERROR
        addresses: list[str] = []
        seen: set[str] = set()
        for _ in range(self._max_chain + 1):
            response = self.query(current, qtype, client_id=client_id)
            rcode = response.rcode
            all_records.extend(response.answers)
            if response.rcode is not Rcode.NOERROR:
                break
            cnames = [r for r in response.answers if r.rtype is RecordType.CNAME]
            if cnames and qtype is not RecordType.CNAME:
                target = cnames[0].rdata.target or ""
                if target in seen or target == current:
                    raise ResolutionLoopError(f"CNAME loop at {target}")
                seen.add(current)
                chain.append(target)
                current = target
                continue
            addresses = [r.rdata.address for r in response.answers
                         if r.rtype is qtype and r.rdata.address]
            break
        else:
            raise ResolutionLoopError(
                f"CNAME chain for {qname!r} exceeds {self._max_chain} links")
        return Resolution(qname=qname.strip().lower().rstrip("."), qtype=qtype,
                          rcode=rcode, addresses=addresses, cname_chain=chain,
                          records=all_records)
