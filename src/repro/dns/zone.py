"""Authoritative zone database.

A flat name -> records store that plays the role of "the DNS" for the
synthetic Internet: the measurement scanners and the Umbrella traffic
simulation resolve names against it.  It distinguishes NXDOMAIN (the name
and none of its descendants exist) from NODATA (the name exists but has
no record of the queried type), mirroring real resolver semantics closely
enough for the paper's NXDOMAIN-share analysis.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Iterator, Optional

from repro.dns.errors import ZoneConfigurationError
from repro.dns.records import DnsResponse, RData, Rcode, RecordType, ResourceRecord


class ZoneDatabase:
    """In-memory authoritative store for the synthetic Internet's DNS."""

    def __init__(self) -> None:
        self._records: dict[str, dict[RecordType, list[ResourceRecord]]] = defaultdict(dict)
        # Names that exist (including ancestors of names with records), to
        # distinguish NXDOMAIN from NODATA.
        self._existing_names: set[str] = set()

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, name: str) -> bool:
        return self._normalise(name) in self._existing_names

    @staticmethod
    def _normalise(name: str) -> str:
        return name.strip().lower().rstrip(".")

    def names(self) -> Iterator[str]:
        """Iterate over names that own at least one record."""
        return iter(self._records.keys())

    def add(self, record: ResourceRecord) -> None:
        """Add a record, registering the name and its ancestors as existing."""
        name = self._normalise(record.name)
        by_type = self._records[name]
        if record.rtype is RecordType.CNAME:
            if by_type and any(t is not RecordType.CNAME for t in by_type):
                raise ZoneConfigurationError(
                    f"{name}: CNAME cannot coexist with other record types"
                )
            if RecordType.CNAME in by_type and by_type[RecordType.CNAME]:
                raise ZoneConfigurationError(f"{name}: multiple CNAME records")
        elif RecordType.CNAME in by_type:
            raise ZoneConfigurationError(
                f"{name}: other record types cannot coexist with a CNAME"
            )
        by_type.setdefault(record.rtype, []).append(record)
        self._register_existing(name)

    def _register_existing(self, name: str) -> None:
        labels = name.split(".")
        for start in range(len(labels)):
            self._existing_names.add(".".join(labels[start:]))

    def add_address(self, name: str, address: str, ttl: int = 300) -> None:
        """Convenience: add an A or AAAA record depending on the address."""
        rtype = RecordType.AAAA if ":" in address else RecordType.A
        self.add(ResourceRecord(name=name, rtype=rtype, rdata=RData.for_address(address), ttl=ttl))

    def add_cname(self, name: str, target: str, ttl: int = 300) -> None:
        """Convenience: add a CNAME record."""
        self.add(ResourceRecord(name=name, rtype=RecordType.CNAME, rdata=RData.for_target(target), ttl=ttl))

    def add_caa(self, name: str, tag: str, value: str, ttl: int = 300) -> None:
        """Convenience: add a CAA record."""
        self.add(ResourceRecord(name=name, rtype=RecordType.CAA, rdata=RData.for_caa(tag, value), ttl=ttl))

    def remove_name(self, name: str) -> None:
        """Delete all records owned by ``name`` (the name may keep existing
        if descendants still exist)."""
        name = self._normalise(name)
        self._records.pop(name, None)
        if not any(other == name or other.endswith("." + name) for other in self._records):
            self._existing_names.discard(name)

    def records(self, name: str, rtype: Optional[RecordType] = None) -> list[ResourceRecord]:
        """Return records owned by ``name`` (optionally of a single type)."""
        name = self._normalise(name)
        by_type = self._records.get(name, {})
        if rtype is None:
            return [r for records in by_type.values() for r in records]
        return list(by_type.get(rtype, []))

    def query(self, qname: str, qtype: RecordType) -> DnsResponse:
        """Answer a single-question query authoritatively.

        Returns the CNAME record (without chasing it) when the name owns a
        CNAME and a different type was asked, matching what an
        authoritative server would put in the answer section.
        """
        name = self._normalise(qname)
        by_type = self._records.get(name)
        if by_type:
            if qtype in by_type:
                return DnsResponse(qname=name, qtype=qtype, rcode=Rcode.NOERROR,
                                   answers=list(by_type[qtype]))
            if RecordType.CNAME in by_type and qtype is not RecordType.CNAME:
                return DnsResponse(qname=name, qtype=qtype, rcode=Rcode.NOERROR,
                                   answers=list(by_type[RecordType.CNAME]))
            return DnsResponse(qname=name, qtype=qtype, rcode=Rcode.NOERROR, answers=[])
        if name in self._existing_names:
            return DnsResponse(qname=name, qtype=qtype, rcode=Rcode.NOERROR, answers=[])
        return DnsResponse(qname=name, qtype=qtype, rcode=Rcode.NXDOMAIN, answers=[])

    def bulk_load(self, records: Iterable[ResourceRecord]) -> int:
        """Add many records; returns the number added."""
        count = 0
        for record in records:
            self.add(record)
            count += 1
        return count
