"""DNS substrate.

The paper's measurement pipeline (Section 8.1) resolves every domain in a
top list daily: A/AAAA lookups with CNAME chasing (up to 10 links), CAA
lookups on base domains, and NXDOMAIN accounting as a list-quality proxy.
The Umbrella list itself is built from DNS query logs of a large shared
resolver.  This package provides the pieces both sides need:

* record and response-code models (:mod:`repro.dns.records`),
* an authoritative zone database (:mod:`repro.dns.zone`),
* a caching, CNAME-chasing stub/recursive resolver with query logging
  (:mod:`repro.dns.resolver`).
"""

from repro.dns.errors import DnsError, ResolutionLoopError
from repro.dns.records import RData, Rcode, RecordType, ResourceRecord
from repro.dns.resolver import CachingResolver, QueryLogEntry, Resolution
from repro.dns.zone import ZoneDatabase

__all__ = [
    "CachingResolver",
    "DnsError",
    "QueryLogEntry",
    "RData",
    "Rcode",
    "RecordType",
    "Resolution",
    "ResolutionLoopError",
    "ResourceRecord",
    "ZoneDatabase",
]
