"""Exceptions raised by the DNS substrate."""


class DnsError(Exception):
    """Base class for DNS substrate errors."""


class ResolutionLoopError(DnsError):
    """Raised when CNAME chasing exceeds the configured chain limit."""


class ZoneConfigurationError(DnsError):
    """Raised when inconsistent records are added to a zone database."""
