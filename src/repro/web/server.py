"""Simulated web hosts.

The "server side" of the synthetic Internet: each web-enabled domain has a
:class:`WebHost` describing its TLS configuration, HSTS header, supported
HTTP versions and redirect behaviour.  The probers in
:mod:`repro.web.tls` and :mod:`repro.web.http2` connect to hosts through a
:class:`HostRegistry`, which resolves a domain name to its host the same
way the paper's zgrab/nghttp2 measurements hit whatever server the DNS
pointed them at.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.web.hsts import HstsPolicy


class HostNotFoundError(LookupError):
    """Raised when no web host exists for a domain (connection refused)."""


@dataclass
class WebHost:
    """Server-side properties of one domain's web presence.

    Attributes
    ----------
    domain:
        The domain this host serves (base domain; ``www.`` is an alias).
    tls_enabled:
        Whether an HTTPS handshake succeeds.
    tls_version:
        Negotiated TLS version string when enabled (e.g. ``"TLSv1.2"``).
    hsts_policy:
        The HSTS policy served over HTTPS, if any.
    http2_enabled:
        Whether the server negotiates HTTP/2 (via ALPN) and actually
        serves the landing page over it.
    redirect_to:
        Optional domain the landing page redirects to (followed by the
        HTTP/2 prober, which chases up to 10 redirects like the paper).
    serves_content:
        Whether a GET / actually returns page data (the paper only counts
        HTTP/2 as adopted if landing-page data is transferred over it).
    """

    domain: str
    tls_enabled: bool = False
    tls_version: Optional[str] = None
    hsts_policy: Optional[HstsPolicy] = None
    http2_enabled: bool = False
    redirect_to: Optional[str] = None
    serves_content: bool = True

    def __post_init__(self) -> None:
        self.domain = self.domain.strip().lower().rstrip(".")
        if not self.domain:
            raise ValueError("web host requires a domain")
        if self.tls_enabled and self.tls_version is None:
            self.tls_version = "TLSv1.2"
        if not self.tls_enabled:
            # HSTS only means something over TLS; HTTP/2 in browsers
            # requires TLS as well, which is what the paper measured.
            self.hsts_policy = None

    @property
    def hsts_header(self) -> Optional[str]:
        """The Strict-Transport-Security header value served, if any."""
        if self.hsts_policy is None:
            return None
        return self.hsts_policy.header_value()


@dataclass
class HostRegistry:
    """Lookup table from domain names to their :class:`WebHost`.

    ``www.<domain>`` is treated as an alias of ``<domain>``, matching the
    paper's practice of probing both the raw and the www-prefixed name.
    """

    _hosts: dict[str, WebHost] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self._hosts)

    def __iter__(self) -> Iterator[WebHost]:
        return iter(self._hosts.values())

    def add(self, host: WebHost) -> None:
        """Register ``host`` (overwrites an existing host for the domain)."""
        self._hosts[host.domain] = host

    def remove(self, domain: str) -> None:
        """Remove the host for ``domain`` if present."""
        self._hosts.pop(self._normalise(domain), None)

    @staticmethod
    def _normalise(domain: str) -> str:
        return domain.strip().lower().rstrip(".")

    def lookup(self, domain: str) -> Optional[WebHost]:
        """Return the host serving ``domain`` (also tries stripping www.)."""
        domain = self._normalise(domain)
        host = self._hosts.get(domain)
        if host is not None:
            return host
        if domain.startswith("www."):
            return self._hosts.get(domain[4:])
        return None

    def connect(self, domain: str) -> WebHost:
        """Return the host for ``domain`` or raise :class:`HostNotFoundError`."""
        host = self.lookup(domain)
        if host is None:
            raise HostNotFoundError(domain)
        return host
