"""HTTP Strict Transport Security (HSTS) header parsing.

Section 8.2 counts a domain as HSTS-enabled when it serves a *valid* HSTS
header with ``max-age > 0`` over TLS.  This module parses the
``Strict-Transport-Security`` header per RFC 6797 closely enough for that
check: ``max-age`` is required, ``includeSubDomains`` and ``preload`` are
recognised flags, duplicate directives invalidate the policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class HstsPolicy:
    """A parsed HSTS policy."""

    max_age: int
    include_subdomains: bool = False
    preload: bool = False

    @property
    def enabled(self) -> bool:
        """The paper's criterion: a valid header with ``max-age > 0``."""
        return self.max_age > 0

    def header_value(self) -> str:
        """Render the policy back to a header value."""
        parts = [f"max-age={self.max_age}"]
        if self.include_subdomains:
            parts.append("includeSubDomains")
        if self.preload:
            parts.append("preload")
        return "; ".join(parts)


def parse_hsts_header(value: Optional[str]) -> Optional[HstsPolicy]:
    """Parse a ``Strict-Transport-Security`` header value.

    Returns ``None`` for missing or invalid headers (no ``max-age``,
    non-numeric ``max-age``, duplicated directives).
    """
    if value is None:
        return None
    value = value.strip()
    if not value:
        return None
    max_age: Optional[int] = None
    include_subdomains = False
    preload = False
    seen: set[str] = set()
    for raw_directive in value.split(";"):
        directive = raw_directive.strip()
        if not directive:
            continue
        name, _, raw_val = directive.partition("=")
        name = name.strip().lower()
        if name in seen:
            return None
        seen.add(name)
        if name == "max-age":
            raw_val = raw_val.strip().strip('"')
            if not raw_val.isdigit():
                return None
            max_age = int(raw_val)
        elif name == "includesubdomains":
            include_subdomains = True
        elif name == "preload":
            preload = True
        # Unknown directives are ignored per RFC 6797.
    if max_age is None:
        return None
    return HstsPolicy(max_age=max_age, include_subdomains=include_subdomains, preload=preload)
