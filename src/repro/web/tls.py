"""TLS/HSTS prober (zgrab-style).

Section 8.2: "we instruct zgrab to visit each domain via HTTPS"; a domain
counts as TLS-capable when the handshake succeeds, and as HSTS-enabled
when it additionally serves a valid HSTS header with ``max-age > 0``.
This prober implements the same decision logic against the synthetic
:class:`~repro.web.server.HostRegistry`; like the paper, it retries with a
``www.`` prefix when the bare name has no web host.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.web.hsts import HstsPolicy, parse_hsts_header
from repro.web.server import HostRegistry


@dataclass(frozen=True)
class TlsProbeResult:
    """Outcome of probing a single domain over HTTPS."""

    domain: str
    connected: bool
    tls_capable: bool
    tls_version: Optional[str]
    hsts_policy: Optional[HstsPolicy]

    @property
    def hsts_enabled(self) -> bool:
        """Valid HSTS header with positive max-age (the paper's criterion)."""
        return self.hsts_policy is not None and self.hsts_policy.enabled


class TlsProber:
    """Probe domains for TLS and HSTS support."""

    def __init__(self, registry: HostRegistry, try_www_prefix: bool = True) -> None:
        self._registry = registry
        self._try_www = try_www_prefix

    def probe(self, domain: str) -> TlsProbeResult:
        """Probe one domain; a missing host yields a failed connection."""
        domain = domain.strip().lower().rstrip(".")
        host = self._registry.lookup(domain)
        if host is None and self._try_www and not domain.startswith("www."):
            host = self._registry.lookup("www." + domain)
        if host is None:
            return TlsProbeResult(domain=domain, connected=False, tls_capable=False,
                                  tls_version=None, hsts_policy=None)
        if not host.tls_enabled:
            return TlsProbeResult(domain=domain, connected=True, tls_capable=False,
                                  tls_version=None, hsts_policy=None)
        policy = parse_hsts_header(host.hsts_header)
        return TlsProbeResult(domain=domain, connected=True, tls_capable=True,
                              tls_version=host.tls_version, hsts_policy=policy)

    def probe_all(self, domains: Iterable[str]) -> list[TlsProbeResult]:
        """Probe every domain in ``domains``."""
        return [self.probe(domain) for domain in domains]

    def tls_share(self, domains: Iterable[str]) -> float:
        """Percentage of domains with a successful TLS handshake."""
        results = self.probe_all(domains)
        if not results:
            return 0.0
        return 100.0 * sum(r.tls_capable for r in results) / len(results)

    def hsts_share_of_tls(self, domains: Iterable[str]) -> float:
        """Percentage of TLS-capable domains serving valid HSTS.

        Matches Table 5: HSTS share is computed "out of the TLS-enabled
        domains".
        """
        results = [r for r in self.probe_all(domains) if r.tls_capable]
        if not results:
            return 0.0
        return 100.0 * sum(r.hsts_enabled for r in results) / len(results)
