"""Web-layer substrate.

Models the server-side behaviour the paper measures over HTTP(S): TLS
support, HSTS headers, HTTP/2 support, redirects, and CDN usage detectable
through CNAME patterns.  The probers mirror the tools the paper used
(zgrab for TLS, the nghttp2 library for HTTP/2) but talk to the synthetic
:class:`~repro.web.server.WebHost` registry instead of the live Internet.
"""

from repro.web.cdn import CdnDetector, CdnRule, DEFAULT_CDN_RULES
from repro.web.hsts import HstsPolicy, parse_hsts_header
from repro.web.http2 import Http2ProbeResult, Http2Prober
from repro.web.server import HostRegistry, WebHost
from repro.web.tls import TlsProbeResult, TlsProber

__all__ = [
    "CdnDetector",
    "CdnRule",
    "DEFAULT_CDN_RULES",
    "HostRegistry",
    "HstsPolicy",
    "Http2ProbeResult",
    "Http2Prober",
    "TlsProbeResult",
    "TlsProber",
    "WebHost",
    "parse_hsts_header",
]
