"""HTTP/2 prober (nghttp2-style).

Section 8.3: the paper fetches each domain's landing page with the
nghttp2 library, follows up to 10 redirects, and counts the domain as
HTTP/2-enabled only when landing-page data is actually transferred over
HTTP/2.  The prober reproduces that logic over the synthetic host
registry, including redirect chasing and the "data actually transferred"
condition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.web.server import HostRegistry

#: The paper follows "up to 10 redirects".
MAX_REDIRECTS = 10


@dataclass(frozen=True)
class Http2ProbeResult:
    """Outcome of probing a single domain for HTTP/2 support."""

    domain: str
    connected: bool
    http2_enabled: bool
    final_domain: Optional[str] = None
    redirects_followed: int = 0
    redirect_chain: tuple[str, ...] = field(default_factory=tuple)


class Http2Prober:
    """Probe domains for effective HTTP/2 support, following redirects."""

    def __init__(self, registry: HostRegistry, max_redirects: int = MAX_REDIRECTS,
                 try_www_prefix: bool = True) -> None:
        if max_redirects < 0:
            raise ValueError("max_redirects must be non-negative")
        self._registry = registry
        self._max_redirects = max_redirects
        self._try_www = try_www_prefix

    def probe(self, domain: str) -> Http2ProbeResult:
        """Probe one domain, following redirects up to the limit."""
        start = domain.strip().lower().rstrip(".")
        current = start
        host = self._registry.lookup(current)
        if host is None and self._try_www and not current.startswith("www."):
            host = self._registry.lookup("www." + current)
        if host is None:
            return Http2ProbeResult(domain=start, connected=False, http2_enabled=False)
        chain: list[str] = []
        redirects = 0
        visited = {host.domain}
        while host.redirect_to and redirects < self._max_redirects:
            target = host.redirect_to.strip().lower().rstrip(".")
            next_host = self._registry.lookup(target)
            if next_host is None or next_host.domain in visited:
                break
            chain.append(target)
            visited.add(next_host.domain)
            host = next_host
            redirects += 1
        enabled = bool(host.http2_enabled and host.tls_enabled and host.serves_content)
        return Http2ProbeResult(domain=start, connected=True, http2_enabled=enabled,
                                final_domain=host.domain, redirects_followed=redirects,
                                redirect_chain=tuple(chain))

    def probe_all(self, domains: Iterable[str]) -> list[Http2ProbeResult]:
        """Probe every domain in ``domains``."""
        return [self.probe(domain) for domain in domains]

    def adoption_share(self, domains: Iterable[str]) -> float:
        """Percentage of domains with effective HTTP/2 support (Figure 8)."""
        results = self.probe_all(domains)
        if not results:
            return 0.0
        return 100.0 * sum(r.http2_enabled for r in results) / len(results)
