"""CDN detection from CNAME patterns.

The paper identifies CDN use by matching the CNAME records observed during
DNS resolution against a list of CNAME suffix patterns for 77 CDNs (the
WebPagetest ``cdn.h`` ruleset).  This module ships an equivalent ruleset
covering the CDNs the paper's Figure 7b/c names (Akamai, Google, Fastly,
Incapsula, Amazon/CloudFront, WordPress, Facebook, Instart, Zenedge,
Highwinds, ChinaNetCenter) plus further common providers, and a detector
that classifies a CNAME chain.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence


@dataclass(frozen=True)
class CdnRule:
    """A CNAME-suffix rule identifying one CDN provider."""

    provider: str
    suffixes: tuple[str, ...]

    def matches(self, name: str) -> bool:
        """Return whether ``name`` ends with one of the rule's suffixes."""
        name = name.lower().rstrip(".")
        return any(name == s or name.endswith("." + s) for s in self.suffixes)


#: WebPagetest-cdn.h-style ruleset (suffix -> provider), covering the CDNs
#: named in the paper's evaluation plus other widespread providers.
DEFAULT_CDN_RULES: tuple[CdnRule, ...] = (
    CdnRule("Akamai", ("akamaiedge.net", "akamai.net", "akamaized.net",
                       "edgesuite.net", "edgekey.net", "akadns.net")),
    CdnRule("Google", ("googlehosted.com", "googleusercontent.com",
                       "ghs.google.com", "ghs.googlehosted.com",
                       "googlesyndication.com", "gvt1.com", "appspot.com")),
    CdnRule("Fastly", ("fastly.net", "fastlylb.net")),
    CdnRule("Incapsula", ("incapdns.net",)),
    CdnRule("Amazon", ("cloudfront.net", "awsglobalaccelerator.com",
                       "elasticbeanstalk.com", "amazonaws.com")),
    CdnRule("WordPress", ("wordpress.com", "wp.com")),
    CdnRule("Facebook", ("fbcdn.net", "facebook.com.edgekey.net")),
    CdnRule("Instart", ("insnw.net", "instartlogic.com")),
    CdnRule("Zenedge", ("zenedge.net",)),
    CdnRule("Highwinds", ("hwcdn.net",)),
    CdnRule("CHN Net", ("wscdns.com", "chinanetcenter.com", "wswebcdn.com")),
    CdnRule("Cloudflare", ("cloudflare.net", "cdn.cloudflare.net")),
    CdnRule("Microsoft Azure", ("azureedge.net", "azurewebsites.net",
                                "msedge.net", "trafficmanager.net")),
    CdnRule("CDN77", ("cdn77.net", "cdn77.org")),
    CdnRule("KeyCDN", ("kxcdn.com",)),
    CdnRule("StackPath", ("stackpathdns.com", "netdna-cdn.com")),
    CdnRule("Limelight", ("llnwd.net",)),
    CdnRule("EdgeCast", ("edgecastcdn.net", "systemcdn.net")),
    CdnRule("CDNetworks", ("cdngc.net", "gccdn.net")),
    CdnRule("Sucuri", ("sucuri.net",)),
    CdnRule("BunnyCDN", ("b-cdn.net",)),
    CdnRule("jsDelivr", ("jsdelivr.net",)),
    CdnRule("Alibaba", ("alikunlun.com", "kunlunca.com", "alicdn.com")),
    CdnRule("Tencent", ("cdntip.com", "qcloudcdn.com")),
    CdnRule("Automattic", ("pressdns.com",)),
    CdnRule("Netlify", ("netlify.com", "netlify.app")),
    CdnRule("GitHub Pages", ("github.io", "githubusercontent.com")),
    CdnRule("Vercel", ("vercel-dns.com", "zeit.world")),
)


class CdnDetector:
    """Classify CNAME chains into CDN providers."""

    def __init__(self, rules: Optional[Iterable[CdnRule]] = None) -> None:
        self._rules: tuple[CdnRule, ...] = tuple(rules) if rules is not None else DEFAULT_CDN_RULES
        if not self._rules:
            raise ValueError("at least one CDN rule is required")

    @property
    def providers(self) -> list[str]:
        """Names of all providers known to the detector."""
        return [rule.provider for rule in self._rules]

    def detect_name(self, name: str) -> Optional[str]:
        """Return the provider whose suffix matches ``name``, if any."""
        for rule in self._rules:
            if rule.matches(name):
                return rule.provider
        return None

    def detect_chain(self, cname_chain: Sequence[str]) -> Optional[str]:
        """Return the first provider matched anywhere in a CNAME chain."""
        for name in cname_chain:
            provider = self.detect_name(name)
            if provider is not None:
                return provider
        return None

    def share_by_provider(self, chains: Iterable[Sequence[str]]) -> Mapping[str, float]:
        """Fraction of chains attributed to each provider (detected only).

        Used for Figure 7b/c: the share of the top CDNs among CDN-hosted
        domains.
        """
        counts: Counter[str] = Counter()
        for chain in chains:
            provider = self.detect_chain(chain)
            if provider is not None:
                counts[provider] += 1
        total = sum(counts.values())
        if total == 0:
            return {}
        return {provider: count / total for provider, count in counts.most_common()}

    def detection_ratio(self, chains: Iterable[Sequence[str]]) -> float:
        """Fraction of chains where any CDN was detected (Figure 7a)."""
        total = 0
        detected = 0
        for chain in chains:
            total += 1
            if self.detect_chain(chain) is not None:
                detected += 1
        return detected / total if total else 0.0
