"""repro — reproduction of "A Long Way to the Top" (IMC 2018).

A library for analysing Internet top lists (Alexa, Cisco Umbrella,
Majestic Million): their structure, stability, ranking mechanisms, and
the bias they introduce into measurement studies.  Because the original
study depends on proprietary list archives and live Internet
measurements, the library ships a seeded synthetic Internet
(:mod:`repro.population`) and list-provider simulators
(:mod:`repro.providers`) that exercise the identical analysis code paths;
every analysis also runs on real downloaded list snapshots via
:mod:`repro.listio`.

Typical use::

    from repro import SimulationConfig, run_simulation
    from repro.core import mean_daily_change, intersection_over_time

    run = run_simulation(SimulationConfig.small())
    print(mean_daily_change(run.alexa), mean_daily_change(run.majestic))

Package map:

* :mod:`repro.core` — the paper's analyses (structure, stability, rank
  dynamics, weekly patterns, bias comparison).
* :mod:`repro.scenarios` — named simulation profiles (churn regimes),
  the scenario runner and the golden-run regression harness.
* :mod:`repro.service` — the serving subsystem: persistent archive
  store, domain rank-history index, and the ``repro-serve`` query API.
* :mod:`repro.providers` — Alexa/Umbrella/Majestic list-creation
  simulators, snapshots, archives, the simulation orchestrator.
* :mod:`repro.population` — the synthetic Internet and its traffic.
* :mod:`repro.measurement` — the Section-8 measurement harness.
* :mod:`repro.ranking` — the Section-7 ranking-mechanism experiments.
* :mod:`repro.survey` — the Section-3 literature survey.
* :mod:`repro.interning` — the shared domain ↔ uint32 id space every
  layer above runs on (columnar snapshots, id-set analyses, the
  persisted store table).
* :mod:`repro.domain`, :mod:`repro.dns`, :mod:`repro.web`,
  :mod:`repro.routing`, :mod:`repro.stats` — substrates.
"""

from repro.interning import DomainInterner, default_interner
from repro.population.config import SimulationConfig
from repro.providers.base import ListArchive, ListSnapshot
from repro.providers.simulation import SimulationRun, run_profile, run_simulation
from repro.scenarios import (
    ScenarioReport,
    ScenarioRunner,
    SimulationProfile,
    get_profile,
    profile_names,
    run_scenario,
)
from repro.service import ArchiveStore, DomainIndex, QueryService

__version__ = "1.1.0"

__all__ = [
    "ArchiveStore",
    "DomainIndex",
    "DomainInterner",
    "ListArchive",
    "ListSnapshot",
    "QueryService",
    "ScenarioReport",
    "ScenarioRunner",
    "SimulationConfig",
    "SimulationProfile",
    "SimulationRun",
    "__version__",
    "default_interner",
    "get_profile",
    "profile_names",
    "run_profile",
    "run_scenario",
    "run_simulation",
]
