"""Routing substrate: prefix matching and origin-AS mapping.

Section 8.1.2 of the paper maps every resolved A record to the Autonomous
System announcing it in BGP (using Route Views data), then studies AS
diversity and the share of the top-5 ASes per list.  This package
provides a longest-prefix-match trie over IPv4/IPv6 prefixes and an AS
database assembled from announced prefixes.
"""

from repro.routing.asdb import AsDatabase, AsInfo
from repro.routing.prefix_trie import IpPrefix, PrefixTrie

__all__ = ["AsDatabase", "AsInfo", "IpPrefix", "PrefixTrie"]
