"""Route-Views-style origin-AS database.

Maps announced prefixes to the Autonomous System originating them and
answers "which AS announces this address?" queries, as the paper does
for every A record of every list (Section 8.1.2, Figure 7d).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence

from repro.routing.prefix_trie import PrefixTrie


@dataclass(frozen=True)
class AsInfo:
    """An Autonomous System: number and human-readable operator name."""

    asn: int
    name: str

    def __post_init__(self) -> None:
        if self.asn <= 0:
            raise ValueError("AS number must be positive")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name} ({self.asn})"


class AsDatabase:
    """Prefix-to-origin-AS mapping with aggregate share statistics."""

    def __init__(self) -> None:
        self._trie: PrefixTrie[AsInfo] = PrefixTrie()
        self._as_by_number: dict[int, AsInfo] = {}

    def __len__(self) -> int:
        """Number of announced prefixes."""
        return len(self._trie)

    @property
    def autonomous_systems(self) -> list[AsInfo]:
        """All ASes that announce at least one prefix."""
        return sorted(self._as_by_number.values(), key=lambda a: a.asn)

    def announce(self, prefix: str, asn: int, name: Optional[str] = None) -> AsInfo:
        """Register an announcement of ``prefix`` by AS ``asn``."""
        info = self._as_by_number.get(asn)
        if info is None:
            info = AsInfo(asn=asn, name=name or f"AS{asn}")
            self._as_by_number[asn] = info
        elif name is not None and info.name != name and info.name == f"AS{asn}":
            info = AsInfo(asn=asn, name=name)
            self._as_by_number[asn] = info
        self._trie.insert(prefix, info)
        return info

    def bulk_announce(self, announcements: Iterable[tuple[str, int, str]]) -> int:
        """Register many ``(prefix, asn, name)`` announcements."""
        count = 0
        for prefix, asn, name in announcements:
            self.announce(prefix, asn, name)
            count += 1
        return count

    def origin(self, address: str) -> Optional[AsInfo]:
        """Return the AS announcing the most specific prefix covering
        ``address``, or ``None`` for unannounced space."""
        return self._trie.lookup(address)

    def is_routed(self, address: str) -> bool:
        """Return whether ``address`` falls in announced address space.

        The paper only counts "routed" IPv6 addresses towards IPv6
        enablement, so the measurement harness uses this check.
        """
        return self.origin(address) is not None

    # -- aggregate statistics used by Figure 7d / Table 5 ----------------
    def origin_counts(self, addresses: Iterable[str]) -> Counter[AsInfo]:
        """Count how many addresses map to each origin AS."""
        counts: Counter[AsInfo] = Counter()
        for address in addresses:
            info = self.origin(address)
            if info is not None:
                counts[info] += 1
        return counts

    def unique_as_count(self, addresses: Iterable[str]) -> int:
        """Number of distinct ASes covering ``addresses``."""
        return len(self.origin_counts(addresses))

    def top_as_share(self, addresses: Sequence[str], top_n: int = 5) -> Mapping[AsInfo, float]:
        """Share (fraction of mapped addresses) of the ``top_n`` ASes."""
        counts = self.origin_counts(addresses)
        total = sum(counts.values())
        if total == 0:
            return {}
        return {info: count / total for info, count in counts.most_common(top_n)}
