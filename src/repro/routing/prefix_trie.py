"""Longest-prefix-match trie for IPv4 and IPv6 prefixes.

A classic binary (uncompressed) trie keyed on address bits.  It backs the
Route-Views-style origin-AS lookup: insert announced prefixes with their
origin AS, then look up the most specific covering prefix for an address.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Generic, Iterator, Optional, TypeVar, Union

ValueT = TypeVar("ValueT")

_IPNetwork = Union[ipaddress.IPv4Network, ipaddress.IPv6Network]
_IPAddress = Union[ipaddress.IPv4Address, ipaddress.IPv6Address]


@dataclass(frozen=True)
class IpPrefix:
    """A validated IP prefix (IPv4 or IPv6)."""

    network: _IPNetwork

    @classmethod
    def parse(cls, text: str) -> "IpPrefix":
        """Parse ``"a.b.c.d/len"`` or an IPv6 prefix; host bits must be zero."""
        try:
            network = ipaddress.ip_network(text, strict=True)
        except ValueError as exc:
            raise ValueError(f"invalid prefix {text!r}: {exc}") from exc
        return cls(network=network)

    @property
    def version(self) -> int:
        return self.network.version

    @property
    def prefix_length(self) -> int:
        return self.network.prefixlen

    def __str__(self) -> str:  # pragma: no cover - trivial
        return str(self.network)

    def contains(self, address: str) -> bool:
        """Return whether ``address`` falls inside this prefix."""
        addr = ipaddress.ip_address(address)
        if addr.version != self.network.version:
            return False
        return addr in self.network

    def bits(self) -> str:
        """Return the prefix as a bit string of ``prefix_length`` bits."""
        total_bits = 32 if self.network.version == 4 else 128
        packed = int(self.network.network_address)
        return format(packed, f"0{total_bits}b")[: self.network.prefixlen]


class _TrieNode(Generic[ValueT]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self) -> None:
        self.children: list[Optional["_TrieNode[ValueT]"]] = [None, None]
        self.value: Optional[ValueT] = None
        self.has_value = False


class PrefixTrie(Generic[ValueT]):
    """Binary trie mapping IP prefixes to values, with longest-prefix lookup.

    IPv4 and IPv6 prefixes live in separate sub-tries so that the 32-bit
    and 128-bit key spaces never collide.
    """

    def __init__(self) -> None:
        self._roots: dict[int, _TrieNode[ValueT]] = {4: _TrieNode(), 6: _TrieNode()}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @staticmethod
    def _address_bits(address: _IPAddress) -> str:
        total_bits = 32 if address.version == 4 else 128
        return format(int(address), f"0{total_bits}b")

    def insert(self, prefix: Union[str, IpPrefix], value: ValueT) -> None:
        """Insert ``prefix`` with ``value``; re-inserting overwrites."""
        if isinstance(prefix, str):
            prefix = IpPrefix.parse(prefix)
        node = self._roots[prefix.version]
        for bit in prefix.bits():
            idx = int(bit)
            if node.children[idx] is None:
                node.children[idx] = _TrieNode()
            node = node.children[idx]  # type: ignore[assignment]
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def longest_match(self, address: str) -> Optional[tuple[int, ValueT]]:
        """Return ``(prefix_length, value)`` of the most specific covering
        prefix, or ``None`` when no prefix covers ``address``."""
        addr = ipaddress.ip_address(address)
        node = self._roots[addr.version]
        best: Optional[tuple[int, ValueT]] = None
        depth = 0
        if node.has_value:
            best = (0, node.value)  # type: ignore[arg-type]
        for bit in self._address_bits(addr):
            child = node.children[int(bit)]
            if child is None:
                break
            depth += 1
            node = child
            if node.has_value:
                best = (depth, node.value)  # type: ignore[arg-type]
        return best

    def lookup(self, address: str) -> Optional[ValueT]:
        """Return the value of the longest matching prefix, if any."""
        match = self.longest_match(address)
        return None if match is None else match[1]

    def __iter__(self) -> Iterator[tuple[str, ValueT]]:
        """Iterate over (prefix bit-string tagged with version, value) pairs."""
        for version, root in self._roots.items():
            yield from self._walk(root, "", version)

    def _walk(self, node: _TrieNode[ValueT], bits: str, version: int
              ) -> Iterator[tuple[str, ValueT]]:
        if node.has_value:
            yield f"v{version}:{bits}", node.value  # type: ignore[misc]
        for idx, child in enumerate(node.children):
            if child is not None:
                yield from self._walk(child, bits + str(idx), version)
