"""The shared domain ↔ integer-id space behind the columnar core.

Every analysis in the reproduction — intersection, churn, Kendall tau,
stability, the serving layer's inverted index — is a set or rank
operation over ~1M-entry daily lists whose days overlap by ~99%.
Shuttling raw domain *strings* between layers therefore re-hashes and
re-compares the same names millions of times.  This module collapses all
of it into one process-wide, append-only integer ID space:

* :class:`DomainInterner` assigns each distinct domain string a dense
  ``uint32`` id, exactly once, forever (ids are never reused or
  re-ordered, so every cached id-keyed structure stays valid for the
  process lifetime).
* Snapshots store rank-ordered id *columns* (:mod:`array` of uint32)
  instead of string tuples; set algebra runs on ``frozenset[int]``
  sharing one boxed-int object per id; base-domain normalisation becomes
  an O(1) array lookup via a PSL-version-stamped :class:`BaseIdColumn`.
* The serving layer persists the table (see
  :mod:`repro.service.store`), so a restarted process rebuilds the id
  space without re-parsing a single list entry.

The interner is deliberately *not* a cache: entries are never evicted.
Its resident cost is one copy of every distinct domain string ever seen
plus ~40 bytes of id bookkeeping per name — which the columnar layers
repay by never copying those strings again.
"""

from __future__ import annotations

import threading
from array import array
from typing import Iterable, Optional, Sequence

from repro.domain.name import normalise
from repro.domain.psl import PublicSuffixList, default_list

#: Sentinel in a :class:`BaseIdColumn` for "not computed yet".  Real ids
#: are dense from zero, so the maximum uint32 can never collide.
_UNRESOLVED = 0xFFFF_FFFF

#: Distinct PSL generations of base-id columns retained before the
#: oldest is dropped (mirrors ``repro.core.cache._PSL_GENERATION_LIMIT``).
_PSL_GENERATION_LIMIT = 4


def base_of(name: str, psl: PublicSuffixList) -> str:
    """Base domain of ``name``, or the normalised name for bare suffixes.

    The single normalisation rule of the whole pipeline (footnote 6 of
    the paper): :func:`~repro.domain.name.normalise` validates, the PSL
    answers, and a name that *is* a public suffix maps to itself.
    """
    cleaned = normalise(name)
    base = psl.suffix_and_base(cleaned)[1]
    return base if base is not None else cleaned


class BaseIdColumn:
    """Lazy ``domain id -> base-domain id`` column for one PSL version.

    Entries are resolved on first demand (never eagerly: snapshots may
    hold malformed names that analyses legitimately skip, and resolving
    them would raise), then answered by a plain array index.  The column
    is stamped with the PSL's :attr:`~repro.domain.psl.PublicSuffixList.cache_key`;
    a rule change produces a fresh column, so stale normalisations can
    never be served.
    """

    __slots__ = ("_interner", "_psl", "_ids", "psl_key")

    def __init__(self, interner: "DomainInterner", psl: PublicSuffixList) -> None:
        self._interner = interner
        self._psl = psl
        self._ids = array("I")
        self.psl_key = psl.cache_key

    def base_id(self, domain_id: int) -> int:
        """The base domain's id for ``domain_id`` (resolved on demand)."""
        ids = self._ids
        if domain_id >= len(ids):
            # Live appends grow the interner while readers resolve; the
            # extend runs under the interner's lock so two threads cannot
            # interleave their length reads and stack duplicate padding.
            with self._interner._lock:
                if domain_id >= len(ids):
                    ids.extend([_UNRESOLVED] * (self._interner._size() - len(ids)))
        resolved = ids[domain_id]
        if resolved == _UNRESOLVED:
            base = base_of(self._interner.domain(domain_id), self._psl)
            resolved = self._interner.intern(base)
            with self._interner._lock:
                if resolved >= len(ids):
                    # Interning the base may have grown the id space.
                    ids.extend([_UNRESOLVED] * (self._interner._size() - len(ids)))
                ids[domain_id] = resolved
        return resolved

    def seed(self, domain_id: int, base_id: int) -> None:
        """Install a known mapping (the store's replay path).

        The caller asserts ``base_id`` is what :func:`base_of` would
        answer under this column's PSL version; an already-resolved
        entry is left untouched.
        """
        ids = self._ids
        if domain_id >= len(ids):
            ids.extend([_UNRESOLVED] * (self._interner._size() - len(ids)))
        if ids[domain_id] == _UNRESOLVED:
            ids[domain_id] = base_id


class DomainInterner:
    """Append-only bijection between domain strings and dense uint32 ids.

    Ids are assigned in first-sighting order and never change; the
    reverse mapping is a plain list index.  One boxed ``int`` object is
    kept per id (:attr:`boxed`), so every ``frozenset[int]`` built from
    id columns shares those objects instead of re-boxing per day.
    Thread-safe for concurrent interning (the serving layer appends
    under its own lock, but provider simulations may run in threads).
    """

    __slots__ = ("_domains", "_ids", "boxed", "_lock", "_base_columns")

    def __init__(self) -> None:
        self._domains: list[str] = []
        self._ids: dict[str, int] = {}
        #: id -> the shared boxed int for that id (``boxed[i] is`` stable).
        self.boxed: list[int] = []
        self._lock = threading.Lock()
        self._base_columns: dict[tuple[int, int], BaseIdColumn] = {}

    def _size(self) -> int:
        return len(self._domains)

    def __len__(self) -> int:
        return len(self._domains)

    def __contains__(self, domain: str) -> bool:
        return domain in self._ids

    def intern(self, domain: str) -> int:
        """The id of ``domain``, assigning the next dense id if new."""
        ids = self._ids
        found = ids.get(domain)
        if found is not None:
            return found
        with self._lock:
            found = ids.get(domain)
            if found is None:
                found = len(self._domains)
                self._domains.append(domain)
                self.boxed.append(found)
                ids[domain] = found
        return found

    def intern_many(self, domains: Iterable[str]) -> array:
        """Intern a sequence of names into a rank-ordered uint32 column."""
        intern = self.intern
        return array("I", (intern(name) for name in domains))

    def id_of(self, domain: str) -> Optional[int]:
        """The id of ``domain`` if it was ever interned, else ``None``."""
        return self._ids.get(domain)

    def domain(self, domain_id: int) -> str:
        """The domain string of ``domain_id`` (list index, no hashing)."""
        return self._domains[domain_id]

    def domains(self, domain_ids: Sequence[int]) -> tuple[str, ...]:
        """Materialise an id column back into a string tuple."""
        return tuple(map(self._domains.__getitem__, domain_ids))

    def id_set(self, domain_ids: Sequence[int]) -> frozenset[int]:
        """A frozenset over ``domain_ids`` sharing the boxed-int objects.

        ``frozenset(array)`` would box every value anew on every call;
        routing through :attr:`boxed` makes day-over-day id sets share
        one int object per domain, which is what keeps 30 days × 3
        providers of cached per-day sets cheap.
        """
        return frozenset(map(self.boxed.__getitem__, domain_ids))

    def base_column(self, psl: Optional[PublicSuffixList] = None) -> BaseIdColumn:
        """The base-id column for ``psl`` (created per rule-set version).

        Superseded versions of the same PSL instance are dropped
        immediately; distinct instances are bounded like every other
        PSL-keyed cache in the pipeline.
        """
        psl = psl or default_list()
        key = psl.cache_key
        column = self._base_columns.get(key)
        if column is None:
            stale = [k for k in self._base_columns
                     if k[0] == key[0] and k[1] < key[1]]
            for old in stale:
                del self._base_columns[old]
            while len(self._base_columns) >= _PSL_GENERATION_LIMIT:
                del self._base_columns[next(iter(self._base_columns))]
            column = BaseIdColumn(self, psl)
            self._base_columns[key] = column
        return column


_DEFAULT_INTERNER: Optional[DomainInterner] = None


def default_interner() -> DomainInterner:
    """The process-wide interner every layer shares (built lazily).

    One table means ids are comparable across snapshots, archives,
    providers, the analysis caches and the serving layer — which is the
    entire point: an id assigned at parse time is the same id the
    inverted index keys its postings on.
    """
    global _DEFAULT_INTERNER
    if _DEFAULT_INTERNER is None:
        _DEFAULT_INTERNER = DomainInterner()
    return _DEFAULT_INTERNER
