"""Literature-survey substrate (Section 3, Table 1).

The paper surveys 687 papers published at 10 networking venues in 2017,
finds the 69 that use a top list, and classifies how they use it.  This
package provides:

* a corpus model (:mod:`repro.survey.corpus`) with the paper's survey
  encoded as a reference dataset,
* the keyword matcher and classification helpers the survey methodology
  describes (:mod:`repro.survey.classify`), reusable on new corpora,
* Table-1 generation (:mod:`repro.survey.tables`).
"""

from repro.survey.classify import (
    Dependence,
    ListUsage,
    match_keywords,
    is_false_positive,
)
from repro.survey.corpus import Paper, SurveyCorpus, Venue, reference_corpus
from repro.survey.tables import (
    list_usage_histogram,
    replicability_summary,
    venue_usage_table,
)

__all__ = [
    "Dependence",
    "ListUsage",
    "Paper",
    "SurveyCorpus",
    "Venue",
    "is_false_positive",
    "list_usage_histogram",
    "match_keywords",
    "reference_corpus",
    "replicability_summary",
    "venue_usage_table",
]
