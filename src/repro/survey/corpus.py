"""Survey corpus model and the paper's reference survey data.

:func:`reference_corpus` rebuilds the paper's 2017 survey as a corpus of
:class:`Paper` records whose aggregation reproduces Table 1 exactly: the
per-venue paper counts, top-list user counts, dependence classes (Y/V/N),
date documentation, and the global histogram of list subsets used.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional, Sequence

from repro.survey.classify import Dependence, ListFamily, ListUsage


@dataclass(frozen=True)
class Venue:
    """A publication venue covered by the survey."""

    name: str
    area: str
    total_papers: int


@dataclass(frozen=True)
class Paper:
    """One surveyed paper and its top-list usage classification."""

    identifier: str
    venue: str
    uses_top_list: bool
    usages: tuple[ListUsage, ...] = ()
    dependence: Optional[Dependence] = None
    states_list_date: bool = False
    states_measurement_date: bool = False
    purpose: str = ""
    layers: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.uses_top_list and self.dependence is None:
            raise ValueError("papers using a top list need a dependence class")
        if not self.uses_top_list and self.usages:
            raise ValueError("papers not using a top list cannot have usages")

    @property
    def replicable_basics(self) -> bool:
        """Both the list date and measurement date are documented."""
        return self.states_list_date and self.states_measurement_date


@dataclass
class SurveyCorpus:
    """A collection of surveyed papers and their venues."""

    venues: dict[str, Venue] = field(default_factory=dict)
    papers: list[Paper] = field(default_factory=list)

    def add_venue(self, venue: Venue) -> None:
        self.venues[venue.name] = venue

    def add_paper(self, paper: Paper) -> None:
        if paper.venue not in self.venues:
            raise KeyError(f"unknown venue {paper.venue!r}")
        self.papers.append(paper)

    def __len__(self) -> int:
        return len(self.papers)

    def __iter__(self) -> Iterator[Paper]:
        return iter(self.papers)

    def papers_at(self, venue: str) -> list[Paper]:
        """Papers recorded for ``venue``."""
        return [p for p in self.papers if p.venue == venue]

    def users(self, venue: Optional[str] = None) -> list[Paper]:
        """Papers that use at least one top list (optionally per venue)."""
        papers = self.papers if venue is None else self.papers_at(venue)
        return [p for p in papers if p.uses_top_list]

    def usage_share(self, venue: Optional[str] = None) -> float:
        """Share of papers using a top list."""
        if venue is None:
            total = sum(v.total_papers for v in self.venues.values())
        else:
            total = self.venues[venue].total_papers
        if total == 0:
            return 0.0
        return len(self.users(venue)) / total


# ---------------------------------------------------------------------------
# Reference data: Table 1 of the paper.
# ---------------------------------------------------------------------------

#: (venue, area, total papers, users, dependent Y, V, N, list date, study date)
REFERENCE_VENUES: tuple[tuple[str, str, int, int, int, int, int, int, int], ...] = (
    ("ACM IMC", "Measurements", 42, 11, 8, 2, 1, 1, 3),
    ("PAM", "Measurements", 20, 4, 3, 1, 0, 0, 0),
    ("TMA", "Measurements", 19, 3, 1, 1, 1, 0, 0),
    ("USENIX Security", "Security", 85, 12, 8, 4, 0, 2, 0),
    ("IEEE S&P", "Security", 60, 5, 3, 2, 0, 1, 1),
    ("ACM CCS", "Security", 151, 11, 4, 5, 2, 1, 1),
    ("NDSS", "Security", 68, 3, 2, 0, 1, 0, 0),
    ("ACM CoNEXT", "Systems", 40, 4, 2, 1, 1, 0, 1),
    ("ACM SIGCOMM", "Systems", 38, 3, 3, 0, 0, 0, 0),
    ("WWW", "Web Tech.", 164, 13, 11, 1, 1, 2, 3),
)

#: Global histogram of list subsets used across the 69 papers (Table 1 right);
#: multiple counts per paper are possible.
REFERENCE_LIST_USAGE: tuple[tuple[str, str, int], ...] = (
    ("alexa", "1M", 29), ("alexa", "100k", 2), ("alexa", "75k", 1),
    ("alexa", "50k", 2), ("alexa", "25k", 2), ("alexa", "20k", 1),
    ("alexa", "16k", 1), ("alexa", "10k", 11), ("alexa", "8k", 1),
    ("alexa", "5k", 2), ("alexa", "1k", 5), ("alexa", "500", 8),
    ("alexa", "400", 1), ("alexa", "300", 1), ("alexa", "200", 1),
    ("alexa", "100", 8), ("alexa", "50", 3), ("alexa", "10", 1),
    ("alexa", "country", 2), ("alexa", "category", 2),
    ("umbrella", "1M", 3), ("umbrella", "1k", 1),
)

#: Broad purposes assigned to studies (Section 3.3), cycled over users.
_REFERENCE_PURPOSES: tuple[str, ...] = (
    "security", "privacy & censorship", "performance", "economics", "web content",
)

#: Network layers measured (Section 3.3), cycled over users.
_REFERENCE_LAYERS: tuple[tuple[str, ...], ...] = (
    ("content",), ("http",), ("application",), ("dns",), ("tcp",),
    ("ip",), ("tls",), ("dns", "ip", "tls"),
)


def reference_corpus() -> SurveyCorpus:
    """Rebuild the paper's survey as a corpus reproducing Table 1.

    Paper records are synthetic (identified ``<venue>-NN``) but their
    aggregate statistics match the published table: venue totals, user
    counts, Y/V/N dependence, date documentation (including that exactly
    two papers document both dates), and the global list-usage histogram.
    """
    corpus = SurveyCorpus()
    usage_pool: list[ListUsage] = []
    for family, subset, count in REFERENCE_LIST_USAGE:
        usage_pool.extend([ListUsage(ListFamily(family), subset)] * count)
    # Every using paper gets at least one usage; remaining usages are
    # distributed round-robin so multi-list papers exist (Section 3.2).
    total_users = sum(v[3] for v in REFERENCE_VENUES)
    base_usages = usage_pool[:total_users]
    extra_usages = usage_pool[total_users:]

    user_index = 0
    purpose_index = 0
    for venue_name, area, total, users, dep_y, dep_v, dep_n, date_list, date_study in REFERENCE_VENUES:
        corpus.add_venue(Venue(name=venue_name, area=area, total_papers=total))
        dependence_sequence = ([Dependence.DEPENDENT] * dep_y
                               + [Dependence.VERIFICATION] * dep_v
                               + [Dependence.INDEPENDENT] * dep_n)
        if len(dependence_sequence) != users:
            raise ValueError(f"inconsistent reference data for {venue_name}")
        for local_index in range(users):
            usages = [base_usages[user_index]]
            # Distribute the surplus usages deterministically.
            for extra_index, usage in enumerate(extra_usages):
                if extra_index % total_users == user_index:
                    usages.append(usage)
            # Date documentation: the paper finds 7 papers stating the list
            # date, 9 the measurement date, but only 2 stating both.  We
            # therefore assign the two date kinds to disjoint papers at all
            # venues except WWW, whose first two users state both.
            states_list_date = local_index < date_list
            if venue_name == "WWW":
                states_measurement_date = local_index < date_study
            else:
                states_measurement_date = local_index >= users - date_study
            paper = Paper(
                identifier=f"{venue_name}-{local_index + 1:02d}",
                venue=venue_name,
                uses_top_list=True,
                usages=tuple(usages),
                dependence=dependence_sequence[local_index],
                states_list_date=states_list_date,
                states_measurement_date=states_measurement_date,
                purpose=_REFERENCE_PURPOSES[purpose_index % len(_REFERENCE_PURPOSES)],
                layers=_REFERENCE_LAYERS[purpose_index % len(_REFERENCE_LAYERS)],
            )
            corpus.add_paper(paper)
            user_index += 1
            purpose_index += 1
        # Non-user papers are recorded in aggregate form: one Paper each,
        # without usages, so the corpus length matches the venue totals.
        for filler_index in range(total - users):
            corpus.add_paper(Paper(
                identifier=f"{venue_name}-x{filler_index + 1:03d}",
                venue=venue_name,
                uses_top_list=False,
            ))
    return corpus


def build_corpus(venues: Iterable[Venue], papers: Sequence[Paper]) -> SurveyCorpus:
    """Assemble a corpus from user-supplied venues and papers."""
    corpus = SurveyCorpus()
    for venue in venues:
        corpus.add_venue(venue)
    for paper in papers:
        corpus.add_paper(paper)
    return corpus
