"""Survey classification helpers (Section 3.1 methodology).

The paper searches paper texts for the keywords "alexa", "umbrella" and
"majestic", manually removes false positives (Amazon's Alexa assistant,
authors named Alexander, ...), and classifies each remaining paper by the
list subsets used, whether the results depend on the list, and whether
the list/measurement dates are documented.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Optional

#: The paper's search keywords (footnote 2).
SURVEY_KEYWORDS: tuple[str, ...] = ("alexa", "umbrella", "majestic")

#: Phrases that indicate a keyword hit is *not* a top-list reference.
_FALSE_POSITIVE_PATTERNS: tuple[re.Pattern[str], ...] = (
    re.compile(r"amazon\s+alexa", re.IGNORECASE),
    re.compile(r"alexa\s+(echo|assistant|skill|voice)", re.IGNORECASE),
    re.compile(r"alexand(er|ra|re)", re.IGNORECASE),
    re.compile(r"umbrella\s+(term|organisation|organization|review)", re.IGNORECASE),
    re.compile(r"majestic\s+(view|mountain|scenery)", re.IGNORECASE),
)


class Dependence(enum.Enum):
    """How a study's results relate to the top list used (Section 3.4)."""

    DEPENDENT = "Y"       # results may change with a different list
    VERIFICATION = "V"    # list only used to verify independent results
    INDEPENDENT = "N"     # list is one source among many


class ListFamily(enum.Enum):
    """Which provider's list a study used."""

    ALEXA = "alexa"
    UMBRELLA = "umbrella"
    MAJESTIC = "majestic"


@dataclass(frozen=True)
class ListUsage:
    """One list (subset) used by a paper, e.g. "Alexa Global Top 10k"."""

    family: ListFamily
    subset: str  # e.g. "1M", "10k", "100", "country", "category"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.family.value}-{self.subset}"


def match_keywords(text: str, keywords: tuple[str, ...] = SURVEY_KEYWORDS) -> list[str]:
    """Return the survey keywords that occur in ``text`` (case-insensitive).

    Matches whole words only, so an author named "Alexander" does not match
    "alexa" (that case is additionally covered by the false-positive check).
    """
    found: list[str] = []
    lowered = text.lower()
    for keyword in keywords:
        if re.search(rf"\b{re.escape(keyword)}\b", lowered):
            found.append(keyword)
    return found


def is_false_positive(text: str) -> bool:
    """Heuristically decide whether keyword hits in ``text`` are spurious.

    Mirrors the paper's manual filtering step: a text that only mentions
    Amazon's Alexa assistant or a person called Alexander is not a top-list
    user.  A text that also contains ranking-related vocabulary is kept.
    """
    hits = match_keywords(text)
    if not hits:
        return True
    ranking_vocabulary = re.search(
        r"\b(top\s*1m|top\s*1k|top\s*\d+k?|ranking|ranked|top list|popular (domains|websites|sites))\b",
        text, re.IGNORECASE)
    if ranking_vocabulary:
        return False
    return any(pattern.search(text) for pattern in _FALSE_POSITIVE_PATTERNS)


def parse_subset(label: str) -> Optional[ListUsage]:
    """Parse a usage label like ``"alexa-10k"`` or ``"umbrella-1M"``."""
    label = label.strip().lower()
    if "-" not in label:
        return None
    family_text, subset = label.split("-", 1)
    try:
        family = ListFamily(family_text)
    except ValueError:
        return None
    if not subset:
        return None
    return ListUsage(family=family, subset=subset)
