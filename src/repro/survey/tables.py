"""Table 1 generation from a survey corpus."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping

from repro.survey.classify import Dependence
from repro.survey.corpus import SurveyCorpus


@dataclass(frozen=True)
class VenueUsageRow:
    """One row of Table 1 (left): top-list use at one venue."""

    venue: str
    area: str
    total_papers: int
    using: int
    dependent: int
    verification: int
    independent: int
    states_list_date: int
    states_measurement_date: int

    @property
    def usage_share(self) -> float:
        """Share of the venue's papers that use a top list."""
        return self.using / self.total_papers if self.total_papers else 0.0


def venue_usage_table(corpus: SurveyCorpus) -> list[VenueUsageRow]:
    """Compute Table 1 (left): per-venue usage and dependence counts."""
    rows: list[VenueUsageRow] = []
    for venue in corpus.venues.values():
        users = corpus.users(venue.name)
        dependence_counts = Counter(p.dependence for p in users)
        rows.append(VenueUsageRow(
            venue=venue.name,
            area=venue.area,
            total_papers=venue.total_papers,
            using=len(users),
            dependent=dependence_counts.get(Dependence.DEPENDENT, 0),
            verification=dependence_counts.get(Dependence.VERIFICATION, 0),
            independent=dependence_counts.get(Dependence.INDEPENDENT, 0),
            states_list_date=sum(p.states_list_date for p in users),
            states_measurement_date=sum(p.states_measurement_date for p in users),
        ))
    return rows


def totals_row(rows: list[VenueUsageRow]) -> VenueUsageRow:
    """Aggregate the per-venue rows into the Table 1 'Total' row."""
    return VenueUsageRow(
        venue="Total",
        area="",
        total_papers=sum(r.total_papers for r in rows),
        using=sum(r.using for r in rows),
        dependent=sum(r.dependent for r in rows),
        verification=sum(r.verification for r in rows),
        independent=sum(r.independent for r in rows),
        states_list_date=sum(r.states_list_date for r in rows),
        states_measurement_date=sum(r.states_measurement_date for r in rows),
    )


def list_usage_histogram(corpus: SurveyCorpus) -> Mapping[str, int]:
    """Compute Table 1 (right): how often each list subset is used.

    Multiple usages by one paper count multiple times, as in the paper.
    """
    counts: Counter[str] = Counter()
    for paper in corpus.users():
        for usage in paper.usages:
            counts[str(usage)] += 1
    return dict(counts)


@dataclass(frozen=True)
class ReplicabilitySummary:
    """Section 3.5: how many studies document list/measurement dates."""

    users: int
    states_list_date: int
    states_measurement_date: int
    states_both: int

    @property
    def share_with_both(self) -> float:
        return self.states_both / self.users if self.users else 0.0


def replicability_summary(corpus: SurveyCorpus) -> ReplicabilitySummary:
    """Summarise date documentation across all top-list-using papers."""
    users = corpus.users()
    return ReplicabilitySummary(
        users=len(users),
        states_list_date=sum(p.states_list_date for p in users),
        states_measurement_date=sum(p.states_measurement_date for p in users),
        states_both=sum(p.replicable_basics for p in users),
    )
