"""Core analysis library.

This package is the paper's primary contribution re-implemented as a
reusable toolkit: given one or more top-list archives (simulated or real),
it computes every structural, stability, rank-dynamics, weekly-pattern and
result-bias statistic the paper reports.

Modules map to the paper's sections:

* :mod:`repro.core.structure` — Section 5.1 (TLD coverage, subdomain
  depth, base domains, aliases) and the Table 2 structure columns.
* :mod:`repro.core.intersection` — Section 5.2/5.3 (list intersections,
  disjunct domains).
* :mod:`repro.core.stability` — Section 6.1 (daily changes, new domains,
  cumulative growth, decay against a reference day, days-in-list CDF).
* :mod:`repro.core.rank_dynamics` — Section 6.1/6.3 (churn by rank
  subset, Kendall's tau, per-domain rank variation).
* :mod:`repro.core.weekly` — Section 6.2 (weekday/weekend KS distances,
  SLD-group dynamics).
* :mod:`repro.core.bias` — Section 8 (top list vs general population
  comparison with the paper's significance marking).
"""

from repro.core.bias import CharacteristicComparison, ComparisonCell, ComparisonTable
from repro.core.cache import (
    archive_alternating_half_ranks,
    archive_base_domain_sets,
    archive_base_id_sets,
    archive_domain_sets,
    archive_id_sets,
    archive_rank_partition,
    archive_rank_partition_ids,
    archive_rank_series,
    archive_rank_series_ids,
    archive_sld_count_events,
    snapshot_base_domains,
    snapshot_base_ids,
)
from repro.core.interning import BaseIdColumn, DomainInterner, default_interner
from repro.core.recommendations import (
    Finding,
    RecommendationReport,
    Severity,
    StudyPlan,
    StudyPurpose,
    evaluate_study_plan,
)
from repro.core.intersection import (
    aggregate_top,
    disjunct_domains,
    intersection_matrix,
    intersection_over_time,
    pairwise_intersection,
)
from repro.core.rank_dynamics import (
    RankVariation,
    churn_by_rank,
    kendall_tau_series,
    rank_variation,
)
from repro.core.stability import (
    cumulative_unique_domains,
    daily_changes,
    days_in_list,
    intersection_with_reference,
    mean_daily_change,
    new_domains_per_day,
)
from repro.core.structure import (
    StructureSummary,
    alias_count,
    base_domain_share,
    normalise_to_base_domains,
    structure_summary,
    subdomain_depth_distribution,
    summarise_archive,
)
from repro.core.weekly import (
    sld_group_dynamics,
    weekday_weekend_ks,
    within_group_ks,
)

__all__ = [
    "BaseIdColumn",
    "CharacteristicComparison",
    "ComparisonCell",
    "ComparisonTable",
    "DomainInterner",
    "Finding",
    "RankVariation",
    "RecommendationReport",
    "Severity",
    "StructureSummary",
    "StudyPlan",
    "StudyPurpose",
    "aggregate_top",
    "alias_count",
    "archive_alternating_half_ranks",
    "archive_base_domain_sets",
    "archive_base_id_sets",
    "archive_domain_sets",
    "archive_id_sets",
    "archive_rank_partition",
    "archive_rank_partition_ids",
    "archive_rank_series",
    "archive_rank_series_ids",
    "archive_sld_count_events",
    "base_domain_share",
    "churn_by_rank",
    "cumulative_unique_domains",
    "daily_changes",
    "days_in_list",
    "default_interner",
    "disjunct_domains",
    "evaluate_study_plan",
    "intersection_matrix",
    "intersection_over_time",
    "intersection_with_reference",
    "kendall_tau_series",
    "mean_daily_change",
    "new_domains_per_day",
    "normalise_to_base_domains",
    "pairwise_intersection",
    "rank_variation",
    "sld_group_dynamics",
    "snapshot_base_domains",
    "snapshot_base_ids",
    "structure_summary",
    "subdomain_depth_distribution",
    "summarise_archive",
    "weekday_weekend_ks",
    "within_group_ks",
]
