"""Result-bias comparison between top lists and the general population.

Implements Table 5's structure: for each measured characteristic
(NXDOMAIN share, IPv6/CAA/CDN/TLS/HSTS/HTTP2 adoption, AS concentration,
...), the value for every list (Top-1k and Top-1M scaled subsets) is
compared against a base value (the larger list, or the general
population), and flagged as significantly exceeding (▲), significantly
falling behind (▼), or not deviating (■) per the paper's rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from repro.stats.summary import DeviationFlag, MeanStd, classify_deviation, mean_std


@dataclass(frozen=True)
class ComparisonCell:
    """One cell of the comparison table: a value, its spread, and its flag."""

    target: str
    value: MeanStd
    flag: DeviationFlag

    def render(self, precision: int = 2) -> str:
        """Human-readable cell, e.g. ``"▲ 22.70 ± 0.60"``."""
        return f"{self.flag.value} {self.value.mean:.{precision}f} ± {self.value.std:.{precision}f}"


@dataclass(frozen=True)
class CharacteristicComparison:
    """One row of Table 5: a characteristic measured across targets."""

    characteristic: str
    base_target: str
    base_value: MeanStd
    cells: Mapping[str, ComparisonCell]

    def flag(self, target: str) -> DeviationFlag:
        """Significance flag of ``target`` against the base value."""
        return self.cells[target].flag

    def exaggeration_factor(self, target: str) -> float:
        """How many times larger the target's value is than the base value."""
        base = self.base_value.mean
        if base == 0:
            return float("inf") if self.cells[target].value.mean > 0 else 1.0
        return self.cells[target].value.mean / base

    def distorting_targets(self) -> list[str]:
        """Targets whose value significantly deviates from the base."""
        return [target for target, cell in self.cells.items()
                if cell.flag is not DeviationFlag.NOT_SIGNIFICANT]


@dataclass
class ComparisonTable:
    """A full Table-5-style comparison across characteristics and targets."""

    base_target: str
    rows: dict[str, CharacteristicComparison] = field(default_factory=dict)

    def add_characteristic(self, characteristic: str,
                           values: Mapping[str, Sequence[float] | MeanStd],
                           base_target: Optional[str] = None) -> CharacteristicComparison:
        """Add a row comparing ``values`` per target against the base target.

        ``values`` maps target names (e.g. ``"alexa-1k"``, ``"com/net/org"``)
        to either a sample of daily measurements or a precomputed
        :class:`MeanStd`.  The base target must be one of the keys.
        """
        base_key = base_target or self.base_target
        if base_key not in values:
            raise KeyError(f"base target {base_key!r} missing from values")
        summarised = {
            target: value if isinstance(value, MeanStd) else mean_std(value)
            for target, value in values.items()
        }
        base_value = summarised[base_key]
        cells: dict[str, ComparisonCell] = {}
        for target, value in summarised.items():
            if target == base_key:
                continue
            flag = classify_deviation(value.mean, base_value.mean, value_std=value.std)
            cells[target] = ComparisonCell(target=target, value=value, flag=flag)
        row = CharacteristicComparison(characteristic=characteristic,
                                       base_target=base_key,
                                       base_value=base_value, cells=cells)
        self.rows[characteristic] = row
        return row

    def __len__(self) -> int:
        return len(self.rows)

    def __getitem__(self, characteristic: str) -> CharacteristicComparison:
        return self.rows[characteristic]

    def characteristics(self) -> list[str]:
        """Characteristics (row names) present in the table."""
        return list(self.rows)

    def targets(self) -> list[str]:
        """All non-base targets appearing in at least one row."""
        names: list[str] = []
        for row in self.rows.values():
            for target in row.cells:
                if target not in names:
                    names.append(target)
        return names

    def distortion_summary(self) -> dict[str, float]:
        """Share of rows in which each target significantly deviates.

        The paper's headline: "in almost all cases, top lists significantly
        distort the characteristics of the general population".
        """
        summary: dict[str, float] = {}
        for target in self.targets():
            applicable = [row for row in self.rows.values() if target in row.cells]
            if not applicable:
                continue
            deviating = sum(1 for row in applicable
                            if row.cells[target].flag is not DeviationFlag.NOT_SIGNIFICANT)
            summary[target] = deviating / len(applicable)
        return summary

    def render(self, precision: int = 2) -> str:
        """Render the table as aligned text (one row per characteristic)."""
        targets = self.targets()
        header = ["characteristic"] + targets + [self.base_target]
        lines = ["\t".join(header)]
        for name, row in self.rows.items():
            cells = [row.cells[t].render(precision) if t in row.cells else "-"
                     for t in targets]
            base = f"{row.base_value.mean:.{precision}f} ± {row.base_value.std:.{precision}f}"
            lines.append("\t".join([name] + cells + [base]))
        return "\n".join(lines)


def compare_single_day(characteristic: str,
                       values: Mapping[str, float],
                       base_target: str) -> CharacteristicComparison:
    """Convenience: build a one-row comparison from single-day values.

    Used for the TLS/HSTS rows of Table 5, which the paper measured on a
    single day per list.
    """
    table = ComparisonTable(base_target=base_target)
    samples: dict[str, Iterable[float]] = {k: [v] for k, v in values.items()}
    return table.add_characteristic(characteristic, samples)
