"""Alias of :mod:`repro.interning`, the shared domain ↔ id space.

The implementation lives at the top of the package (next to
:mod:`repro.listio`) because the interner sits *below* every layer:
:mod:`repro.providers.base` interns at snapshot construction and the
analysis package imports the providers, so hosting the real module
inside ``repro.core`` would make the core package's import a cycle.
This alias keeps the documented ``repro.core.interning`` path working.
"""

from repro.interning import (  # noqa: F401
    BaseIdColumn,
    DomainInterner,
    base_of,
    default_interner,
)

__all__ = ["BaseIdColumn", "DomainInterner", "base_of", "default_interner"]
