"""Recommendations for top-list use (Section 9).

The paper closes with concrete advice for studies that use top lists:
match the list to the study purpose, account for stability and weekly
patterns by measuring longitudinally, and document the exact list and
dates.  This module turns that advice into an executable checker: give it
the archives you plan to use and a description of your study, and it
produces the paper's checklist as structured findings.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

from repro.core.stability import daily_changes, mean_daily_change
from repro.core.structure import structure_summary
from repro.core.weekly import weekday_weekend_ks
from repro.providers.base import ListArchive


class StudyPurpose(enum.Enum):
    """Broad study purposes distinguished by the paper's recommendations."""

    WEB_CONTENT = "web content"          # human-visited web sites
    DNS_TRAFFIC = "dns traffic"          # names resolved on the Internet
    PROTOCOL_ADOPTION = "protocol adoption"  # e.g. IPv6/TLS/HTTP2 scans
    GENERAL_POPULATION = "general population"  # claims about "the Internet"


class Severity(enum.Enum):
    """How strongly a finding affects the study's validity."""

    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"


@dataclass(frozen=True)
class Finding:
    """One recommendation-check outcome."""

    check: str
    severity: Severity
    message: str

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return f"[{self.severity.value}] {self.check}: {self.message}"


@dataclass(frozen=True)
class StudyPlan:
    """Description of how a study intends to use top lists."""

    purpose: StudyPurpose
    lists_used: tuple[str, ...]
    measurement_days: int = 1
    documents_list_date: bool = False
    documents_measurement_date: bool = False
    publishes_list_copy: bool = False
    generalises_to_internet: bool = False


#: Which provider mechanisms suit which study purposes (Section 9.1).
_SUITABLE_LISTS: Mapping[StudyPurpose, tuple[str, ...]] = {
    StudyPurpose.WEB_CONTENT: ("alexa", "majestic"),
    StudyPurpose.DNS_TRAFFIC: ("umbrella",),
    StudyPurpose.PROTOCOL_ADOPTION: ("alexa", "umbrella", "majestic"),
    StudyPurpose.GENERAL_POPULATION: (),
}

#: Daily churn (as a fraction of the list) above which one-off
#: measurements are considered unstable.
HIGH_CHURN_THRESHOLD = 0.05
#: Share of domains with disjoint weekday/weekend ranks above which the
#: download day meaningfully changes results.
WEEKLY_PATTERN_THRESHOLD = 0.05


@dataclass
class RecommendationReport:
    """All findings for one study plan."""

    plan: StudyPlan
    findings: list[Finding] = field(default_factory=list)

    def add(self, check: str, severity: Severity, message: str) -> None:
        self.findings.append(Finding(check=check, severity=severity, message=message))

    @property
    def critical(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.CRITICAL]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.findings if f.severity is Severity.WARNING]

    @property
    def passes(self) -> bool:
        """True when no critical findings were raised."""
        return not self.critical

    def render(self) -> str:
        """Human-readable report."""
        lines = [f"Study purpose: {self.plan.purpose.value}; "
                 f"lists: {', '.join(self.plan.lists_used) or '(none)'}"]
        lines.extend(str(finding) for finding in self.findings)
        return "\n".join(lines)


def evaluate_study_plan(plan: StudyPlan,
                        archives: Optional[Mapping[str, ListArchive]] = None,
                        weekend: Sequence[int] = (5, 6)) -> RecommendationReport:
    """Check a study plan against the paper's Section 9 recommendations.

    ``archives`` (optional) supplies the actual list data the study will
    use, enabling the data-driven checks (churn, weekly pattern,
    structural pitfalls); without it only the plan-level checks run.
    """
    report = RecommendationReport(plan=plan)
    _check_list_choice(plan, report)
    _check_documentation(plan, report)
    _check_generalisation(plan, report)
    if archives:
        for name in plan.lists_used:
            archive = archives.get(name)
            if archive is None or len(archive) == 0:
                report.add("data availability", Severity.WARNING,
                           f"no archive provided for {name!r}; stability checks skipped")
                continue
            _check_stability(name, archive, plan, report)
            _check_weekly_pattern(name, archive, plan, report, weekend)
            _check_structure_pitfalls(name, archive, plan, report)
    return report


def _check_list_choice(plan: StudyPlan, report: RecommendationReport) -> None:
    suitable = _SUITABLE_LISTS[plan.purpose]
    if plan.purpose is StudyPurpose.GENERAL_POPULATION:
        report.add("list choice", Severity.CRITICAL,
                   "claims about the general population should be based on a large "
                   "sample such as all com/net/org domains, not on a top list")
        return
    if not plan.lists_used:
        report.add("list choice", Severity.WARNING, "no top list selected")
        return
    for name in plan.lists_used:
        if name not in suitable:
            report.add("list choice", Severity.WARNING,
                       f"{name!r} ranks by a mechanism that does not match a "
                       f"{plan.purpose.value} study (suitable: {', '.join(suitable)})")
    if plan.purpose is StudyPurpose.PROTOCOL_ADOPTION:
        report.add("list choice", Severity.INFO,
                   "top lists significantly exaggerate protocol adoption relative to "
                   "the general population; report results as an upper bound")


def _check_documentation(plan: StudyPlan, report: RecommendationReport) -> None:
    if not plan.documents_list_date:
        report.add("documentation", Severity.CRITICAL,
                   "the list download date is not documented (only 7 of 69 surveyed "
                   "papers did); results cannot be replicated without it")
    if not plan.documents_measurement_date:
        report.add("documentation", Severity.CRITICAL,
                   "the measurement date is not documented (only 9 of 69 surveyed papers did)")
    if not plan.publishes_list_copy:
        report.add("documentation", Severity.WARNING,
                   "consider publishing the exact list copy with the paper's dataset")


def _check_generalisation(plan: StudyPlan, report: RecommendationReport) -> None:
    if plan.generalises_to_internet and plan.purpose is not StudyPurpose.GENERAL_POPULATION:
        report.add("generalisation", Severity.WARNING,
                   "conclusions drawn from top-list domains generally do not "
                   "generalise to the Internet at large (Section 9)")


def _check_stability(name: str, archive: ListArchive, plan: StudyPlan,
                     report: RecommendationReport) -> None:
    if len(archive) < 2:
        report.add("stability", Severity.WARNING,
                   f"{name}: a single snapshot cannot reveal churn; obtain several days")
        return
    churn = mean_daily_change(archive) / max(1, len(archive[0]))
    if churn > HIGH_CHURN_THRESHOLD and plan.measurement_days <= 1:
        report.add("stability", Severity.CRITICAL,
                   f"{name}: {100 * churn:.1f}% of the list changes per day but the study "
                   "measures only once; repeat measurements and aggregate")
    elif churn > HIGH_CHURN_THRESHOLD:
        report.add("stability", Severity.INFO,
                   f"{name}: {100 * churn:.1f}% daily churn; the planned "
                   f"{plan.measurement_days}-day repetition is appropriate")
    else:
        report.add("stability", Severity.INFO,
                   f"{name}: daily churn is low ({100 * churn:.1f}%)")
    # Abrupt regime changes (like Alexa's in January 2018).
    changes = list(daily_changes(archive).values())
    if changes:
        largest = max(changes)
        typical = sorted(changes)[len(changes) // 2]
        if typical > 0 and largest > 5 * typical:
            report.add("stability", Severity.WARNING,
                       f"{name}: the list's characteristics changed abruptly during the "
                       "period (largest daily change is >5x the median); check for "
                       "unannounced provider-side changes")


def _check_weekly_pattern(name: str, archive: ListArchive, plan: StudyPlan,
                          report: RecommendationReport,
                          weekend: Sequence[int]) -> None:
    distances = weekday_weekend_ks(archive, weekend=weekend)
    if not distances:
        return
    disjoint = sum(1 for v in distances.values() if v >= 0.999) / len(distances)
    if disjoint > WEEKLY_PATTERN_THRESHOLD:
        severity = Severity.WARNING if plan.measurement_days < 7 else Severity.INFO
        report.add("weekly pattern", severity,
                   f"{name}: {100 * disjoint:.1f}% of domains rank disjointly on weekends; "
                   "results depend on the weekday of the list download")


def _check_structure_pitfalls(name: str, archive: ListArchive, plan: StudyPlan,
                              report: RecommendationReport) -> None:
    summary = structure_summary(archive[-1])
    if summary.invalid_tld_domains > 0:
        report.add("structure", Severity.WARNING,
                   f"{name}: {summary.invalid_tld_domains} entries use invalid TLDs and "
                   "will never resolve; filter them before measuring")
    if summary.base_domain_share < 0.6 and plan.purpose is StudyPurpose.WEB_CONTENT:
        report.add("structure", Severity.WARNING,
                   f"{name}: {100 * (1 - summary.base_domain_share):.0f}% of entries are "
                   "subdomains (FQDNs); a web-content study should normalise to base domains")
