"""Weekly-pattern analysis (Section 6.2, Figure 3).

Two analyses:

* the per-domain Kolmogorov-Smirnov distance between the distribution of
  its ranks on weekdays and on weekends (Figure 3a), including the
  weekday-vs-weekday / weekend-vs-weekend control;
* the dynamics of second-level-domain (SLD) groups whose membership count
  in the list differs by more than a threshold between weekdays and
  weekends (Figures 3b/3c), which the paper uses to show that
  leisure-oriented domains gain on weekends and office platforms lose.
"""

from __future__ import annotations

import datetime as dt
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.domain.name import DomainName
from repro.domain.psl import PublicSuffixList
from repro.providers.base import ListArchive
from repro.stats.ks import ks_distance

_DEFAULT_PSL = PublicSuffixList()

#: Saturday and Sunday (Python weekday numbers), the paper's weekend.
WEEKEND_WEEKDAYS: tuple[int, ...] = (5, 6)


def _is_weekend(date: dt.date, weekend: Sequence[int]) -> bool:
    return date.weekday() in weekend


def weekday_weekend_ks(archive: ListArchive, top_n: Optional[int] = None,
                       weekend: Sequence[int] = WEEKEND_WEEKDAYS,
                       min_observations: int = 2) -> dict[str, float]:
    """Per-domain KS distance between weekday and weekend rank distributions.

    Only domains with at least ``min_observations`` ranks in *both* groups
    are reported.  A value of 1.0 means the two distributions share no
    common rank (the paper finds ~35% such domains in the late Alexa list).
    """
    snapshots = archive.snapshots()
    if top_n is not None:
        snapshots = [s.top(top_n) for s in snapshots]
    weekday_ranks: dict[str, list[int]] = defaultdict(list)
    weekend_ranks: dict[str, list[int]] = defaultdict(list)
    for snapshot in snapshots:
        target = weekend_ranks if _is_weekend(snapshot.date, weekend) else weekday_ranks
        for rank, domain in enumerate(snapshot.entries, start=1):
            target[domain].append(rank)
    distances: dict[str, float] = {}
    for domain in set(weekday_ranks) | set(weekend_ranks):
        on_weekdays = weekday_ranks.get(domain, [])
        on_weekends = weekend_ranks.get(domain, [])
        if len(on_weekdays) < min_observations or len(on_weekends) < min_observations:
            continue
        distances[domain] = ks_distance(on_weekdays, on_weekends)
    return distances


def within_group_ks(archive: ListArchive, top_n: Optional[int] = None,
                    weekend: Sequence[int] = WEEKEND_WEEKDAYS,
                    use_weekends: bool = False,
                    min_observations: int = 2) -> dict[str, float]:
    """Control comparison: KS distance between two halves of the *same* group.

    The paper contrasts the weekday-vs-weekend distances with
    weekday-vs-weekday (and weekend-vs-weekend) distances, which stay very
    small.  The halves are formed by alternating the group's days.
    """
    snapshots = archive.snapshots()
    if top_n is not None:
        snapshots = [s.top(top_n) for s in snapshots]
    selected = [s for s in snapshots if _is_weekend(s.date, weekend) == use_weekends]
    first_half: dict[str, list[int]] = defaultdict(list)
    second_half: dict[str, list[int]] = defaultdict(list)
    for index, snapshot in enumerate(selected):
        target = first_half if index % 2 == 0 else second_half
        for rank, domain in enumerate(snapshot.entries, start=1):
            target[domain].append(rank)
    distances: dict[str, float] = {}
    for domain in set(first_half) | set(second_half):
        a = first_half.get(domain, [])
        b = second_half.get(domain, [])
        if len(a) < min_observations or len(b) < min_observations:
            continue
        distances[domain] = ks_distance(a, b)
    return distances


@dataclass(frozen=True)
class SldGroupDynamics:
    """Weekday/weekend behaviour of one SLD group (Figure 3b/3c)."""

    group: str
    weekday_mean: float
    weekend_mean: float
    series: Mapping[dt.date, int]

    @property
    def relative_change(self) -> float:
        """Relative weekend-vs-weekday change in group membership count."""
        base = max(self.weekday_mean, 1e-9)
        return (self.weekend_mean - self.weekday_mean) / base

    @property
    def more_popular_on_weekends(self) -> bool:
        return self.weekend_mean > self.weekday_mean


def sld_group_dynamics(archive: ListArchive, top_n: Optional[int] = None,
                       threshold: float = 0.4,
                       weekend: Sequence[int] = WEEKEND_WEEKDAYS,
                       min_group_size: int = 3,
                       psl: Optional[PublicSuffixList] = None
                       ) -> dict[str, SldGroupDynamics]:
    """SLD groups whose list membership varies by more than ``threshold``
    between weekdays and weekends.

    Groups domains by the label left of the public suffix (all
    ``blogspot.*`` names form one group), counts the group's members per
    day, and reports groups whose weekday/weekend mean counts differ by
    more than ``threshold`` (40% in the paper).
    """
    psl = psl or _DEFAULT_PSL
    snapshots = archive.snapshots()
    if top_n is not None:
        snapshots = [s.top(top_n) for s in snapshots]
    all_dates = [s.date for s in snapshots]
    series: dict[str, dict[dt.date, int]] = defaultdict(dict)
    for snapshot in snapshots:
        counts: Counter[str] = Counter()
        for domain in snapshot.entries:
            sld = DomainName.parse(domain, psl=psl).sld
            if sld is not None:
                counts[sld] += 1
        for group, count in counts.items():
            series[group][snapshot.date] = count
    has_weekdays = any(not _is_weekend(d, weekend) for d in all_dates)
    has_weekends = any(_is_weekend(d, weekend) for d in all_dates)
    result: dict[str, SldGroupDynamics] = {}
    for group, per_day in series.items():
        # Days on which the group has no member in the list count as zero.
        weekday_counts = [per_day.get(date, 0) for date in all_dates
                          if not _is_weekend(date, weekend)]
        weekend_counts = [per_day.get(date, 0) for date in all_dates
                          if _is_weekend(date, weekend)]
        if not has_weekdays or not has_weekends:
            continue
        weekday_mean = sum(weekday_counts) / len(weekday_counts)
        weekend_mean = sum(weekend_counts) / len(weekend_counts)
        if max(weekday_mean, weekend_mean) < min_group_size:
            continue
        base = max(weekday_mean, 1e-9)
        if abs(weekend_mean - weekday_mean) / base > threshold:
            full_series = {date: per_day.get(date, 0) for date in all_dates}
            result[group] = SldGroupDynamics(group=group,
                                             weekday_mean=weekday_mean,
                                             weekend_mean=weekend_mean,
                                             series=full_series)
    return result
