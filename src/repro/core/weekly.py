"""Weekly-pattern analysis (Section 6.2, Figure 3).

Two analyses:

* the per-domain Kolmogorov-Smirnov distance between the distribution of
  its ranks on weekdays and on weekends (Figure 3a), including the
  weekday-vs-weekday / weekend-vs-weekend control;
* the dynamics of second-level-domain (SLD) groups whose membership count
  in the list differs by more than a threshold between weekdays and
  weekends (Figures 3b/3c), which the paper uses to show that
  leisure-oriented domains gain on weekends and office platforms lose.

Both analyses draw on the shared per-archive caches in
:mod:`repro.core.cache`: the weekday/weekend (and alternating-half) rank
partitions are built once per ``(archive, top_n, weekend)``, and the
SLD-group member counts are maintained as day-to-day deltas, so only
entries that enter or leave the list are parsed through the PSL.
"""

from __future__ import annotations

import datetime as dt
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.core.cache import (
    archive_alternating_half_ranks_ids,
    archive_rank_partition_ids,
    archive_sld_count_events,
    counts_per_day,
)
from repro.domain.psl import PublicSuffixList, default_list
from repro.interning import default_interner
from repro.providers.base import ListArchive
from repro.stats.ks import ks_distance

_DEFAULT_PSL = default_list()

#: Saturday and Sunday (Python weekday numbers), the paper's weekend.
WEEKEND_WEEKDAYS: tuple[int, ...] = (5, 6)


def _is_weekend(date: dt.date, weekend: Sequence[int]) -> bool:
    return date.weekday() in weekend


def weekday_weekend_ks(archive: ListArchive, top_n: Optional[int] = None,
                       weekend: Sequence[int] = WEEKEND_WEEKDAYS,
                       min_observations: int = 2) -> dict[str, float]:
    """Per-domain KS distance between weekday and weekend rank distributions.

    Only domains with at least ``min_observations`` ranks in *both* groups
    are reported.  A value of 1.0 means the two distributions share no
    common rank (the paper finds ~35% such domains in the late Alexa list).
    """
    weekday_ranks, weekend_ranks = archive_rank_partition_ids(
        archive, top_n=top_n, weekend=weekend)
    name_of = default_interner().domain
    empty: list[int] = []
    distances: dict[str, float] = {}
    for domain_id in weekday_ranks.keys() | weekend_ranks.keys():
        on_weekdays = weekday_ranks.get(domain_id, empty)
        on_weekends = weekend_ranks.get(domain_id, empty)
        if len(on_weekdays) < min_observations or len(on_weekends) < min_observations:
            continue
        distances[name_of(domain_id)] = ks_distance(on_weekdays, on_weekends)
    return distances


def within_group_ks(archive: ListArchive, top_n: Optional[int] = None,
                    weekend: Sequence[int] = WEEKEND_WEEKDAYS,
                    use_weekends: bool = False,
                    min_observations: int = 2) -> dict[str, float]:
    """Control comparison: KS distance between two halves of the *same* group.

    The paper contrasts the weekday-vs-weekend distances with
    weekday-vs-weekday (and weekend-vs-weekend) distances, which stay very
    small.  The halves are formed by alternating the group's days.
    """
    first_ranks, second_ranks = archive_alternating_half_ranks_ids(
        archive, top_n=top_n, weekend=weekend, use_weekends=use_weekends)
    name_of = default_interner().domain
    empty: list[int] = []
    distances: dict[str, float] = {}
    for domain_id in first_ranks.keys() | second_ranks.keys():
        first_half = first_ranks.get(domain_id, empty)
        second_half = second_ranks.get(domain_id, empty)
        if len(first_half) < min_observations or len(second_half) < min_observations:
            continue
        distances[name_of(domain_id)] = ks_distance(first_half, second_half)
    return distances


@dataclass(frozen=True)
class SldGroupDynamics:
    """Weekday/weekend behaviour of one SLD group (Figure 3b/3c)."""

    group: str
    weekday_mean: float
    weekend_mean: float
    series: Mapping[dt.date, int]

    @property
    def relative_change(self) -> float:
        """Relative weekend-vs-weekday change in group membership count."""
        base = max(self.weekday_mean, 1e-9)
        return (self.weekend_mean - self.weekday_mean) / base

    @property
    def more_popular_on_weekends(self) -> bool:
        return self.weekend_mean > self.weekday_mean


def sld_group_dynamics(archive: ListArchive, top_n: Optional[int] = None,
                       threshold: float = 0.4,
                       weekend: Sequence[int] = WEEKEND_WEEKDAYS,
                       min_group_size: int = 3,
                       psl: Optional[PublicSuffixList] = None
                       ) -> dict[str, SldGroupDynamics]:
    """SLD groups whose list membership varies by more than ``threshold``
    between weekdays and weekends.

    Groups domains by the label left of the public suffix (all
    ``blogspot.*`` names form one group), counts the group's members per
    day, and reports groups whose weekday/weekend mean counts differ by
    more than ``threshold`` (40% in the paper).

    Group counts come from the per-archive change-event cache, so the
    weekday/weekend means are integrated over count-change segments
    instead of per-day scans; the sums (and therefore the means and every
    reported value) are identical to the per-day computation.
    """
    psl = psl or _DEFAULT_PSL
    dates, events_by_group = archive_sld_count_events(archive, top_n=top_n, psl=psl)
    n_days = len(dates)
    weekend_flags = [_is_weekend(date, weekend) for date in dates]
    # Prefix counts of weekday/weekend days up to (exclusive) each index.
    weekday_prefix = [0] * (n_days + 1)
    weekend_prefix = [0] * (n_days + 1)
    for index, flag in enumerate(weekend_flags):
        weekday_prefix[index + 1] = weekday_prefix[index] + (0 if flag else 1)
        weekend_prefix[index + 1] = weekend_prefix[index] + (1 if flag else 0)
    n_weekdays = weekday_prefix[n_days]
    n_weekends = weekend_prefix[n_days]
    if n_weekdays == 0 or n_weekends == 0:
        return {}
    result: dict[str, SldGroupDynamics] = {}
    for group, events in events_by_group.items():
        weekday_sum = 0
        weekend_sum = 0
        for position, (start, count) in enumerate(events):
            if not count:
                continue
            end = events[position + 1][0] if position + 1 < len(events) else n_days
            weekday_sum += count * (weekday_prefix[end] - weekday_prefix[start])
            weekend_sum += count * (weekend_prefix[end] - weekend_prefix[start])
        weekday_mean = weekday_sum / n_weekdays
        weekend_mean = weekend_sum / n_weekends
        if max(weekday_mean, weekend_mean) < min_group_size:
            continue
        base = max(weekday_mean, 1e-9)
        if abs(weekend_mean - weekday_mean) / base > threshold:
            # Days on which the group has no member in the list count as zero.
            per_day = counts_per_day(events, n_days)
            full_series = {date: per_day[index] for index, date in enumerate(dates)}
            result[group] = SldGroupDynamics(group=group,
                                             weekday_mean=weekday_mean,
                                             weekend_mean=weekend_mean,
                                             series=full_series)
    return result
