"""Rank dynamics: churn by rank subset, rank correlation, rank variation.

Covers Figure 1c (average daily change over rank), Figure 4 (CDF of
Kendall's tau between days) and Table 4 (highest/median/lowest rank of
example domains over the observation period).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.core.cache import archive_rank_series_ids
from repro.interning import default_interner
from repro.providers.base import ListArchive
from repro.stats.kendall import kendall_tau_ranked_lists
from repro.stats.summary import median


def churn_by_rank(archive: ListArchive, subset_sizes: Sequence[int]) -> dict[int, float]:
    """Mean share of daily changing domains within each Top-``X`` subset.

    For each ``X`` in ``subset_sizes`` the daily change is the number of
    domains in the Top-X on day *n* that are absent from the Top-X on day
    *n+1*, averaged over all day pairs and normalised by ``X``
    (Figure 1c's y-axis).
    """
    snapshots = archive.snapshots()
    result: dict[int, float] = {}
    for size in subset_sizes:
        if size <= 0:
            raise ValueError("subset sizes must be positive")
        changes: list[float] = []
        for previous, current in zip(snapshots, snapshots[1:]):
            # Shared Top-X heads: the id sets are cached per (snapshot, X)
            # and shared with every other analysis slicing the same head.
            prev_top = previous.top(size).id_set()
            curr_top = current.top(size).id_set()
            if not prev_top:
                continue
            changes.append(len(prev_top - curr_top) / len(prev_top))
        result[size] = sum(changes) / len(changes) if changes else 0.0
    return result


def kendall_tau_series(archive: ListArchive, top_n: Optional[int] = None,
                       mode: str = "day-to-day") -> list[float]:
    """Kendall's tau between snapshots of an archive (Figure 4).

    ``mode`` is ``"day-to-day"`` (each day against the previous day) or
    ``"vs-first"`` (each day against the first day of the archive).  Days
    with fewer than two common entries are skipped.
    """
    if mode not in ("day-to-day", "vs-first"):
        raise ValueError(f"unknown mode {mode!r}")
    snapshots = archive.snapshots()
    if top_n is not None:
        snapshots = [s.top(top_n) for s in snapshots]
    if len(snapshots) < 2:
        return []
    taus: list[float] = []
    if mode == "day-to-day":
        pairs = zip(snapshots, snapshots[1:])
    else:
        pairs = ((snapshots[0], later) for later in snapshots[1:])
    for reference, other in pairs:
        try:
            # Id columns instead of string tuples: the rank dictionaries
            # hash dense integers and the Fenwick rank-coordinate fast
            # path applies unchanged (ids are distinct ⇔ entries are).
            taus.append(kendall_tau_ranked_lists(reference.entry_ids(),
                                                 other.entry_ids()))
        except ValueError:
            continue
    return taus


def strong_correlation_share(taus: Iterable[float], threshold: float = 0.95) -> float:
    """Share of tau values above ``threshold`` ("very strongly correlated")."""
    values = list(taus)
    if not values:
        return 0.0
    return sum(1 for tau in values if tau > threshold) / len(values)


@dataclass(frozen=True)
class RankVariation:
    """Highest (best), median and lowest (worst) rank of one domain (Table 4)."""

    domain: str
    provider: str
    highest: Optional[int]
    median: Optional[float]
    lowest: Optional[int]
    days_listed: int
    days_total: int

    @property
    def always_listed(self) -> bool:
        return self.days_listed == self.days_total


def rank_variation(archive: ListArchive, domains: Iterable[str]) -> dict[str, RankVariation]:
    """Per-domain rank variation over the archive (Table 4).

    Days on which a domain is not listed are ignored for the
    highest/median/lowest statistics (but reflected in ``days_listed``).
    """
    series = archive_rank_series_ids(archive)
    id_of = default_interner().id_of
    days_total = len(archive)
    result: dict[str, RankVariation] = {}
    for domain in domains:
        domain_id = id_of(domain)
        observed = [rank for _, rank in
                    (series.get(domain_id, ()) if domain_id is not None else ())]
        if observed:
            result[domain] = RankVariation(
                domain=domain, provider=archive.provider,
                highest=min(observed), median=median(observed),
                lowest=max(observed), days_listed=len(observed),
                days_total=days_total)
        else:
            result[domain] = RankVariation(
                domain=domain, provider=archive.provider,
                highest=None, median=None, lowest=None,
                days_listed=0, days_total=days_total)
    return result
