"""Incremental per-archive caches for the domain-normalisation hot paths.

The paper's central stability finding — consecutive daily lists overlap
by ~99% — makes the analysis pipeline's naive shape (re-parse every
entry of every day through the PSL, for every analysis) almost entirely
redundant work.  This module exploits it, and since the columnar
refactor it does so **in id space**: snapshots store interned uint32
columns (:mod:`repro.interning`), so the delta engines diff
``frozenset[int]`` objects, keep reference counts in int-keyed dicts,
and answer base-domain normalisation from a PSL-version-stamped id
column instead of a string memo.

* :func:`snapshot_base_ids` / :func:`snapshot_base_domains` cache one
  snapshot's normalised base-domain set per ``(PSL identity, version)``.
* :func:`archive_base_id_sets` computes each day's base set as a *delta*
  against the previous day: only entries that entered or left the list
  are resolved, and a per-base reference count keeps the set exact when
  several FQDNs map to the same base.  :func:`archive_base_domain_sets`
  is the string-view derivation (identical values, shared objects).
* :func:`extend_base_id_sets` is the live-append entry point: it adds a
  snapshot to an archive while carrying the cached per-day base-id
  mappings forward by one day instead of letting ``archive.add`` drop
  them (the serving layer's ``/v1/ingest`` path).
* :func:`archive_sld_count_events` tracks per-day SLD-group membership
  counts as change events (day index, new count), again delta-driven.
* :func:`archive_rank_series_ids` / :func:`archive_rank_partition_ids`
  build id-keyed per-domain rank columns once per ``(archive, top_n)``;
  the string-keyed views derive from them.

All per-archive results live in the archive's ``_analysis_cache`` dict,
which :meth:`repro.providers.base.ListArchive.add` drops on mutation;
PSL-dependent entries additionally key on ``psl.cache_key`` (a
never-reused instance id plus the rule-set version) so
:meth:`~repro.domain.psl.PublicSuffixList.add_rule` invalidates them.
Every function is a pure accelerator: results are element-for-element
identical to recomputing from scratch with the non-cached code paths.
"""

from __future__ import annotations

import datetime as dt
import time
from collections import Counter, defaultdict
from types import MappingProxyType
from typing import Mapping, Optional, Sequence

from repro.domain.name import normalise
from repro.domain.psl import PublicSuffixList, default_list
from repro.interning import base_of as _interning_base_of
from repro.interning import default_interner
from repro.obs import metrics
from repro.providers.base import ListArchive, ListSnapshot

_DEFAULT_PSL = default_list()

# Live-append extensions run a few times per ingested day (ms-scale
# path), cheap enough for registry instruments.
_M_EXTENDS = metrics.counter(
    "repro_delta_extends_total",
    "Live snapshot extensions of the delta engine "
    "(extend_base_id_sets calls).")
_M_EXTEND_SECONDS = metrics.histogram(
    "repro_delta_extend_seconds",
    "Wall-clock seconds per extend_base_id_sets call.")

#: Bound on the flat per-PSL parse memos below (unique names, not bytes).
_PARSE_MEMO_LIMIT = 1 << 20
_MISSING = object()


def _psl_key(psl: PublicSuffixList) -> tuple[int, int]:
    return psl.cache_key


def _memo_for(kind: str, psl: PublicSuffixList) -> dict:
    """Flat per-PSL memo for ``kind``, stored *on* the PSL instance.

    The same domains recur across days and lists, so after the first
    sighting a delta entry costs one dict lookup.  Living on the PSL, a
    memo is freed with its instance; superseded rule-set versions are
    evicted as soon as a newer version is requested.
    """
    store = psl.__dict__.setdefault("_derived_memos", {})
    key = (kind, psl.version)
    memo = store.get(key)
    if memo is None:
        for stale in [k for k in store if k[0] == kind and k[1] < key[1]]:
            del store[stale]
        memo = store[key] = {}
    return memo


def _archive_cache(archive: ListArchive) -> dict:
    return archive.__dict__.setdefault("_analysis_cache", {})


#: Distinct PSL generations retained per cached analysis before the
#: oldest is dropped (bounds growth when callers churn PSL instances).
_PSL_GENERATION_LIMIT = 4


def _evict_superseded(cache: dict, key: tuple) -> None:
    """Drop stale cache entries of the same analysis before adding ``key``.

    ``key`` is ``(kind, top_n, ..., psl.cache_key)`` with the PSL
    ``(uid, version)`` tuple last.  Older versions of the same PSL are
    removed immediately (after ``add_rule`` they would otherwise stay
    alive until the owning archive mutates), and the whole ``(kind,
    top_n)`` family — spanning distinct PSL instances *and* distinct
    ``dates`` subsets — is bounded at :data:`_PSL_GENERATION_LIMIT`
    entries, oldest first, so churning either cannot grow the cache
    without bound.
    """
    family = key[:2]
    uid, version = key[-1]
    same_family = [k for k in cache if k[:2] == family]
    for stale in [k for k in same_family if k[-1][0] == uid and k[-1][1] < version]:
        del cache[stale]
        same_family.remove(stale)
    while len(same_family) >= _PSL_GENERATION_LIMIT:
        del cache[same_family.pop(0)]


def _base_of(name: str, psl: PublicSuffixList) -> str:
    """Base domain of ``name``, or the normalised name for bare suffixes.

    Mirrors :func:`repro.core.structure.normalise_to_base_domains` for a
    single entry (footnote 6 of the paper); the one rule shared with the
    interner's id column (:func:`repro.interning.base_of`).
    """
    return _interning_base_of(name, psl)


def _base_of_memoised(psl: PublicSuffixList):
    memo = _memo_for("base", psl)

    def base_of(name: str) -> str:
        base = memo.get(name)
        if base is None:
            base = _base_of(name, psl)
            if len(memo) >= _PARSE_MEMO_LIMIT:
                memo.clear()
            memo[name] = base
        return base

    return base_of


def _sld_of_id_memoised(psl: PublicSuffixList):
    """Memoised ``domain id -> SLD group label`` lookup (id-keyed)."""
    memo = _memo_for("sld-id", psl)
    table = default_interner()

    def sld_of(domain_id: int) -> Optional[str]:
        sld = memo.get(domain_id, _MISSING)
        if sld is _MISSING:
            base = psl.suffix_and_base(normalise(table.domain(domain_id)))[1]
            sld = None if base is None else base.split(".", 1)[0]
            if len(memo) >= _PARSE_MEMO_LIMIT:
                memo.clear()
            memo[domain_id] = sld
        return sld

    return sld_of


def base_domain_mapper(psl: Optional[PublicSuffixList] = None):
    """A memoised ``name -> base domain`` callable for ``psl``.

    The string-keyed entry point to the per-PSL parse memo, for callers
    that normalise entries outside an archive context but must match the
    analysis pipeline's answers exactly.
    """
    return _base_of_memoised(psl or _DEFAULT_PSL)


def seed_base_id_sets(archive: ListArchive,
                      per_day: Mapping[dt.date, frozenset[int]],
                      psl: Optional[PublicSuffixList] = None,
                      top_n: Optional[int] = None
                      ) -> Mapping[dt.date, frozenset[int]]:
    """Warm-start the delta engine with precomputed per-day base-id sets.

    Installs ``per_day`` as the archive's cached
    :func:`archive_base_id_sets` result for ``(top_n, psl)``, so a
    process that *persisted* the sets (the :mod:`repro.service` archive
    store replays them from stored base ids) does not redo a month of
    delta computation on restart.  The caller asserts the data is what
    the delta engine would compute — the sets must cover exactly the
    archive's dates (validated here); an existing cache entry wins, and
    a later :meth:`~repro.providers.base.ListArchive.add` drops the
    seeded entry like any other cached result.
    """
    psl = psl or _DEFAULT_PSL
    key = ("base-domain-sets", top_n, None, _psl_key(psl))
    cache = _archive_cache(archive)
    existing = cache.get(key)
    if existing is not None:
        return existing
    expected = archive.dates()
    if list(per_day) != expected:
        raise ValueError(
            "seeded base-domain sets must cover exactly the archive's dates "
            f"({len(per_day)} given, {len(expected)} in archive)")
    _evict_superseded(cache, key)
    view = MappingProxyType(dict(per_day))
    cache[key] = view
    return view


def seed_base_domain_sets(archive: ListArchive,
                          per_day: Mapping[dt.date, frozenset[str]],
                          psl: Optional[PublicSuffixList] = None,
                          top_n: Optional[int] = None
                          ) -> Mapping[dt.date, frozenset[str]]:
    """String-keyed wrapper of :func:`seed_base_id_sets` (compatibility).

    The sets are interned into the id lane (days with one shared set
    object keep sharing one id set), then served back through the
    string-view derivation.
    """
    psl = psl or _DEFAULT_PSL
    table = default_interner()
    shared: dict[int, frozenset[int]] = {}
    as_ids = {}
    for date, names in per_day.items():
        id_set = shared.get(id(names))
        if id_set is None:
            id_set = table.id_set(table.intern_many(names))
            shared[id(names)] = id_set
        as_ids[date] = id_set
    seed_base_id_sets(archive, as_ids, psl=psl, top_n=top_n)
    return archive_base_domain_sets(archive, top_n=top_n, psl=psl)


def extend_base_id_sets(archive: ListArchive, snapshot: ListSnapshot,
                        psl: Optional[PublicSuffixList] = None) -> None:
    """Add ``snapshot`` to ``archive`` without losing the delta engine.

    :meth:`~repro.providers.base.ListArchive.add` drops the archive's
    derived caches wholesale — correct, but it would force a live-append
    server to redo a month of base-domain deltas for every ingested day.
    This helper captures the cached full-range per-day base-id mappings
    (every ``top_n`` variant computed under ``psl``) *before* the add,
    appends the new day's set — resolved through the same base-id
    column, so the value is exactly what the delta engine would compute
    — and reinstalls the extended mappings afterwards.

    Falls back to a plain (cold) ``add`` when the snapshot is not
    strictly after the archive's last date: a mid-series insert would
    reorder the per-day mapping, so correctness wins over warmth.
    """
    start = time.perf_counter()
    psl = psl or _DEFAULT_PSL
    pkey = _psl_key(psl)
    cache = archive.__dict__.get("_analysis_cache", {})
    last = archive.dates()[-1] if len(archive) else None
    captured = [
        (key[1], view) for key, view in cache.items()
        if key[0] == "base-domain-sets" and key[2] is None and key[3] == pkey
    ] if last is not None and snapshot.date > last else []
    archive.add(snapshot)
    if captured:
        fresh = _archive_cache(archive)
        for top_n, view in captured:
            snap = snapshot.top(top_n) if top_n is not None else snapshot
            extended = dict(view)
            extended[snap.date] = snapshot_base_ids(snap, psl)
            fresh[("base-domain-sets", top_n, None, pkey)] = \
                MappingProxyType(extended)
    _M_EXTENDS.inc()
    _M_EXTEND_SECONDS.observe(time.perf_counter() - start)


def snapshot_base_ids(snapshot: ListSnapshot,
                      psl: Optional[PublicSuffixList] = None) -> frozenset[int]:
    """The snapshot's entries normalised to unique base-domain ids (cached)."""
    psl = psl or _DEFAULT_PSL
    key = _psl_key(psl)
    cache = snapshot.__dict__.setdefault("_base_id_sets", {})
    result = cache.get(key)
    if result is None:
        for stale in [k for k in cache if k[0] == key[0] and k[1] < key[1]]:
            del cache[stale]
        while len(cache) >= _PSL_GENERATION_LIMIT:
            del cache[next(iter(cache))]
        table = default_interner()
        base_id = table.base_column(psl).base_id
        boxed = table.boxed
        result = frozenset({boxed[base_id(domain_id)]
                            for domain_id in snapshot.entry_ids()})
        cache[key] = result
    return result


def snapshot_base_domains(snapshot: ListSnapshot,
                          psl: Optional[PublicSuffixList] = None) -> frozenset[str]:
    """The snapshot's entries normalised to unique base domains (cached).

    String view of :func:`snapshot_base_ids` — identical values, derived
    once per ``(PSL identity, version)``.
    """
    psl = psl or _DEFAULT_PSL
    key = _psl_key(psl)
    cache = snapshot.__dict__.setdefault("_base_domain_sets", {})
    result = cache.get(key)
    if result is None:
        for stale in [k for k in cache if k[0] == key[0] and k[1] < key[1]]:
            del cache[stale]
        while len(cache) >= _PSL_GENERATION_LIMIT:
            del cache[next(iter(cache))]
        result = frozenset(default_interner().domains(snapshot_base_ids(snapshot, psl)))
        cache[key] = result
    return result


def archive_base_id_sets(archive: ListArchive,
                         top_n: Optional[int] = None,
                         psl: Optional[PublicSuffixList] = None,
                         dates: Optional[Sequence[dt.date]] = None
                         ) -> Mapping[dt.date, frozenset[int]]:
    """Per-day normalised base-domain **id** sets, delta-computed.

    The canonical per-archive engine (the string view derives from it):
    day *n+1* comes from day *n* by resolving only the ids that entered
    or left the list — an array lookup per changed id once the base
    column is warm — with an int-keyed reference count keeping the set
    exact when multiple FQDNs share a base domain.  Days with identical
    entry sets share one frozenset object.  The returned mapping is a
    read-only view of the shared cache.

    ``dates`` restricts the computation to a sorted subset of the
    archive's dates (deltas work between any two consecutive *processed*
    days, so the subset stays exact); days outside it are neither
    resolved nor reported.
    """
    psl = psl or _DEFAULT_PSL
    dates_key = None if dates is None else tuple(dates)
    key = ("base-domain-sets", top_n, dates_key, _psl_key(psl))
    cache = _archive_cache(archive)
    result = cache.get(key)
    if result is not None:
        return result
    _evict_superseded(cache, key)
    table = default_interner()
    base_id = table.base_column(psl).base_id
    boxed = table.boxed
    result = {}
    counts: dict[int, int] = {}
    prev_raw: Optional[frozenset[int]] = None
    prev_frozen: frozenset[int] = frozenset()
    snapshots = archive if dates_key is None else (archive[d] for d in dates_key)
    for snapshot in snapshots:
        snap = snapshot.top(top_n) if top_n is not None else snapshot
        raw = snap.id_set()
        if prev_raw is None:
            for domain_id in snap.entry_ids():
                base = boxed[base_id(domain_id)]
                counts[base] = counts.get(base, 0) + 1
            frozen = frozenset(counts)
        else:
            removed = prev_raw - raw
            added = raw - prev_raw
            if removed or added:
                for domain_id in removed:
                    base = boxed[base_id(domain_id)]
                    remaining = counts[base] - 1
                    if remaining:
                        counts[base] = remaining
                    else:
                        del counts[base]
                for domain_id in added:
                    base = boxed[base_id(domain_id)]
                    counts[base] = counts.get(base, 0) + 1
                frozen = frozenset(counts)
            else:
                frozen = prev_frozen
        result[snap.date] = frozen
        prev_raw = raw
        prev_frozen = frozen
    view = MappingProxyType(result)
    cache[key] = view
    return view


def archive_base_domain_sets(archive: ListArchive,
                             top_n: Optional[int] = None,
                             psl: Optional[PublicSuffixList] = None,
                             dates: Optional[Sequence[dt.date]] = None
                             ) -> Mapping[dt.date, frozenset[str]]:
    """Per-day normalised base-domain sets of an archive (string view).

    Derived from :func:`archive_base_id_sets` — same delta engine, same
    values; days sharing one id-set object share one string set.  Kept
    for callers that genuinely need strings (reports, oracles); the
    analysis hot paths use the id sets directly.
    """
    psl = psl or _DEFAULT_PSL
    dates_key = None if dates is None else tuple(dates)
    key = ("base-domain-strs", top_n, dates_key, _psl_key(psl))
    cache = _archive_cache(archive)
    view = cache.get(key)
    if view is not None:
        return view
    _evict_superseded(cache, key)
    id_view = archive_base_id_sets(archive, top_n=top_n, psl=psl, dates=dates)
    table = default_interner()
    shared: dict[int, frozenset[str]] = {}
    result = {}
    for date, id_frozen in id_view.items():
        names = shared.get(id(id_frozen))
        if names is None:
            names = frozenset(table.domains(id_frozen))
            shared[id(id_frozen)] = names
        result[date] = names
    view = MappingProxyType(result)
    cache[key] = view
    return view


def _raw_sets(archive: ListArchive, kind: str, top_n: Optional[int],
              dates_key: Optional[tuple], per_snapshot) -> Mapping:
    key = (kind, top_n, dates_key)
    cache = _archive_cache(archive)
    view = cache.get(key)
    if view is None:
        same_family = [k for k in cache if k[:2] == key[:2]]
        while len(same_family) >= _PSL_GENERATION_LIMIT:
            del cache[same_family.pop(0)]
        result = {}
        snapshots = archive if dates_key is None else (archive[d] for d in dates_key)
        for snapshot in snapshots:
            snap = snapshot.top(top_n) if top_n is not None else snapshot
            result[snap.date] = per_snapshot(snap)
        view = MappingProxyType(result)
        cache[key] = view
    return view


def archive_id_sets(archive: ListArchive,
                    top_n: Optional[int] = None,
                    dates: Optional[Sequence[dt.date]] = None
                    ) -> Mapping[dt.date, frozenset[int]]:
    """Per-day raw (un-normalised) interned-id sets of an archive (cached).

    ``dates`` restricts the result to a subset of the archive's dates.
    """
    dates_key = None if dates is None else tuple(dates)
    return _raw_sets(archive, "id-sets", top_n, dates_key,
                     ListSnapshot.id_set)


def archive_domain_sets(archive: ListArchive,
                        top_n: Optional[int] = None,
                        dates: Optional[Sequence[dt.date]] = None
                        ) -> Mapping[dt.date, frozenset[str]]:
    """Per-day raw (un-normalised) domain-string sets of an archive (cached).

    ``dates`` restricts the result to a subset of the archive's dates.
    """
    dates_key = None if dates is None else tuple(dates)
    return _raw_sets(archive, "domain-sets", top_n, dates_key,
                     ListSnapshot.domain_set)


def archive_sld_count_events(archive: ListArchive,
                             top_n: Optional[int] = None,
                             psl: Optional[PublicSuffixList] = None
                             ) -> tuple[tuple[dt.date, ...],
                                        Mapping[str, tuple[tuple[int, int], ...]]]:
    """Per-SLD-group membership counts as change events.

    Returns ``(dates, events)`` where ``events[group]`` is a sequence of
    ``(day_index, count)`` pairs: the group's member count becomes
    ``count`` on ``dates[day_index]`` and stays there until the next
    event.  Before a group's first event its count is zero.  Only ids
    that changed between consecutive days are resolved (via the
    id-keyed SLD memo).
    """
    psl = psl or _DEFAULT_PSL
    key = ("sld-count-events", top_n, _psl_key(psl))
    cache = _archive_cache(archive)
    hit = cache.get(key)
    if hit is not None:
        return hit
    _evict_superseded(cache, key)
    dates: list[dt.date] = []
    events: dict[str, list[tuple[int, int]]] = {}
    sld_of = _sld_of_id_memoised(psl)
    counts: Counter[str] = Counter()
    prev_raw: Optional[frozenset[int]] = None
    for index, snapshot in enumerate(archive):
        snap = snapshot.top(top_n) if top_n is not None else snapshot
        dates.append(snap.date)
        raw = snap.id_set()
        if prev_raw is None:
            for domain_id in snap.entry_ids():
                sld = sld_of(domain_id)
                if sld is not None:
                    counts[sld] += 1
            for group, count in counts.items():
                events[group] = [(0, count)]
        else:
            changed: set[str] = set()
            for domain_id in prev_raw - raw:
                sld = sld_of(domain_id)
                if sld is None:
                    continue
                remaining = counts[sld] - 1
                if remaining:
                    counts[sld] = remaining
                else:
                    del counts[sld]
                changed.add(sld)
            for domain_id in raw - prev_raw:
                sld = sld_of(domain_id)
                if sld is None:
                    continue
                counts[sld] += 1
                changed.add(sld)
            for group in changed:
                count = counts.get(group, 0)
                series = events.setdefault(group, [])
                last = series[-1][1] if series else 0
                if count != last:
                    series.append((index, count))
        prev_raw = raw
    result = (tuple(dates),
              MappingProxyType({group: tuple(series) for group, series in events.items()}))
    cache[key] = result
    return result


def counts_per_day(events: Sequence[tuple[int, int]], n_days: int) -> list[int]:
    """Expand a change-event series into one count per day index."""
    expanded = [0] * n_days
    for position, (start, count) in enumerate(events):
        end = events[position + 1][0] if position + 1 < len(events) else n_days
        for index in range(start, end):
            expanded[index] = count
    return expanded


def archive_rank_series_ids(archive: ListArchive,
                            top_n: Optional[int] = None
                            ) -> Mapping[int, tuple[tuple[dt.date, int], ...]]:
    """Per-domain-id ``(date, rank)`` observations in date order (cached).

    Built once per ``(archive, top_n)`` on the id columns and shared by
    every analysis that needs per-domain rank distributions (Table 4
    rank variation, the serving layer's history endpoint parity tests).
    """
    key = ("rank-series-ids", top_n)
    cache = _archive_cache(archive)
    view = cache.get(key)
    if view is None:
        result: dict[int, list[tuple[dt.date, int]]] = {}
        for snapshot in archive:
            snap = snapshot.top(top_n) if top_n is not None else snapshot
            date = snap.date
            for rank, domain_id in enumerate(snap.entry_ids(), start=1):
                observations = result.get(domain_id)
                if observations is None:
                    result[domain_id] = [(date, rank)]
                else:
                    observations.append((date, rank))
        view = MappingProxyType({domain_id: tuple(obs)
                                 for domain_id, obs in result.items()})
        cache[key] = view
    return view


def archive_rank_series(archive: ListArchive,
                        top_n: Optional[int] = None
                        ) -> Mapping[str, tuple[tuple[dt.date, int], ...]]:
    """Per-domain ``(date, rank)`` observations in date order (string view).

    Derived from :func:`archive_rank_series_ids`; the observation tuples
    are shared, only the keys are materialised.
    """
    key = ("rank-series", top_n)
    cache = _archive_cache(archive)
    view = cache.get(key)
    if view is None:
        table = default_interner()
        id_view = archive_rank_series_ids(archive, top_n=top_n)
        view = MappingProxyType({table.domain(domain_id): observations
                                 for domain_id, observations in id_view.items()})
        cache[key] = view
    return view


def _freeze_rank_dict(ranks: dict[int, list[int]]) -> Mapping[int, tuple[int, ...]]:
    return MappingProxyType({key: tuple(values) for key, values in ranks.items()})


def _stringify_rank_dict(ranks: Mapping[int, tuple[int, ...]]
                         ) -> Mapping[str, tuple[int, ...]]:
    table = default_interner()
    return MappingProxyType({table.domain(domain_id): values
                             for domain_id, values in ranks.items()})


def archive_rank_partition_ids(archive: ListArchive,
                               top_n: Optional[int] = None,
                               weekend: Sequence[int] = (5, 6)
                               ) -> tuple[Mapping[int, tuple[int, ...]],
                                          Mapping[int, tuple[int, ...]]]:
    """Per-domain-id rank observations split into (weekday, weekend) groups.

    Cached per ``(archive, top_n, weekend)``; ranks are in date order.
    This is the substrate of the Figure-3a weekday/weekend KS analysis.
    """
    weekend_key = tuple(weekend)
    key = ("rank-partition-ids", top_n, weekend_key)
    cache = _archive_cache(archive)
    hit = cache.get(key)
    if hit is not None:
        return hit
    weekday_ranks: dict[int, list[int]] = defaultdict(list)
    weekend_ranks: dict[int, list[int]] = defaultdict(list)
    weekend_set = frozenset(weekend_key)
    for snapshot in archive:
        snap = snapshot.top(top_n) if top_n is not None else snapshot
        target = weekend_ranks if snap.date.weekday() in weekend_set else weekday_ranks
        for rank, domain_id in enumerate(snap.entry_ids(), start=1):
            target[domain_id].append(rank)
    result = (_freeze_rank_dict(weekday_ranks), _freeze_rank_dict(weekend_ranks))
    cache[key] = result
    return result


def archive_rank_partition(archive: ListArchive,
                           top_n: Optional[int] = None,
                           weekend: Sequence[int] = (5, 6)
                           ) -> tuple[Mapping[str, tuple[int, ...]],
                                      Mapping[str, tuple[int, ...]]]:
    """String-keyed view of :func:`archive_rank_partition_ids` (cached)."""
    weekend_key = tuple(weekend)
    key = ("rank-partition", top_n, weekend_key)
    cache = _archive_cache(archive)
    hit = cache.get(key)
    if hit is not None:
        return hit
    weekday_ids, weekend_ids = archive_rank_partition_ids(
        archive, top_n=top_n, weekend=weekend_key)
    result = (_stringify_rank_dict(weekday_ids), _stringify_rank_dict(weekend_ids))
    cache[key] = result
    return result


def archive_alternating_half_ranks_ids(archive: ListArchive,
                                       top_n: Optional[int] = None,
                                       weekend: Sequence[int] = (5, 6),
                                       use_weekends: bool = False
                                       ) -> tuple[Mapping[int, tuple[int, ...]],
                                                  Mapping[int, tuple[int, ...]]]:
    """Id-keyed rank observations of one day group, in alternating halves.

    The control comparison of Figure 3a: take only weekday (or only
    weekend) snapshots and assign them alternately to two halves.
    Cached per ``(archive, top_n, weekend, use_weekends)``.
    """
    weekend_key = tuple(weekend)
    key = ("half-ranks-ids", top_n, weekend_key, use_weekends)
    cache = _archive_cache(archive)
    hit = cache.get(key)
    if hit is not None:
        return hit
    weekend_set = frozenset(weekend_key)
    first_half: dict[int, list[int]] = defaultdict(list)
    second_half: dict[int, list[int]] = defaultdict(list)
    index = 0
    for snapshot in archive:
        if (snapshot.date.weekday() in weekend_set) != use_weekends:
            continue
        snap = snapshot.top(top_n) if top_n is not None else snapshot
        target = first_half if index % 2 == 0 else second_half
        index += 1
        for rank, domain_id in enumerate(snap.entry_ids(), start=1):
            target[domain_id].append(rank)
    result = (_freeze_rank_dict(first_half), _freeze_rank_dict(second_half))
    cache[key] = result
    return result


def archive_alternating_half_ranks(archive: ListArchive,
                                   top_n: Optional[int] = None,
                                   weekend: Sequence[int] = (5, 6),
                                   use_weekends: bool = False
                                   ) -> tuple[Mapping[str, tuple[int, ...]],
                                              Mapping[str, tuple[int, ...]]]:
    """String-keyed view of :func:`archive_alternating_half_ranks_ids`."""
    weekend_key = tuple(weekend)
    key = ("half-ranks", top_n, weekend_key, use_weekends)
    cache = _archive_cache(archive)
    hit = cache.get(key)
    if hit is not None:
        return hit
    first_ids, second_ids = archive_alternating_half_ranks_ids(
        archive, top_n=top_n, weekend=weekend_key, use_weekends=use_weekends)
    result = (_stringify_rank_dict(first_ids), _stringify_rank_dict(second_ids))
    cache[key] = result
    return result
