"""Intersection analysis between top lists (Section 5.2/5.3, Figure 1a, Table 3).

The paper normalises all lists to unique base domains before intersecting
(so Umbrella's FQDNs do not artificially depress the overlap), computes
pairwise and three-way intersections per day, and studies the domains
found in only one list ("disjunct" domains).

Since the columnar refactor the per-day set algebra runs in interned-id
space: each provider's per-day (base-)domain sets are ``frozenset[int]``
from the shared :mod:`repro.core.cache` delta engine, and only the
*counts* leave this module — no domain string is hashed, compared or
materialised on the Figure-1a hot path.
"""

from __future__ import annotations

import datetime as dt
from collections import Counter
from itertools import combinations
from typing import Iterable, Mapping, Optional, Sequence

from repro.core.cache import (
    archive_base_id_sets,
    archive_id_sets,
    snapshot_base_ids,
)
from repro.core.structure import normalise_to_base_domains
from repro.domain.psl import PublicSuffixList
from repro.providers.base import ListArchive, ListSnapshot


def _id_set(snapshot: ListSnapshot, normalise: bool,
            psl: Optional[PublicSuffixList]) -> frozenset[int]:
    if normalise:
        return snapshot_base_ids(snapshot, psl=psl)
    return snapshot.id_set()


def _matrix_from_sets(sets: Mapping[str, frozenset]) -> dict[tuple[str, ...], int]:
    result: dict[tuple[str, ...], int] = {}
    for name_a, name_b in combinations(sorted(sets), 2):
        result[(name_a, name_b)] = len(sets[name_a] & sets[name_b])
    if len(sets) >= 3:
        names = tuple(sorted(sets))
        # Intersect the frozensets directly, smallest first, so the
        # working set only ever shrinks and nothing is copied up front.
        ordered = sorted(sets.values(), key=len)
        common = ordered[0]
        for other in ordered[1:]:
            common = common & other
            if not common:
                break
        result[names] = len(common)
    return result


def pairwise_intersection(a: ListSnapshot, b: ListSnapshot,
                          normalise: bool = True,
                          psl: Optional[PublicSuffixList] = None) -> int:
    """Number of (base) domains shared by two snapshots."""
    return len(_id_set(a, normalise, psl) & _id_set(b, normalise, psl))


def intersection_matrix(snapshots: Mapping[str, ListSnapshot],
                        normalise: bool = True,
                        psl: Optional[PublicSuffixList] = None
                        ) -> dict[tuple[str, ...], int]:
    """All pairwise intersections plus the all-lists intersection.

    Keys are sorted tuples of provider names; the full-combination key
    contains every provider (only added when there are 3+ snapshots).
    """
    sets = {name: _id_set(snap, normalise, psl) for name, snap in snapshots.items()}
    return _matrix_from_sets(sets)


def intersection_over_time(archives: Mapping[str, ListArchive],
                           top_n: Optional[int] = None,
                           normalise: bool = True,
                           psl: Optional[PublicSuffixList] = None
                           ) -> dict[dt.date, dict[tuple[str, ...], int]]:
    """Per-day intersection matrix over the dates shared by all archives.

    This is Figure 1a: the daily intersection counts between the Top-1M
    (or, with ``top_n``, Top-1k) lists.  Each archive's per-day
    (base-)id sets come from the incremental per-archive cache, so only
    the ~1% of entries that change between days are re-resolved, and the
    per-day intersections are pure integer-set operations.
    """
    if not archives:
        return {}
    effective_top = top_n if top_n else None
    common_dates = sorted(set.intersection(*(set(a.dates()) for a in archives.values())))
    per_archive: dict[str, Mapping[dt.date, frozenset[int]]] = {}
    for name, archive in archives.items():
        # Only the shared dates are analysed (and resolved); an archive
        # whose dates all are shared uses the date-unrestricted cache entry.
        dates = None if len(common_dates) == len(archive) else common_dates
        if normalise:
            per_archive[name] = archive_base_id_sets(
                archive, top_n=effective_top, psl=psl, dates=dates)
        else:
            per_archive[name] = archive_id_sets(archive, top_n=effective_top, dates=dates)
    series: dict[dt.date, dict[tuple[str, ...], int]] = {}
    for date in common_dates:
        series[date] = _matrix_from_sets(
            {name: sets[date] for name, sets in per_archive.items()})
    return series


def aggregate_top(archive: ListArchive, top_n: int,
                  last_days: Optional[int] = None) -> set[str]:
    """Union of the Top-``top_n`` entries over the archive's (last) days.

    The paper aggregates the Top 1k lists over the last week of April 2018
    before computing disjunct domains (Section 5.3).
    """
    snapshots = archive.snapshots()
    if last_days is not None:
        snapshots = snapshots[-last_days:]
    aggregated: set[str] = set()
    for snapshot in snapshots:
        aggregated.update(snapshot.top(top_n).entries)
    return aggregated


def disjunct_domains(sets_by_list: Mapping[str, Iterable[str]],
                     normalise: bool = True,
                     psl: Optional[PublicSuffixList] = None) -> dict[str, set[str]]:
    """Domains found in exactly one of the given lists (Table 3 input).

    ``sets_by_list`` maps a provider name to its aggregated domain
    collection; the result maps each provider to the domains appearing in
    its collection and no other.
    """
    normalised: dict[str, set[str]] = {}
    for name, names in sets_by_list.items():
        if normalise:
            normalised[name] = set(normalise_to_base_domains(names, psl=psl))
        else:
            normalised[name] = set(names)
    # One global membership count replaces the O(k²) per-provider union of
    # "all others": a domain is disjunct iff exactly one list carries it.
    membership: Counter[str] = Counter()
    for domains in normalised.values():
        membership.update(domains)
    return {name: {domain for domain in domains if membership[domain] == 1}
            for name, domains in normalised.items()}


def jaccard_index(a: Sequence[str] | set[str], b: Sequence[str] | set[str]) -> float:
    """Jaccard similarity of two domain collections."""
    set_a, set_b = set(a), set(b)
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)
