"""Stability analysis of top lists over time (Section 6.1, Figures 1b, 2a-c).

All functions operate on a :class:`~repro.providers.base.ListArchive`
(daily snapshots) and optionally on the Top-``n`` head of each snapshot.
The counting runs on the snapshots' interned-id sets (the columnar fast
lane): set differences, unions and membership counts are integer-set
operations, and domain strings only appear where a result is keyed by
domain (:func:`days_in_list`).  Every count is identical to the same
operation on the string sets, because ids and strings are bijective.
"""

from __future__ import annotations

import datetime as dt
from collections import Counter
from typing import Optional, Sequence

from repro.interning import default_interner
from repro.providers.base import ListArchive, ListSnapshot
from repro.stats.summary import median


def _snapshots(archive: ListArchive, top_n: Optional[int]) -> list[ListSnapshot]:
    snapshots = archive.snapshots()
    if top_n is not None:
        snapshots = [s.top(top_n) for s in snapshots]
    return snapshots


def daily_changes(archive: ListArchive, top_n: Optional[int] = None) -> dict[dt.date, int]:
    """Number of domains present on day *n* but gone on day *n+1* (Figure 1b).

    The count is keyed by the date of day *n+1* (the day the change became
    visible in the downloaded list).
    """
    snapshots = _snapshots(archive, top_n)
    changes: dict[dt.date, int] = {}
    for previous, current in zip(snapshots, snapshots[1:]):
        removed = previous.id_set() - current.id_set()
        changes[current.date] = len(removed)
    return changes


def mean_daily_change(archive: ListArchive, top_n: Optional[int] = None) -> float:
    """Average number of daily changing domains (µ∆ of Table 2)."""
    changes = daily_changes(archive, top_n)
    if not changes:
        return 0.0
    return sum(changes.values()) / len(changes)


def new_domains_per_day(archive: ListArchive, top_n: Optional[int] = None
                        ) -> dict[dt.date, int]:
    """Domains entering the list for the first time each day (µNEW).

    A domain counts as *new* on a day when it appears in the snapshot and
    has not been part of any earlier snapshot of the archive.
    """
    snapshots = _snapshots(archive, top_n)
    seen: set[int] = set()
    new_counts: dict[dt.date, int] = {}
    for index, snapshot in enumerate(snapshots):
        current = snapshot.id_set()
        if index == 0:
            seen |= current
            continue
        fresh = current - seen
        new_counts[snapshot.date] = len(fresh)
        seen |= current
    return new_counts


def cumulative_unique_domains(archive: ListArchive, top_n: Optional[int] = None
                              ) -> dict[dt.date, int]:
    """Cumulative count of all domains ever seen in the list (Figure 2a)."""
    snapshots = _snapshots(archive, top_n)
    seen: set[int] = set()
    cumulative: dict[dt.date, int] = {}
    for snapshot in snapshots:
        seen |= snapshot.id_set()
        cumulative[snapshot.date] = len(seen)
    return cumulative


def intersection_with_reference(archive: ListArchive,
                                reference_days: Sequence[int] = range(7),
                                top_n: Optional[int] = None
                                ) -> dict[int, float]:
    """Median intersection with a fixed starting day, per day offset (Figure 2b).

    For each starting day in ``reference_days`` the intersection between
    the starting snapshot and each later snapshot is computed; the result
    maps the day offset to the *median* intersection count across starting
    days, exactly as the paper plots it.
    """
    snapshots = _snapshots(archive, top_n)
    if not snapshots:
        return {}
    per_offset: dict[int, list[int]] = {}
    for start in reference_days:
        if start >= len(snapshots):
            continue
        reference = snapshots[start].id_set()
        for offset, snapshot in enumerate(snapshots[start:]):
            per_offset.setdefault(offset, []).append(
                len(reference & snapshot.id_set()))
    return {offset: median(values) for offset, values in sorted(per_offset.items())}


def days_in_list(archive: ListArchive, top_n: Optional[int] = None) -> dict[str, int]:
    """Number of days each domain appears in the list (Figure 2c input)."""
    snapshots = _snapshots(archive, top_n)
    counts: Counter[int] = Counter()
    for snapshot in snapshots:
        counts.update(snapshot.id_set())
    name_of = default_interner().domain
    return {name_of(domain_id): count for domain_id, count in counts.items()}


def days_in_list_cdf(archive: ListArchive, top_n: Optional[int] = None
                     ) -> list[tuple[float, float]]:
    """CDF of the share of observation days a domain spends in the list.

    Returns (share of days, cumulative probability) points; lines closer
    to the lower-right corner indicate a more stable list (Figure 2c).
    """
    snapshots = _snapshots(archive, top_n)
    total_days = len(snapshots)
    if total_days == 0:
        return []
    counts = days_in_list(archive, top_n)
    shares = sorted(count / total_days for count in counts.values())
    n = len(shares)
    return [(share, (index + 1) / n) for index, share in enumerate(shares)]
