"""Structure analysis of top lists (Section 5.1, Table 2).

Answers, for a single snapshot or an archive: how many valid and invalid
TLDs does the list cover, how many of its entries are base domains, how
deep do its subdomains go, and how many domain aliases (same second-level
label under different TLDs) does it contain.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from repro.domain.name import DomainName
from repro.domain.psl import PublicSuffixList, default_list
from repro.domain.tld import TldCoverage, TldRegistry
from repro.providers.base import ListArchive, ListSnapshot
from repro.stats.summary import MeanStd, mean_std

_DEFAULT_PSL = default_list()
_DEFAULT_REGISTRY = TldRegistry()


@dataclass(frozen=True)
class StructureSummary:
    """Structure metrics of one list snapshot (one Table 2 row, one day)."""

    provider: str
    size: int
    valid_tlds: int
    invalid_tlds: int
    invalid_tld_domains: int
    base_domains: int
    depth_shares: Mapping[int, float]
    max_depth: int
    aliases: int

    @property
    def base_domain_share(self) -> float:
        """Fraction of entries that are base domains (µBD / list size)."""
        return self.base_domains / self.size if self.size else 0.0

    def depth_share(self, depth: int) -> float:
        """Share of entries at subdomain depth ``depth`` (SD1, SD2, ...)."""
        return self.depth_shares.get(depth, 0.0)


def normalise_to_base_domains(names: Iterable[str],
                              psl: Optional[PublicSuffixList] = None) -> set[str]:
    """Reduce ``names`` to their unique base domains (footnote 6 of the paper).

    Names that *are* a public suffix (or an invalid single label) are kept
    as-is so they are not silently dropped from intersection analyses.
    """
    psl = psl or _DEFAULT_PSL
    result: set[str] = set()
    for name in names:
        parsed = DomainName.parse(name, psl=psl)
        result.add(parsed.base if parsed.base is not None else parsed.name)
    return result


def base_domain_share(names: Iterable[str],
                      psl: Optional[PublicSuffixList] = None) -> float:
    """Fraction of ``names`` that are base domains (not subdomains)."""
    psl = psl or _DEFAULT_PSL
    names = list(names)
    if not names:
        return 0.0
    base = sum(1 for name in names if DomainName.parse(name, psl=psl).depth == 0)
    return base / len(names)


def subdomain_depth_distribution(names: Iterable[str],
                                 psl: Optional[PublicSuffixList] = None
                                 ) -> tuple[Mapping[int, float], int]:
    """Return (share per subdomain depth, maximum depth) for ``names``.

    Depth 0 means the entry is a base domain (or a bare suffix); depth 1 a
    first-level subdomain, and so on (Table 2's SD1/SD2/SD3/SDM columns).
    """
    psl = psl or _DEFAULT_PSL
    counts: Counter[int] = Counter()
    total = 0
    for name in names:
        depth = DomainName.parse(name, psl=psl).depth
        counts[depth] += 1
        total += 1
    if total == 0:
        return {}, 0
    shares = {depth: count / total for depth, count in sorted(counts.items())}
    return shares, max(counts)


def alias_count(names: Iterable[str],
                psl: Optional[PublicSuffixList] = None) -> int:
    """Number of domain aliases (DUPSLD in Table 2).

    A group of distinct *base domains* sharing the same second-level label
    under different public suffixes (google.com, google.de, ...)
    contributes ``group size - 1`` aliases: the extra registrations beyond
    the first.  Subdomains of the same base domain are not aliases.
    """
    psl = psl or _DEFAULT_PSL
    groups: dict[str, set[str]] = {}
    for name in names:
        parsed = DomainName.parse(name, psl=psl)
        if parsed.base is None or parsed.sld is None:
            continue
        groups.setdefault(parsed.sld, set()).add(parsed.base)
    return sum(len(bases) - 1 for bases in groups.values() if len(bases) > 1)


def structure_summary(snapshot: ListSnapshot,
                      registry: Optional[TldRegistry] = None,
                      psl: Optional[PublicSuffixList] = None) -> StructureSummary:
    """Compute all Table 2 structure metrics for one snapshot."""
    registry = registry or _DEFAULT_REGISTRY
    psl = psl or _DEFAULT_PSL
    names = list(snapshot.entries)
    coverage: TldCoverage = registry.coverage(names)
    depth_shares, max_depth = subdomain_depth_distribution(names, psl=psl)
    base_domains = sum(1 for name in names if DomainName.parse(name, psl=psl).depth == 0)
    return StructureSummary(
        provider=snapshot.provider,
        size=len(names),
        valid_tlds=coverage.valid_tlds,
        invalid_tlds=coverage.invalid_tlds,
        invalid_tld_domains=coverage.invalid_domains,
        base_domains=base_domains,
        depth_shares=depth_shares,
        max_depth=max_depth,
        aliases=alias_count(names, psl=psl),
    )


@dataclass(frozen=True)
class ArchiveStructure:
    """Archive-level aggregation of per-day structure metrics (Table 2)."""

    provider: str
    days: int
    tld_coverage: MeanStd
    base_domains: MeanStd
    aliases: MeanStd
    depth_shares: Mapping[int, float]
    max_depth: int


def summarise_archive(archive: ListArchive,
                      registry: Optional[TldRegistry] = None,
                      psl: Optional[PublicSuffixList] = None,
                      sample_every: int = 1) -> ArchiveStructure:
    """Aggregate structure metrics over an archive (mean ± std per day).

    ``sample_every`` lets callers compute the (expensive) per-day metrics
    on every n-th snapshot only, as the numbers change slowly.
    """
    if sample_every <= 0:
        raise ValueError("sample_every must be positive")
    snapshots = archive.snapshots()[::sample_every]
    if not snapshots:
        raise ValueError("archive is empty")
    summaries = [structure_summary(s, registry=registry, psl=psl) for s in snapshots]
    depth_totals: Counter[int] = Counter()
    for summary in summaries:
        for depth, share in summary.depth_shares.items():
            depth_totals[depth] += share
    depth_means = {depth: total / len(summaries) for depth, total in sorted(depth_totals.items())}
    return ArchiveStructure(
        provider=archive.provider,
        days=len(snapshots),
        tld_coverage=mean_std([s.valid_tlds for s in summaries]),
        base_domains=mean_std([s.base_domains for s in summaries]),
        aliases=mean_std([s.aliases for s in summaries]),
        depth_shares=depth_means,
        max_depth=max(s.max_depth for s in summaries),
    )
