"""Ranking-mechanism experiments (Section 7).

Implements the controlled experiments the paper runs against the three
lists' ranking mechanisms:

* :mod:`repro.ranking.atlas` — a RIPE-Atlas-style probe fleet that
  generates DNS measurement traffic towards a test name.
* :mod:`repro.ranking.manipulation` — the Umbrella rank-injection grid
  (probe count x query frequency, Figure 5), the TTL sweep, and the
  Majestic backlink-purchase experiment.
* :mod:`repro.ranking.toolbar` — a model of the Alexa toolbar's telemetry
  (what data it transmits, which URLs are anonymised), as reverse
  engineered in Section 7.1.
"""

from repro.ranking.atlas import ProbeFleet, ProbeMeasurement
from repro.ranking.manipulation import (
    AlexaPanelInjectionExperiment,
    MajesticBacklinkExperiment,
    UmbrellaInjectionExperiment,
    UmbrellaTtlExperiment,
)
from repro.ranking.toolbar import AlexaToolbar, ToolbarTelemetry

__all__ = [
    "AlexaPanelInjectionExperiment",
    "AlexaToolbar",
    "MajesticBacklinkExperiment",
    "ProbeFleet",
    "ProbeMeasurement",
    "ToolbarTelemetry",
    "UmbrellaInjectionExperiment",
    "UmbrellaTtlExperiment",
]
