"""Rank-manipulation experiments (Section 7.2/7.3, Figure 5).

Three experiments:

* :class:`UmbrellaInjectionExperiment` — sweep probe count x query
  frequency and record the Umbrella rank a test domain reaches (Figure 5),
  including the "disappears within days after stopping" check.
* :class:`UmbrellaTtlExperiment` — query test names with different TTLs
  and verify the resulting ranks stay within a small band (the paper finds
  TTL has no significant effect because the ranking is unique-client
  driven).
* :class:`MajesticBacklinkExperiment` — purchase-style backlink injection:
  how many referring /24 subnets are needed to reach a target Majestic
  rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.population.traffic import InjectedQueries
from repro.providers.alexa import AlexaProvider
from repro.providers.majestic import MajesticProvider
from repro.providers.umbrella import UmbrellaProvider
from repro.ranking.atlas import ProbeMeasurement


@dataclass(frozen=True)
class InjectionOutcome:
    """Result of one (probe count, query frequency) grid cell."""

    n_probes: int
    queries_per_day: float
    rank: Optional[int]

    @property
    def listed(self) -> bool:
        """Whether the test domain made it into the list at all."""
        return self.rank is not None


class UmbrellaInjectionExperiment:
    """Probe-count x query-frequency sweep against the Umbrella ranking."""

    def __init__(self, provider: UmbrellaProvider,
                 test_domain: str = "rank-injection-test.example-measurement.org") -> None:
        self.provider = provider
        self.test_domain = test_domain.lower()

    def run_cell(self, day: int, n_probes: int, queries_per_day: float) -> InjectionOutcome:
        """Run one grid cell on ``day`` and return the achieved rank."""
        measurement = ProbeMeasurement(target_fqdn=self.test_domain,
                                       n_probes=n_probes,
                                       queries_per_day=queries_per_day)
        ranks = self.provider.rank_with_injection(day, [measurement.to_injection()])
        return InjectionOutcome(n_probes=n_probes, queries_per_day=queries_per_day,
                                rank=ranks[self.test_domain])

    def run_grid(self, day: int,
                 probe_counts: Sequence[int] = (100, 1_000, 5_000, 10_000),
                 query_frequencies: Sequence[float] = (1, 10, 50, 100)
                 ) -> dict[tuple[int, float], InjectionOutcome]:
        """Run the full Figure 5 grid on ``day``."""
        outcomes: dict[tuple[int, float], InjectionOutcome] = {}
        for probes in probe_counts:
            for freq in query_frequencies:
                outcomes[(probes, freq)] = self.run_cell(day, probes, freq)
        return outcomes

    def probes_vs_volume_effect(self, day: int) -> dict[str, Optional[int]]:
        """The paper's headline comparison: many probes with few queries
        beats few probes with many queries despite a 10x smaller total
        query volume."""
        many_probes = self.run_cell(day, n_probes=10_000, queries_per_day=1)
        many_queries = self.run_cell(day, n_probes=1_000, queries_per_day=100)
        return {"10k-probes-1q": many_probes.rank, "1k-probes-100q": many_queries.rank}

    def rank_after_stopping(self, day: int) -> Optional[int]:
        """Rank on a day with *no* injected traffic: the domain should have
        disappeared from the list (the paper observes removal in 1-2 days)."""
        ranks = self.provider.rank_with_injection(
            day, [InjectedQueries(fqdn=self.test_domain, n_clients=0, queries_per_client=0)])
        return ranks[self.test_domain]


class UmbrellaTtlExperiment:
    """TTL sweep: five test names with different TTLs, same probe setup."""

    def __init__(self, provider: UmbrellaProvider,
                 ttls: Sequence[int] = (60, 300, 900, 3600, 86400),
                 n_probes: int = 1_000,
                 queries_per_day: float = 96.0,
                 name_template: str = "ttl-{ttl}.example-measurement.org") -> None:
        self.provider = provider
        self.ttls = tuple(ttls)
        self.n_probes = n_probes
        self.queries_per_day = queries_per_day
        self.name_template = name_template

    def run(self, day: int) -> dict[int, Optional[int]]:
        """Rank achieved by each TTL variant on ``day``."""
        injections = [
            InjectedQueries(fqdn=self.name_template.format(ttl=ttl),
                            n_clients=self.n_probes,
                            queries_per_client=self.queries_per_day,
                            ttl=ttl)
            for ttl in self.ttls
        ]
        ranks = self.provider.rank_with_injection(day, injections)
        return {ttl: ranks[self.name_template.format(ttl=ttl)] for ttl in self.ttls}

    def max_rank_spread(self, day: int) -> Optional[int]:
        """Largest rank difference between the TTL variants (paper: < 1k)."""
        ranks = [rank for rank in self.run(day).values() if rank is not None]
        if not ranks:
            return None
        return max(ranks) - min(ranks)


class AlexaPanelInjectionExperiment:
    """Panel-telemetry injection against the Alexa-style ranking.

    Section 7.1 explains that the Alexa rank is computed from toolbar
    telemetry (visitors and page views); the paper refrains from injecting
    synthetic telemetry for ethical reasons but notes that le Pochat et
    al. succeeded in doing so.  This experiment quantifies the required
    effort on the simulated list: how many distinct panel installations
    (each generating a few page views per day) place a test site at a
    given rank.
    """

    def __init__(self, provider: AlexaProvider,
                 page_views_per_installation: float = 3.0) -> None:
        if page_views_per_installation < 0:
            raise ValueError("page_views_per_installation must be non-negative")
        self.provider = provider
        self.page_views_per_installation = page_views_per_installation

    def _injected_score(self, installations: int) -> float:
        # Mirrors WebTraffic.score(): unique visitors + 0.2 * page views.
        views = installations * self.page_views_per_installation
        return float(installations) + 0.2 * views

    def rank_for_installations(self, day: int, installations: int) -> Optional[int]:
        """Rank a test site reaches with ``installations`` daily visitors."""
        if installations < 0:
            raise ValueError("installations must be non-negative")
        if installations == 0:
            return None
        organic = self.provider.windowed_score(day)
        order = np.sort(organic[organic > 0])[::-1]
        score = self._injected_score(installations)
        higher = int(np.searchsorted(-order, -score, side="left"))
        rank = higher + 1
        return rank if rank <= self.provider.list_size else None

    def installations_for_rank(self, day: int, target_rank: int) -> int:
        """Minimum daily panel installations needed to reach ``target_rank``."""
        if target_rank <= 0:
            raise ValueError("target_rank must be positive")
        organic = self.provider.windowed_score(day)
        order = np.sort(organic[organic > 0])[::-1]
        if target_rank > len(order):
            return 1
        needed_score = float(order[target_rank - 1])
        per_installation = 1.0 + 0.2 * self.page_views_per_installation
        return int(np.ceil(needed_score / per_installation)) + 1

    def sweep(self, day: int, installation_counts: Sequence[int]) -> Mapping[int, Optional[int]]:
        """Rank achieved for each installation count."""
        return {count: self.rank_for_installations(day, count)
                for count in installation_counts}


class MajesticBacklinkExperiment:
    """Backlink purchasing against the Majestic-style ranking.

    The paper notes a domain's Majestic rank can only realistically be
    influenced by acquiring links from many distinct /24 subnets
    (referral/link-selling services); this experiment asks how many
    referring subnets place a new domain at a given rank.
    """

    def __init__(self, provider: MajesticProvider) -> None:
        self.provider = provider

    def rank_for_backlinks(self, day: int, referring_subnets: int) -> Optional[int]:
        """Rank a new domain with ``referring_subnets`` links would obtain."""
        if referring_subnets < 0:
            raise ValueError("referring_subnets must be non-negative")
        if referring_subnets == 0:
            return None
        scores = self.provider.windowed_score(day)
        order = np.sort(scores[scores > 0])[::-1]
        higher = int(np.searchsorted(-order, -float(referring_subnets), side="left"))
        rank = higher + 1
        return rank if rank <= self.provider.list_size else None

    def backlinks_for_rank(self, day: int, target_rank: int) -> int:
        """Minimum referring subnets needed to reach ``target_rank``."""
        if target_rank <= 0:
            raise ValueError("target_rank must be positive")
        scores = self.provider.windowed_score(day)
        order = np.sort(scores[scores > 0])[::-1]
        if target_rank > len(order):
            return 1
        return int(np.ceil(order[target_rank - 1])) + 1

    def sweep(self, day: int, subnet_counts: Sequence[int]) -> Mapping[int, Optional[int]]:
        """Rank achieved for each backlink count in ``subnet_counts``."""
        return {count: self.rank_for_backlinks(day, count) for count in subnet_counts}
