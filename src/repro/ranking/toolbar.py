"""Model of the Alexa toolbar's telemetry (Section 7.1).

The paper reverse engineers the Alexa browser toolbar and reports that it

* fetches a unique identifier (``aid``) stored in the browser and used to
  track the device,
* collects demographic attributes at install time (age, gender, household
  income, ethnicity, education, children, install location),
* transmits, for every visited page: the full URL (including GET
  parameters), screen/page sizes, referer, window/tab IDs and timing
  metrics — except for a small set of search/shopping sites whose URLs
  are anonymised to their host name,
* only reports a visit if the page actually loaded.

This module models exactly that behaviour so that panel-privacy questions
("what would Alexa learn from this browsing session?") can be analysed
programmatically.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Optional
from urllib.parse import urlsplit

#: Hosts whose URLs the toolbar anonymises to the host name
#: (the paper lists 8 search-engine and shopping URLs as of 2018-05-17).
ANONYMISED_HOSTS: frozenset[str] = frozenset({
    "google.com", "www.google.com",
    "instacart.com", "www.instacart.com",
    "shop.rewe.de",
    "youtube.com", "www.youtube.com",
    "search.yahoo.com",
    "jet.com", "www.jet.com",
    "ocado.com", "www.ocado.com",
})

#: Demographic attributes requested at install time.
DEMOGRAPHIC_FIELDS: tuple[str, ...] = (
    "age", "gender", "household_income", "ethnicity", "education",
    "children", "install_location",
)


@dataclass(frozen=True)
class ToolbarTelemetry:
    """One telemetry record sent to the Alexa backend for a page visit."""

    aid: str
    url: str
    anonymised: bool
    referer: Optional[str]
    screen_size: tuple[int, int]
    page_size: tuple[int, int]
    window_id: int
    tab_id: int
    load_time_ms: float

    @property
    def host(self) -> str:
        """Host part of the transmitted URL."""
        return urlsplit(self.url).netloc or self.url


@dataclass
class AlexaToolbar:
    """A toolbar installation bound to one device/browser profile."""

    demographics: dict[str, str] = field(default_factory=dict)
    screen_size: tuple[int, int] = (1920, 1080)
    _aid: Optional[str] = None
    _telemetry: list[ToolbarTelemetry] = field(default_factory=list)

    def __post_init__(self) -> None:
        unknown = set(self.demographics) - set(DEMOGRAPHIC_FIELDS)
        if unknown:
            raise ValueError(f"unknown demographic fields: {sorted(unknown)}")

    @property
    def aid(self) -> str:
        """The unique installation identifier (fetched on first use)."""
        if self._aid is None:
            seed = repr(sorted(self.demographics.items())) + repr(self.screen_size)
            self._aid = hashlib.sha256(seed.encode("utf-8")).hexdigest()[:32]
        return self._aid

    @property
    def telemetry(self) -> list[ToolbarTelemetry]:
        """All telemetry records transmitted so far."""
        return list(self._telemetry)

    @staticmethod
    def _anonymise(url: str) -> tuple[str, bool]:
        parts = urlsplit(url if "//" in url else f"https://{url}")
        host = parts.netloc.lower()
        if host in ANONYMISED_HOSTS:
            return f"{parts.scheme}://{host}/", True
        return url, False

    def visit(self, url: str, loaded: bool = True, referer: Optional[str] = None,
              page_size: tuple[int, int] = (1280, 4000), window_id: int = 1,
              tab_id: int = 1, load_time_ms: float = 350.0) -> Optional[ToolbarTelemetry]:
        """Record a page visit; returns the transmitted record or ``None``.

        Nothing is transmitted when the page did not load (the injected
        JavaScript never runs), matching the paper's observation.
        """
        if not loaded:
            return None
        transmitted_url, anonymised = self._anonymise(url)
        transmitted_referer = referer
        if referer is not None:
            transmitted_referer, _ = self._anonymise(referer)
        record = ToolbarTelemetry(
            aid=self.aid, url=transmitted_url, anonymised=anonymised,
            referer=transmitted_referer, screen_size=self.screen_size,
            page_size=page_size, window_id=window_id, tab_id=tab_id,
            load_time_ms=load_time_ms,
        )
        self._telemetry.append(record)
        return record

    def visited_hosts(self) -> list[str]:
        """Hosts Alexa learns this installation visited."""
        return [record.host for record in self._telemetry]

    def exposed_full_urls(self) -> list[str]:
        """URLs transmitted *with* path and GET parameters (privacy exposure)."""
        return [record.url for record in self._telemetry if not record.anonymised]


def simulate_panel_day(toolbars: Iterable[AlexaToolbar], visits: Iterable[tuple[int, str]]
                       ) -> dict[str, int]:
    """Replay ``(toolbar index, url)`` visits and count unique visitors per host.

    A miniature version of the panel aggregation that feeds the Alexa
    ranking: the per-host count of distinct installations that visited it.
    """
    toolbars = list(toolbars)
    seen: dict[str, set[str]] = {}
    for index, url in visits:
        toolbar = toolbars[index]
        record = toolbar.visit(url)
        if record is None:
            continue
        seen.setdefault(record.host, set()).add(record.aid)
    return {host: len(aids) for host, aids in seen.items()}
