"""repro.util — shared infrastructure helpers.

Small policy modules the serving subsystem composes rather than
re-implementing per call site:

* :mod:`repro.util.retry` — retry with decorrelated-jitter backoff,
  deadline budgets and a circuit breaker (used by the replica tailer
  and the ``repro-serve ingest --retry`` client path).
* :mod:`repro.util.ringlog` — a drop-oldest bounded list for
  diagnostic traces that must not grow without bound in long-running
  processes.
"""

from repro.util.ringlog import RingLog
from repro.util.retry import (
    CircuitBreaker,
    CircuitOpenError,
    RetryExhaustedError,
    RetryPolicy,
    backoff_delays,
    call_with_retry,
)

__all__ = [
    "RingLog",
    "CircuitBreaker",
    "CircuitOpenError",
    "RetryExhaustedError",
    "RetryPolicy",
    "backoff_delays",
    "call_with_retry",
]
