"""Retry policy: bounded backoff, deadline budgets, circuit breaking.

One shared policy module instead of ad-hoc ``for attempt in range(...)``
loops: the replica tailer, the ``repro-serve ingest --retry`` client
path and the chaos tests all compose the same three pieces —

* :class:`RetryPolicy` + :func:`backoff_delays` — *decorrelated jitter*
  (each delay drawn uniformly from ``[base, 3 × previous]``, capped at
  ``max_delay``), the schedule that both spreads synchronised retriers
  apart and keeps expected delay growing with attempt count.  Fully
  deterministic under a seeded RNG, which is what makes a retrying chaos
  schedule reproducible.
* **Deadline budgets** — a policy's ``deadline`` is a total wall-clock
  budget measured from the first attempt: sleeps are clipped so the
  budget is *never* exceeded, and a retry that could not start within
  the budget is not started at all (the property tests drive this with
  a fake clock and assert the invariant exactly).
* :class:`CircuitBreaker` — after ``failure_threshold`` consecutive
  failures the circuit opens and :func:`call_with_retry` fails fast
  (:class:`CircuitOpenError`) without touching the callee; after
  ``reset_timeout`` one probe attempt is allowed through (half-open) and
  its outcome closes or re-opens the circuit.  A follower that lost its
  leader stops hammering the socket, and ``/v1/health`` reports the
  breaker state as a degraded-mode flag.

``clock``/``sleep``/``rng`` are injectable everywhere, so tests run in
virtual time with zero real sleeping.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Tuple, Type

from repro.obs import metrics

# Retries only run when something is already failing (or about to be
# tried over a network); the registry lock is noise at that point.
_M_ATTEMPTS = metrics.counter(
    "repro_retry_attempts_total", "Attempts started under call_with_retry.")
_M_FAILURES = metrics.counter(
    "repro_retry_failures_total",
    "Retryable failures caught by call_with_retry.")
_M_EXHAUSTED = metrics.counter(
    "repro_retry_exhausted_total",
    "call_with_retry giving up (attempts or deadline exhausted).")
_M_BREAKER = metrics.counter(
    "repro_breaker_transitions_total",
    "Circuit-breaker state transitions, by destination state.",
    labelnames=("to",))

__all__ = [
    "CircuitBreaker",
    "CircuitOpenError",
    "RetryExhaustedError",
    "RetryPolicy",
    "backoff_delays",
    "call_with_retry",
]


class RetryExhaustedError(Exception):
    """All attempts failed (or the deadline budget ran out).

    Chains from the last underlying failure (``__cause__``), and keeps
    it on :attr:`last_error` for callers that branch on the cause.
    """

    def __init__(self, message: str, last_error: Optional[BaseException]) -> None:
        super().__init__(message)
        self.last_error = last_error


class CircuitOpenError(Exception):
    """The circuit breaker is open; the call was not attempted."""


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try: attempts, backoff shape, and a total time budget.

    ``jitter`` selects the backoff family:

    * ``"decorrelated"`` (default) — AWS-style decorrelated jitter:
      ``delay = min(cap, uniform(base, 3 × previous))``.
    * ``"none"`` — pure capped exponential: ``min(cap, base × 2^k)``;
      deterministic without an RNG (useful as the monotone envelope in
      tests).
    """

    max_attempts: int = 5
    base_delay: float = 0.05
    max_delay: float = 2.0
    #: Total wall-clock budget in seconds across all attempts and
    #: sleeps, measured from the first attempt; ``None`` = unbounded.
    deadline: Optional[float] = None
    jitter: str = "decorrelated"

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1 (got {self.max_attempts})")
        if self.base_delay < 0 or self.max_delay < self.base_delay:
            raise ValueError(
                f"need 0 <= base_delay <= max_delay "
                f"(got {self.base_delay}, {self.max_delay})")
        if self.deadline is not None and self.deadline < 0:
            raise ValueError(f"deadline must be >= 0 (got {self.deadline})")
        if self.jitter not in ("decorrelated", "none"):
            raise ValueError(f"unknown jitter mode {self.jitter!r}")


def backoff_delays(policy: RetryPolicy,
                   rng: Optional[random.Random] = None) -> Iterator[float]:
    """The policy's infinite backoff-delay sequence (caller bounds it).

    Every yielded delay is in ``[0, policy.max_delay]``; with a seeded
    ``rng`` the sequence is fully deterministic.  The *k*-th delay backs
    off the *k*-th failure, so the sequence is consumed between
    attempts.
    """
    if policy.jitter == "none":
        delay = policy.base_delay
        while True:
            yield min(delay, policy.max_delay)
            # Grow past the cap is pointless; freeze there.
            delay = min(delay * 2, policy.max_delay) if delay else policy.max_delay
    else:
        if rng is None:
            rng = random.Random()
        previous = policy.base_delay
        while True:
            delay = min(policy.max_delay,
                        rng.uniform(policy.base_delay, max(previous * 3,
                                                           policy.base_delay)))
            previous = delay
            yield delay


def call_with_retry(fn: Callable[[], object],
                    policy: RetryPolicy = RetryPolicy(),
                    *,
                    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
                    rng: Optional[random.Random] = None,
                    clock: Callable[[], float] = time.monotonic,
                    sleep: Callable[[float], None] = time.sleep,
                    breaker: Optional["CircuitBreaker"] = None,
                    on_retry: Optional[Callable[[int, BaseException, float],
                                                None]] = None) -> object:
    """Call ``fn`` until it succeeds, the policy is exhausted, or the
    deadline budget runs out.

    Only ``retry_on`` exceptions are retried — anything else (including
    ``BaseException`` like an injected crash) propagates immediately.
    ``on_retry(attempt, error, delay)`` is invoked before each backoff
    sleep.  With ``breaker``, every outcome is recorded and an open
    circuit raises :class:`CircuitOpenError` without calling ``fn``.

    The deadline invariant: no sleep ends after ``start + deadline``
    (sleeps are clipped), and no attempt *starts* after the deadline has
    passed.
    """
    start = clock()
    delays = backoff_delays(policy, rng)
    last_error: Optional[BaseException] = None
    for attempt in range(1, policy.max_attempts + 1):
        if breaker is not None and not breaker.allow():
            raise CircuitOpenError(
                f"circuit open after {breaker.consecutive_failures} "
                f"consecutive failures") from last_error
        _M_ATTEMPTS.inc()
        try:
            result = fn()
        except retry_on as error:
            _M_FAILURES.inc()
            last_error = error
            if breaker is not None:
                breaker.record_failure()
            if attempt >= policy.max_attempts:
                break
            delay = next(delays)
            if policy.deadline is not None:
                remaining = policy.deadline - (clock() - start)
                if remaining <= 0:
                    break
                delay = min(delay, remaining)
            if on_retry is not None:
                on_retry(attempt, error, delay)
            if delay > 0:
                sleep(delay)
            if policy.deadline is not None \
                    and clock() - start >= policy.deadline:
                break
        else:
            if breaker is not None:
                breaker.record_success()
            return result
    _M_EXHAUSTED.inc()
    raise RetryExhaustedError(
        f"gave up after {attempt} attempt(s)", last_error) from last_error


class CircuitBreaker:
    """Consecutive-failure circuit breaker (closed → open → half-open).

    * **closed** — calls flow; ``failure_threshold`` consecutive
      failures trip it open.
    * **open** — :meth:`allow` is ``False`` until ``reset_timeout``
      seconds have passed since the tripping failure.
    * **half-open** — one probe call is allowed; success closes the
      circuit, failure re-opens it (and restarts the timeout).

    Not thread-safe by itself; the replica serialises its sync cycles,
    which is the only writer.
    """

    def __init__(self, failure_threshold: int = 5, reset_timeout: float = 30.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1 (got {failure_threshold})")
        if reset_timeout < 0:
            raise ValueError(f"reset_timeout must be >= 0 (got {reset_timeout})")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self.consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._half_open = False

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"`` (for health pages)."""
        if self._opened_at is None:
            return "closed"
        if self._half_open or \
                self._clock() - self._opened_at >= self.reset_timeout:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """Whether a call may proceed now (may transition to half-open)."""
        if self._opened_at is None:
            return True
        if self._half_open:
            # One probe is already in flight; hold further calls back.
            return False
        if self._clock() - self._opened_at >= self.reset_timeout:
            self._half_open = True
            _M_BREAKER.labels(to="half-open").inc()
            return True
        return False

    def record_success(self) -> None:
        if self._opened_at is not None:
            _M_BREAKER.labels(to="closed").inc()
        self.consecutive_failures = 0
        self._opened_at = None
        self._half_open = False

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self._half_open or self.consecutive_failures >= self.failure_threshold:
            if self._opened_at is None or self._half_open:
                # closed→open and half-open→open are transitions; a
                # further failure while already open merely restarts
                # the timeout.
                _M_BREAKER.labels(to="open").inc()
            self._opened_at = self._clock()
            self._half_open = False
