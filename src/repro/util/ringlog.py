"""Bounded append log: a drop-oldest ring buffer that *is* a list.

Diagnostic traces (`ApiHTTPServer.unhandled_errors`,
`QueryService.internal_errors`, `FaultPlan.fired`) started life as
plain lists.  That is the right reading interface — tests assert
equality against them, slice them, and check truthiness — but a plain
list grows without bound in a long-running process: a worker that
serves for weeks under a fault plan, or a server absorbing a slow
trickle of client-triggered errors, leaks memory through its own
tripwires.

:class:`RingLog` subclasses :class:`list`, so every existing read
idiom keeps working unchanged (``log == []``, ``list(log)``,
``log[-3:]``, ``for entry in log``), while :meth:`append` evicts the
oldest entries beyond ``capacity`` and tallies them in
:attr:`dropped`.  The most recent entries are always present, which is
what both a test asserting on recent behaviour and an operator
inspecting a live process actually need.
"""

from __future__ import annotations

import threading
from typing import Iterable, TypeVar

T = TypeVar("T")

__all__ = ["RingLog"]


class RingLog(list):
    """A ``list`` capped at ``capacity`` entries, dropping the oldest.

    ``dropped`` counts evicted entries since construction (or the last
    :meth:`clear`), so a bounded buffer still exposes *that* history
    was lost and how much — an assertion on ``log.dropped == 0`` is
    the lossless-trace guarantee tests relied on implicitly before.

    Appends are serialised by a per-instance lock: handler threads
    report errors concurrently, and an unlocked append+trim pair could
    evict one entry too many when two threads overflow at once.
    """

    def __init__(self, capacity: int, iterable: Iterable[T] = ()) -> None:
        if capacity < 1:
            raise ValueError(f"RingLog capacity must be >= 1, got {capacity}")
        super().__init__()
        self.capacity = int(capacity)
        self.dropped = 0
        self._lock = threading.Lock()
        for item in iterable:
            self.append(item)

    def append(self, item: T) -> None:
        with self._lock:
            super().append(item)
            overflow = len(self) - self.capacity
            if overflow > 0:
                del self[:overflow]
                self.dropped += overflow

    def extend(self, iterable: Iterable[T]) -> None:
        for item in iterable:
            self.append(item)

    def clear(self) -> None:
        with self._lock:
            super().clear()
            self.dropped = 0

    def __repr__(self) -> str:
        return (f"RingLog(capacity={self.capacity}, dropped={self.dropped}, "
                f"entries={list.__repr__(self)})")
