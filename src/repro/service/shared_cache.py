"""Cross-process payload cache: one mmap'd segment, every worker serves it.

The response LRU (:class:`~repro.service.api.QueryService`) memoises
canonical-JSON bodies per ``(store.version, canonical target)`` — but it
is per *process*.  A pre-fork worker pool would pay the payload build
(route → analysis → canonical encode → SHA-256 ETag) once per worker
per payload, N times for the same bytes.  This module shares the
rendered bytes instead: an **append-only file of framed records**, one
per payload, that every worker maps read-only.  A payload rendered once
by any worker serves from every worker without re-encoding — the pages
are shared through the OS page cache, so N workers cost one copy of the
bytes in memory.

Why append-only (no eviction, no in-place mutation):

* Readers never lock.  A record, once its bytes are on disk, is
  immutable; readers validate frames with a length + CRC32 check, so
  the only unsafe state — a writer's half-written tail — is detected
  and simply not indexed until it completes.
* Writers coordinate with one ``flock`` around the append, which makes
  the segment safe across *processes* (the pool's whole point), not
  just threads.
* Version-keyed entries age out naturally: a new store version stops
  probing the old version's keys.  The segment is bounded by
  ``max_bytes`` — at the cap, puts are skipped (and tallied), never
  torn or compacted under a reader.

The cache is strictly an optimisation: a skipped put or an unindexed
tail only means a worker re-renders bytes it would have rendered
anyway.  Byte-identity is preserved by construction — the cache stores
the canonical bytes and their ETag, and the differential tests assert
pool-served payloads equal single-process ones.
"""

from __future__ import annotations

import mmap
import os
import struct
import threading
import zlib
from pathlib import Path
from typing import Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback (degrades safely)
    fcntl = None  # type: ignore[assignment]

#: Per-record frame magic ("RPC1" little-endian).
_REC_MAGIC = 0x31435052

#: Frame header: magic, crc32, store version, target bytes, etag bytes,
#: body bytes.  The CRC covers the three variable-length fields, so a
#: torn append (header complete, payload cut) can never be indexed.
_REC = struct.Struct("<IIQIII")

#: Default segment bound.  Payloads are canonical JSON of analysis
#: answers (KBs each); 64 MiB holds tens of thousands of them.
DEFAULT_MAX_BYTES = 64 << 20

__all__ = ["SharedPayloadCache", "DEFAULT_MAX_BYTES"]


class SharedPayloadCache:
    """Append-only, mmap-shared ``(version, target) -> (body, etag)`` map.

    One instance per process; every instance of the same ``path`` sees
    every other's completed appends.  All methods are thread-safe.
    ``stats()`` exposes plain-int tallies for the metrics layer.
    """

    def __init__(self, path: str | Path,
                 max_bytes: int = DEFAULT_MAX_BYTES) -> None:
        self.path = Path(path)
        self.max_bytes = int(max_bytes)
        self._lock = threading.Lock()
        #: (version, target) -> (body_offset, body_len, etag)
        self._index: dict[tuple[int, str], tuple[int, int, str]] = {}
        self._scanned = 0          # file offset the index covers
        self._map: Optional[mmap.mmap] = None
        self._map_size = 0
        # Plain GIL-atomic tallies (scraped by /v1/metrics).
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.skipped_puts = 0      # cap reached / oversized record
        self.path.touch(exist_ok=True)

    # -- mapping plumbing -------------------------------------------------
    def _release_map(self) -> None:
        """Drop the current mapping, tolerating exported memoryviews.

        ``get()`` hands out zero-copy :class:`memoryview` slices of the
        mapping; closing an mmap with live exports raises
        ``BufferError``.  In that case we just drop our reference — each
        view keeps the mmap object alive, and the pages are unmapped
        when the last view is released.  The file itself is append-only,
        so a superseded mapping still shows valid bytes for every record
        it covers.
        """
        assert self._map is not None
        try:
            self._map.close()
        except BufferError:
            pass
        self._map = None
        self._map_size = 0

    def _remap(self, need: int) -> Optional[mmap.mmap]:
        """Ensure the read mapping covers at least ``need`` bytes."""
        if self._map is not None and self._map_size >= need:
            return self._map
        size = os.path.getsize(self.path)
        if size < need:
            return None
        if self._map is not None:
            self._release_map()
        with self.path.open("rb") as handle:
            try:
                self._map = mmap.mmap(handle.fileno(), 0,
                                      access=mmap.ACCESS_READ)
            except (ValueError, OSError):
                return None
        self._map_size = len(self._map)
        return self._map

    def _scan_tail(self) -> None:
        """Index every completed record appended since the last scan.

        Called under ``self._lock``.  Stops at the first incomplete or
        CRC-failing frame: that is another process's append in flight
        (or a torn write a crash left), and everything before it is
        still perfectly valid.
        """
        size = os.path.getsize(self.path)
        if size <= self._scanned:
            return
        mapping = self._remap(size)
        if mapping is None:
            return
        offset = self._scanned
        total = len(mapping)
        while offset + _REC.size <= total:
            magic, crc, version, target_len, etag_len, body_len = \
                _REC.unpack_from(mapping, offset)
            if magic != _REC_MAGIC:
                break
            end = offset + _REC.size + target_len + etag_len + body_len
            if end > total:
                break
            payload = mapping[offset + _REC.size:end]
            if zlib.crc32(payload) != crc:
                break
            target = payload[:target_len].decode("utf-8")
            etag = payload[target_len:target_len + etag_len].decode("ascii")
            body_off = offset + _REC.size + target_len + etag_len
            self._index[(version, target)] = (body_off, body_len, etag)
            offset = end
            self._scanned = offset

    # -- the shared read/write interface ----------------------------------
    def get(self, version: int, target: str
            ) -> Optional[tuple[memoryview, str]]:
        """The shared ``(body, etag)`` for this key, or ``None``.

        The body is a zero-copy :class:`memoryview` over the mmap'd
        segment — transports can hand it straight to ``sendmsg`` /
        ``wfile.write`` without the payload ever becoming a Python
        ``bytes``.  Records are immutable once appended, so a view stays
        valid for as long as the caller holds it (it pins the mapping it
        came from; see :meth:`_release_map`).

        A miss rescans the segment tail once (new records appear only
        at the end), so the first probe after another worker's put pays
        one tail walk and later probes are a dict hit.
        """
        key = (version, target)
        with self._lock:
            entry = self._index.get(key)
            if entry is None:
                self._scan_tail()
                entry = self._index.get(key)
            if entry is None:
                self.misses += 1
                return None
            body_off, body_len, etag = entry
            mapping = self._remap(body_off + body_len)
            if mapping is None:  # pragma: no cover - shrunk/replaced file
                self.misses += 1
                return None
            self.hits += 1
            return memoryview(mapping)[body_off:body_off + body_len], etag

    def put(self, version: int, target: str, body: bytes, etag: str) -> bool:
        """Publish a rendered payload; returns whether it was appended.

        Cross-process safe: the append happens under an exclusive
        ``flock`` at the file's end, and the size cap is re-checked
        inside the lock so racing workers cannot overshoot it together.
        A duplicate key (two workers rendering the same payload
        concurrently) is harmless — both bodies are byte-identical by
        determinism, and the index keeps the later record.
        """
        raw_target = target.encode("utf-8")
        raw_etag = etag.encode("ascii")
        payload = raw_target + raw_etag + body
        record = _REC.pack(_REC_MAGIC, zlib.crc32(payload), version,
                           len(raw_target), len(raw_etag), len(body)) + payload
        with self._lock:
            if (version, target) in self._index:
                return False
            with self.path.open("ab") as handle:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
                try:
                    end = handle.seek(0, os.SEEK_END)
                    if end + len(record) > self.max_bytes:
                        self.skipped_puts += 1
                        return False
                    handle.write(record)
                    handle.flush()
                finally:
                    if fcntl is not None:
                        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
            self.puts += 1
            # Index our own record immediately (offset arithmetic matches
            # _scan_tail's); other processes discover it on their next
            # miss's tail scan.
            body_off = end + _REC.size + len(raw_target) + len(raw_etag)
            self._index[(version, target)] = (body_off, len(body), etag)
            if self._scanned == end:
                self._scanned = end + len(record)
        return True

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._index),
                "bytes": os.path.getsize(self.path),
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "skipped_puts": self.skipped_puts,
            }

    def close(self) -> None:
        with self._lock:
            if self._map is not None:
                self._release_map()
