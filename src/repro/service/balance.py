"""``repro-serve balance`` — a stdlib round-robin HTTP balancer.

The pool (:mod:`repro.service.workers`) scales one machine; the
replication layer (:mod:`repro.service.replica`) scales to many.  What
joins them into one endpoint is deliberately boring: a threaded
reverse proxy that round-robins requests across backends, **ejects** a
backend whose ``/v1/ready`` probe fails (a follower that fell past its
staleness bound answers 503 there — that is the contract this proxy
consumes), and **re-admits** it as soon as the probe passes again.

No queueing, no weights, no sticky sessions: every backend serves
byte-identical payloads for a given store version (the differential
tests assert it), so any admitted backend is as good as any other and
round-robin is optimal.  Connection errors are the proxy's to absorb;
HTTP statuses (including a backend's own 5xx) are the backend's to
answer and pass through verbatim.  Retries respect idempotency:

* **GET/HEAD** are retried on the next admitted backend after *any*
  connection failure — re-reading is always safe.
* **POST** (and anything else non-idempotent) fails over only when the
  connection died *before* the request was transmitted.  Once any
  request byte may have reached a backend, a replay could apply the
  same ingest twice (the first backend may have appended the day and
  died before answering), so the proxy answers 502 and leaves the
  retry decision to the client, who can ask the store whether the
  write landed.

``GET /v1/balancer`` on the proxy itself reports the rotation: per
backend admitted/ejected state, probe counters, proxied request
tallies, ejection/re-admission counts.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional
from urllib.parse import urlsplit

from repro.obs import logging as obslog
from repro.service.api import MAX_BODY_BYTES, json_bytes

__all__ = ["Backend", "Balancer"]

#: Methods safe to replay on another backend after a mid-request
#: connection failure (RFC 9110 §9.2.2).
_IDEMPOTENT_METHODS = frozenset({"GET", "HEAD"})


def _error_body(status: int, message: str) -> bytes:
    """The API layer's canonical JSON error envelope."""
    return json_bytes({"error": {"status": status, "message": message}})


class _ConnectFailed(OSError):
    """Connection failed before a single request byte was transmitted."""

#: Request headers the proxy must not forward (hop-by-hop; the proxy
#: manages its own connections and re-frames bodies by length).
_HOP_BY_HOP = frozenset({
    "connection", "keep-alive", "proxy-authenticate",
    "proxy-authorization", "te", "trailers", "transfer-encoding",
    "upgrade", "host", "content-length",
})


class Backend:
    """One upstream server in the rotation."""

    def __init__(self, url: str) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("", "http") or parts.hostname is None:
            raise ValueError(f"backend must be a plain http URL (got {url!r})")
        self.host: str = parts.hostname
        self.port: int = parts.port or 80
        self.url = f"http://{self.host}:{self.port}"
        self.admitted = True
        self.consecutive_failures = 0
        self.probes = 0
        self.requests = 0
        self.errors = 0
        self.ejections = 0
        self.readmissions = 0
        self.last_probe_error: Optional[str] = None

    def describe(self) -> dict[str, Any]:
        return {
            "url": self.url,
            "admitted": self.admitted,
            "probes": self.probes,
            "consecutive_failures": self.consecutive_failures,
            "requests": self.requests,
            "errors": self.errors,
            "ejections": self.ejections,
            "readmissions": self.readmissions,
            "last_probe_error": self.last_probe_error,
        }


class Balancer:
    """Round-robin proxy with readiness-driven ejection.

    ``start()`` boots the health-check thread and the proxy server;
    ``stop()`` drains both.  ``eject_after`` consecutive failed probes
    remove a backend from rotation; one passing probe re-admits it.
    A proxied request that fails at the connection level also ejects
    its backend immediately — faster than waiting out a probe period —
    and is retried on the next admitted backend.
    """

    def __init__(self, backends: list[str] | list[Backend], *,
                 host: str = "127.0.0.1", port: int = 0,
                 check_interval: float = 0.25, eject_after: int = 1,
                 timeout: float = 10.0) -> None:
        if not backends:
            raise ValueError("at least one backend required")
        if eject_after < 1:
            raise ValueError(f"eject_after must be >= 1 (got {eject_after})")
        self.backends = [b if isinstance(b, Backend) else Backend(b)
                         for b in backends]
        self.host = host
        self._requested_port = port
        self.check_interval = check_interval
        self.eject_after = eject_after
        self.timeout = timeout
        self.port: Optional[int] = None
        self._lock = threading.Lock()
        self._rr = 0
        self._stop = threading.Event()
        self._server: Optional[ThreadingHTTPServer] = None
        self._threads: list[threading.Thread] = []

    # -- rotation ---------------------------------------------------------
    def _admitted(self) -> list[Backend]:
        with self._lock:
            return [b for b in self.backends if b.admitted]

    def pick(self) -> Optional[Backend]:
        """Next admitted backend (round-robin), or ``None`` if all out."""
        with self._lock:
            admitted = [b for b in self.backends if b.admitted]
            if not admitted:
                return None
            backend = admitted[self._rr % len(admitted)]
            self._rr += 1
            return backend

    def _eject(self, backend: Backend, reason: str) -> None:
        with self._lock:
            if not backend.admitted:
                return
            backend.admitted = False
            backend.ejections += 1
        obslog.log_event("balance.eject", level="warning",
                         backend=backend.url, reason=reason)

    def _readmit(self, backend: Backend) -> None:
        with self._lock:
            if backend.admitted:
                return
            backend.admitted = True
            backend.readmissions += 1
        obslog.log_event("balance.readmit", backend=backend.url)

    # -- health probing ---------------------------------------------------
    def check_once(self) -> None:
        """Probe every backend's ``/v1/ready`` once and adjust rotation."""
        for backend in self.backends:
            backend.probes += 1
            try:
                conn = http.client.HTTPConnection(
                    backend.host, backend.port, timeout=self.timeout)
                try:
                    conn.request("GET", "/v1/ready")
                    status = conn.getresponse().status
                finally:
                    conn.close()
                ok = status == 200
                error = None if ok else f"status {status}"
            except OSError as probe_error:
                ok = False
                error = f"{type(probe_error).__name__}: {probe_error}"
            backend.last_probe_error = error
            if ok:
                backend.consecutive_failures = 0
                self._readmit(backend)
            else:
                backend.consecutive_failures += 1
                if backend.consecutive_failures >= self.eject_after:
                    self._eject(backend, error or "probe failed")

    def _probe_loop(self) -> None:
        while not self._stop.is_set():
            self.check_once()
            self._stop.wait(self.check_interval)

    # -- status -----------------------------------------------------------
    def status(self) -> dict[str, Any]:
        with self._lock:
            backends = [b.describe() for b in self.backends]
        return {
            "service": "repro-serve balance",
            "port": self.port,
            "check_interval": self.check_interval,
            "eject_after": self.eject_after,
            "admitted": sum(1 for b in backends if b["admitted"]),
            "backends": backends,
        }

    # -- proxying ---------------------------------------------------------
    def _forward(self, backend: Backend, method: str, path: str,
                 headers: dict[str, str], body: bytes
                 ) -> tuple[int, list[tuple[str, str]], bytes]:
        """One proxied exchange.

        Raises :class:`_ConnectFailed` when the TCP connection could not
        be established at all (nothing was transmitted, so the caller may
        fail the request over to another backend regardless of method);
        any other :class:`OSError` means the request was at least
        partially on the wire when the backend died.
        """
        conn = http.client.HTTPConnection(backend.host, backend.port,
                                          timeout=self.timeout)
        try:
            out = {k: v for k, v in headers.items()
                   if k.lower() not in _HOP_BY_HOP}
            try:
                conn.connect()
            except OSError as error:
                raise _ConnectFailed(str(error)) from error
            conn.request(method, path, body=body or None, headers=out)
            response = conn.getresponse()
            payload = response.read()
            kept = [(k, v) for k, v in response.getheaders()
                    if k.lower() not in _HOP_BY_HOP]
            return response.status, kept, payload
        finally:
            conn.close()

    def handle(self, method: str, path: str, headers: dict[str, str],
               body: bytes) -> tuple[int, list[tuple[str, str]], bytes]:
        """Route one request; retry semantics depend on idempotency."""
        attempts = max(1, len(self.backends))
        for _ in range(attempts):
            backend = self.pick()
            if backend is None:
                break
            backend.requests += 1
            try:
                return self._forward(backend, method, path, headers, body)
            except _ConnectFailed:
                # Nothing reached the backend: safe to try the next one
                # whatever the method.
                backend.errors += 1
                self._eject(backend, "connection failure")
            except OSError:
                backend.errors += 1
                self._eject(backend, "connection failure mid-request")
                if method.upper() in _IDEMPOTENT_METHODS:
                    continue
                # The request (an ingest, say) may already have been
                # applied by the dead backend; replaying it elsewhere
                # could double-apply.  Surface the ambiguity instead.
                obslog.log_event("balance.abort_nonidempotent",
                                 level="warning", backend=backend.url,
                                 method=method, path=path)
                return 502, [("Content-Type", "application/json")], \
                    _error_body(
                        502,
                        "backend connection lost after the request was "
                        "sent; not retried because the method is not "
                        "idempotent — the request may have been applied")
        return 503, [("Content-Type", "application/json"),
                     ("Retry-After", "1")], \
            _error_body(503, "no admitted backend available")

    # -- server lifecycle -------------------------------------------------
    def start(self) -> "Balancer":
        balancer = self

        class _ProxyHandler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"
            disable_nagle_algorithm = True

            def _respond(self, status: int,
                         headers: list[tuple[str, str]],
                         body: bytes) -> None:
                self.send_response(status)
                for key, value in headers:
                    self.send_header(key, value)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                if self.command != "HEAD":
                    self.wfile.write(body)

            def _proxy(self) -> None:
                if self.path == "/v1/balancer":
                    body = (json.dumps(balancer.status(), indent=2) + "\n"
                            ).encode("utf-8")
                    self._respond(200, [("Content-Type",
                                         "application/json")], body)
                    return
                declared = self.headers.get("Content-Length")
                try:
                    length = int(declared) if declared is not None else 0
                except ValueError:
                    length = -1
                if length < 0:
                    # Framing is unknowable from here on: answer the API
                    # layer's envelope and drop the connection.
                    self.close_connection = True
                    self._respond(
                        400, [("Content-Type", "application/json"),
                              ("Connection", "close")],
                        _error_body(
                            400, f"invalid Content-Length {declared!r}"))
                    return
                if length > MAX_BODY_BYTES:
                    self.close_connection = True
                    self._respond(
                        413, [("Content-Type", "application/json"),
                              ("Connection", "close")],
                        _error_body(
                            413, f"request body exceeds "
                                 f"{MAX_BODY_BYTES} bytes"))
                    return
                request_body = self.rfile.read(length) if length else b""
                status, headers, body = balancer.handle(
                    self.command, self.path, dict(self.headers.items()),
                    request_body)
                self._respond(status, headers, body)

            def _guarded(self) -> None:
                try:
                    self._proxy()
                except (BrokenPipeError, ConnectionResetError,
                        TimeoutError):
                    self.close_connection = True
                except Exception:  # noqa: BLE001 — proxy must not die
                    try:
                        self._respond(502, [("Content-Type",
                                             "application/json")],
                                      b'{"error": {"status": 502, '
                                      b'"message": "proxy failure"}}')
                    except OSError:
                        self.close_connection = True

            do_GET = do_HEAD = do_POST = do_PUT = do_DELETE = _guarded  # noqa: N815

            def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
                pass

        server = ThreadingHTTPServer((self.host, self._requested_port),
                                     _ProxyHandler)
        server.daemon_threads = True
        self._server = server
        self.port = server.server_address[1]
        self.check_once()  # seed rotation state before the first request
        for name, target in (("balance-probe", self._probe_loop),
                             ("balance-serve", server.serve_forever)):
            thread = threading.Thread(target=target, name=name, daemon=True)
            thread.start()
            self._threads.append(thread)
        obslog.log_event("balance.start", port=self.port,
                         backends=[b.url for b in self.backends])
        return self

    def __enter__(self) -> "Balancer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def stop(self) -> None:
        if self._stop.is_set():
            return
        self._stop.set()
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
        for thread in self._threads:
            thread.join(timeout=5)
        obslog.log_event("balance.stop", port=self.port)
