"""Domain-centric inverted index over list archives (id postings).

Every per-domain question the paper's stability sections ask — "what was
example.com's Alexa rank over January?", "how many days was it listed?",
"how long did it stay in the Top 1k?" — today costs a full archive scan:
``O(days × list size)`` per domain.  :class:`DomainIndex` inverts the
archives once into

* ``domain id → provider → uint32 postings``: one interleaved
  ``(date ordinal, rank)`` array per domain, appended in date order —
  eight bytes per observation, no boxed tuples, binary-searchable for
  windowed history; and
* ``base-domain id → provider → membership intervals`` built from the
  same day-over-day deltas the :func:`repro.core.cache.archive_base_id_sets`
  engine computes (shared via the archive's cache, so indexing a warmed
  archive resolves nothing),

after which rank history, list longevity and days-in-top-k are one
int-keyed dictionary lookup plus a walk over exactly the domain's own
postings.  Queries arrive as strings and leave as strings; ids never
escape the index.

The index is incremental (``add()`` accepts the next day's snapshot) and
order-strict per provider, mirroring the append-only store; answers are
element-for-element identical to a brute-force scan over the archive
(property-tested in ``tests/test_service_index.py``).
"""

from __future__ import annotations

import datetime as dt
from array import array
from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from repro.core.cache import archive_base_id_sets, snapshot_base_ids
from repro.interning import default_interner
from repro.providers.base import ListArchive, ListSnapshot

_EMPTY = array("I")


@dataclass(frozen=True)
class DomainLongevity:
    """Summary of one domain's presence in one provider's list."""

    days_listed: int
    first_seen: Optional[dt.date]
    last_seen: Optional[dt.date]

    @property
    def span_days(self) -> int:
        """Days between first and last sighting, inclusive (0 if never seen)."""
        if self.first_seen is None or self.last_seen is None:
            return 0
        return (self.last_seen - self.first_seen).days + 1


def _bisect_postings(postings: array, ordinal: int) -> int:
    """First pair index whose date ordinal is ``>= ordinal``.

    ``postings`` interleaves ``(ordinal, rank)`` pairs in date order, so
    this is a binary search over the even slots.
    """
    lo, hi = 0, len(postings) // 2
    while lo < hi:
        mid = (lo + hi) // 2
        if postings[2 * mid] < ordinal:
            lo = mid + 1
        else:
            hi = mid
    return lo


class _ProviderIndex:
    """Per-provider posting arrays and base-membership events."""

    __slots__ = ("dates", "observations", "base_events", "prev_bases")

    def __init__(self) -> None:
        self.dates: list[int] = []                 # indexed day ordinals
        #: domain id -> interleaved (ordinal, rank) postings, date order.
        self.observations: dict[int, array] = {}
        #: base-domain id -> [(ordinal, entered?)] transitions, date order.
        self.base_events: dict[int, list[tuple[int, bool]]] = {}
        self.prev_bases: frozenset[int] = frozenset()


class DomainIndex:
    """Inverted ``domain → provider → rank history`` index (incremental)."""

    def __init__(self) -> None:
        self._providers: dict[str, _ProviderIndex] = {}
        #: Posting-list lookups answered (every per-domain query path
        #: funnels through :meth:`_postings` / :meth:`base_intervals`).
        #: A plain GIL-atomic int — lookups are ~µs-scale, too hot for
        #: the metrics-registry lock; scraped via ``/v1/metrics``.
        self.lookups = 0

    # -- construction -----------------------------------------------------
    def add(self, snapshot: ListSnapshot,
            bases: Optional[frozenset] = None) -> None:
        """Index the next snapshot of its provider (strict date order).

        ``bases`` optionally supplies the snapshot's precomputed
        base-domain set — as interned ids (the bulk loaders pass the
        delta engine's shared result) or, for compatibility, as strings;
        otherwise it is taken from the per-snapshot cache.
        """
        state = self._providers.setdefault(snapshot.provider, _ProviderIndex())
        ordinal = snapshot.date.toordinal()
        if state.dates and ordinal <= state.dates[-1]:
            last = dt.date.fromordinal(state.dates[-1])
            raise ValueError(
                f"index is append-only: {snapshot.provider} snapshot "
                f"{snapshot.date} is not after the indexed {last}")
        observations = state.observations
        for rank, domain_id in enumerate(snapshot.entry_ids(), start=1):
            postings = observations.get(domain_id)
            if postings is None:
                observations[domain_id] = array("I", (ordinal, rank))
            else:
                postings.append(ordinal)
                postings.append(rank)
        if bases is None:
            current = snapshot_base_ids(snapshot)
        elif bases and not isinstance(next(iter(bases)), int):
            table = default_interner()
            current = table.id_set(table.intern_many(bases))
        else:
            current = bases
        if current != state.prev_bases:
            events = state.base_events
            for base in state.prev_bases - current:
                events[base].append((ordinal, False))
            for base in current - state.prev_bases:
                events.setdefault(base, []).append((ordinal, True))
            state.prev_bases = current
        state.dates.append(ordinal)

    def add_archive(self, archive: ListArchive) -> None:
        """Index a whole archive, sharing the delta engine's base-id sets."""
        per_day = archive_base_id_sets(archive)
        for snapshot in archive:
            self.add(snapshot, bases=per_day[snapshot.date])

    @classmethod
    def from_archive(cls, archive: ListArchive) -> "DomainIndex":
        """Build an index over one archive."""
        index = cls()
        index.add_archive(archive)
        return index

    @classmethod
    def from_archives(cls, archives: Mapping[str, ListArchive]) -> "DomainIndex":
        """Build an index over several archives (keyed by provider name)."""
        index = cls()
        for name in sorted(archives):
            index.add_archive(archives[name])
        return index

    @classmethod
    def from_store(cls, store, providers: Optional[Iterable[str]] = None
                   ) -> "DomainIndex":
        """Build an index from an :class:`~repro.service.store.ArchiveStore`.

        Loads via the store's warm-started columnar archives, so the
        base-domain deltas are replayed from disk rather than re-parsed
        and no entry strings are materialised along the way.
        """
        names = tuple(providers) if providers is not None else store.providers()
        index = cls()
        for name in names:
            index.add_archive(store.load_archive(name))
        return index

    # -- introspection ----------------------------------------------------
    def providers(self) -> tuple[str, ...]:
        """Indexed provider names, sorted."""
        return tuple(sorted(self._providers))

    def dates(self, provider: str) -> list[dt.date]:
        """Indexed snapshot dates of ``provider``, in order."""
        state = self._providers.get(provider)
        if state is None:
            return []
        return [dt.date.fromordinal(o) for o in state.dates]

    def domain_count(self, provider: str) -> int:
        """Distinct domains ever indexed for ``provider``."""
        state = self._providers.get(provider)
        return len(state.observations) if state else 0

    def last_date(self, provider: str) -> Optional[dt.date]:
        """The newest indexed date of ``provider`` (``None`` when empty).

        The live-append path checks this before wiring a freshly ingested
        snapshot in, so a double-apply is rejected by :meth:`add` rather
        than silently double-counted.
        """
        state = self._providers.get(provider)
        if state is None or not state.dates:
            return None
        return dt.date.fromordinal(state.dates[-1])

    # -- queries ----------------------------------------------------------
    def _postings(self, domain: str, provider: str) -> array:
        self.lookups += 1
        state = self._providers.get(provider)
        if state is None:
            raise KeyError(f"provider {provider!r} is not indexed")
        domain_id = default_interner().id_of(domain)
        if domain_id is None:
            return _EMPTY
        return state.observations.get(domain_id, _EMPTY)

    def history(self, domain: str, provider: str,
                start: Optional[dt.date] = None,
                end: Optional[dt.date] = None) -> list[tuple[dt.date, int]]:
        """The domain's ``(date, rank)`` observations, optionally windowed.

        Cost is ``O(log h + h')`` for a history of length ``h`` with
        ``h'`` observations in the window — never an archive scan.
        """
        postings = self._postings(domain, provider)
        lo = 0 if start is None else _bisect_postings(postings, start.toordinal())
        hi = (len(postings) // 2 if end is None
              else _bisect_postings(postings, end.toordinal() + 1))
        return [(dt.date.fromordinal(postings[2 * i]), postings[2 * i + 1])
                for i in range(lo, hi)]

    def rank_on(self, domain: str, provider: str, date: dt.date) -> Optional[int]:
        """The domain's rank on ``date`` (``None`` when not listed)."""
        postings = self._postings(domain, provider)
        ordinal = date.toordinal()
        position = _bisect_postings(postings, ordinal)
        if 2 * position < len(postings) and postings[2 * position] == ordinal:
            return postings[2 * position + 1]
        return None

    def longevity(self, domain: str, provider: str) -> DomainLongevity:
        """Days listed plus first/last sighting (Figure 2c's per-domain view)."""
        postings = self._postings(domain, provider)
        if not postings:
            return DomainLongevity(days_listed=0, first_seen=None, last_seen=None)
        return DomainLongevity(
            days_listed=len(postings) // 2,
            first_seen=dt.date.fromordinal(postings[0]),
            last_seen=dt.date.fromordinal(postings[-2]))

    def days_in_top_k(self, domain: str, provider: str, k: int) -> int:
        """Days the domain ranked within the Top-``k`` head."""
        if k <= 0:
            raise ValueError("k must be positive")
        return sum(1 for rank in self._postings(domain, provider)[1::2] if rank <= k)

    def base_intervals(self, base: str, provider: str
                       ) -> list[tuple[dt.date, Optional[dt.date]]]:
        """Closed presence intervals of a *base domain* in the list.

        Returns ``[(entered, left), ...]`` where ``left`` is the last
        indexed date the base was still present (``None`` while it remains
        listed on the newest indexed day).  Built from the same change
        events the delta engine produces, so membership follows the
        paper's base-domain normalisation (footnote 6), not raw FQDNs.
        """
        self.lookups += 1
        state = self._providers.get(provider)
        if state is None:
            raise KeyError(f"provider {provider!r} is not indexed")
        base_id = default_interner().id_of(base)
        events = state.base_events.get(base_id, []) if base_id is not None else []
        intervals: list[tuple[dt.date, Optional[dt.date]]] = []
        entered: Optional[int] = None
        for ordinal, present in events:
            if present:
                entered = ordinal
            elif entered is not None:
                # The base left on `ordinal`: last present day is the
                # provider's previous indexed date.
                position = bisect_left(state.dates, ordinal)
                last_present = state.dates[position - 1]
                intervals.append((dt.date.fromordinal(entered),
                                  dt.date.fromordinal(last_present)))
                entered = None
        if entered is not None:
            intervals.append((dt.date.fromordinal(entered), None))
        return intervals
