"""Domain-centric inverted index over list archives.

Every per-domain question the paper's stability sections ask — "what was
example.com's Alexa rank over January?", "how many days was it listed?",
"how long did it stay in the Top 1k?" — today costs a full archive scan:
``O(days × list size)`` per domain.  :class:`DomainIndex` inverts the
archives once into

* ``domain → provider → [(date, rank), ...]`` rank observations, and
* ``base domain → provider → membership intervals`` built from the same
  day-over-day deltas the :func:`repro.core.cache.archive_base_domain_sets`
  engine computes (shared via the archive's cache, so indexing a warmed
  archive parses nothing),

after which rank history, list longevity and days-in-top-k are dictionary
lookups over exactly the domain's own observations.

The index is incremental (``add()`` accepts the next day's snapshot) and
order-strict per provider, mirroring the append-only store; answers are
element-for-element identical to a brute-force scan over the archive
(property-tested in ``tests/test_service_index.py``).
"""

from __future__ import annotations

import datetime as dt
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

from repro.core.cache import archive_base_domain_sets, snapshot_base_domains
from repro.providers.base import ListArchive, ListSnapshot


@dataclass(frozen=True)
class DomainLongevity:
    """Summary of one domain's presence in one provider's list."""

    days_listed: int
    first_seen: Optional[dt.date]
    last_seen: Optional[dt.date]

    @property
    def span_days(self) -> int:
        """Days between first and last sighting, inclusive (0 if never seen)."""
        if self.first_seen is None or self.last_seen is None:
            return 0
        return (self.last_seen - self.first_seen).days + 1


class _ProviderIndex:
    """Per-provider observation lists and base-membership events."""

    __slots__ = ("dates", "observations", "base_events", "prev_bases")

    def __init__(self) -> None:
        self.dates: list[int] = []                      # indexed day ordinals
        self.observations: dict[str, list[tuple[int, int]]] = {}
        #: base domain -> [(ordinal, entered?)] transitions, date order.
        self.base_events: dict[str, list[tuple[int, bool]]] = {}
        self.prev_bases: frozenset[str] = frozenset()


class DomainIndex:
    """Inverted ``domain → provider → rank history`` index (incremental)."""

    def __init__(self) -> None:
        self._providers: dict[str, _ProviderIndex] = {}

    # -- construction -----------------------------------------------------
    def add(self, snapshot: ListSnapshot,
            bases: Optional[frozenset[str]] = None) -> None:
        """Index the next snapshot of its provider (strict date order).

        ``bases`` optionally supplies the snapshot's precomputed
        base-domain set (the bulk loaders pass the delta engine's shared
        result); otherwise it is taken from the per-snapshot cache.
        """
        state = self._providers.setdefault(snapshot.provider, _ProviderIndex())
        ordinal = snapshot.date.toordinal()
        if state.dates and ordinal <= state.dates[-1]:
            last = dt.date.fromordinal(state.dates[-1])
            raise ValueError(
                f"index is append-only: {snapshot.provider} snapshot "
                f"{snapshot.date} is not after the indexed {last}")
        observations = state.observations
        for rank, domain in enumerate(snapshot.entries, start=1):
            series = observations.get(domain)
            if series is None:
                observations[domain] = [(ordinal, rank)]
            else:
                series.append((ordinal, rank))
        current = bases if bases is not None else snapshot_base_domains(snapshot)
        if current != state.prev_bases:
            events = state.base_events
            for base in state.prev_bases - current:
                events[base].append((ordinal, False))
            for base in current - state.prev_bases:
                events.setdefault(base, []).append((ordinal, True))
            state.prev_bases = current
        state.dates.append(ordinal)

    def add_archive(self, archive: ListArchive) -> None:
        """Index a whole archive, sharing the delta engine's base sets."""
        per_day = archive_base_domain_sets(archive)
        for snapshot in archive:
            self.add(snapshot, bases=per_day[snapshot.date])

    @classmethod
    def from_archive(cls, archive: ListArchive) -> "DomainIndex":
        """Build an index over one archive."""
        index = cls()
        index.add_archive(archive)
        return index

    @classmethod
    def from_archives(cls, archives: Mapping[str, ListArchive]) -> "DomainIndex":
        """Build an index over several archives (keyed by provider name)."""
        index = cls()
        for name in sorted(archives):
            index.add_archive(archives[name])
        return index

    @classmethod
    def from_store(cls, store, providers: Optional[Iterable[str]] = None
                   ) -> "DomainIndex":
        """Build an index from an :class:`~repro.service.store.ArchiveStore`.

        Loads via the store's warm-started archives, so the base-domain
        deltas are replayed from disk rather than re-parsed.
        """
        names = tuple(providers) if providers is not None else store.providers()
        index = cls()
        for name in names:
            index.add_archive(store.load_archive(name))
        return index

    # -- introspection ----------------------------------------------------
    def providers(self) -> tuple[str, ...]:
        """Indexed provider names, sorted."""
        return tuple(sorted(self._providers))

    def dates(self, provider: str) -> list[dt.date]:
        """Indexed snapshot dates of ``provider``, in order."""
        state = self._providers.get(provider)
        if state is None:
            return []
        return [dt.date.fromordinal(o) for o in state.dates]

    def domain_count(self, provider: str) -> int:
        """Distinct domains ever indexed for ``provider``."""
        state = self._providers.get(provider)
        return len(state.observations) if state else 0

    # -- queries ----------------------------------------------------------
    def _series(self, domain: str, provider: str) -> list[tuple[int, int]]:
        state = self._providers.get(provider)
        if state is None:
            raise KeyError(f"provider {provider!r} is not indexed")
        return state.observations.get(domain, [])

    def history(self, domain: str, provider: str,
                start: Optional[dt.date] = None,
                end: Optional[dt.date] = None) -> list[tuple[dt.date, int]]:
        """The domain's ``(date, rank)`` observations, optionally windowed.

        Cost is ``O(log h + h')`` for a history of length ``h`` with
        ``h'`` observations in the window — never an archive scan.
        """
        series = self._series(domain, provider)
        lo = 0 if start is None else bisect_left(series, (start.toordinal(), 0))
        hi = (len(series) if end is None
              else bisect_right(series, (end.toordinal() + 1, 0)))
        return [(dt.date.fromordinal(ordinal), rank)
                for ordinal, rank in series[lo:hi]]

    def rank_on(self, domain: str, provider: str, date: dt.date) -> Optional[int]:
        """The domain's rank on ``date`` (``None`` when not listed)."""
        series = self._series(domain, provider)
        ordinal = date.toordinal()
        position = bisect_left(series, (ordinal, 0))
        if position < len(series) and series[position][0] == ordinal:
            return series[position][1]
        return None

    def longevity(self, domain: str, provider: str) -> DomainLongevity:
        """Days listed plus first/last sighting (Figure 2c's per-domain view)."""
        series = self._series(domain, provider)
        if not series:
            return DomainLongevity(days_listed=0, first_seen=None, last_seen=None)
        return DomainLongevity(
            days_listed=len(series),
            first_seen=dt.date.fromordinal(series[0][0]),
            last_seen=dt.date.fromordinal(series[-1][0]))

    def days_in_top_k(self, domain: str, provider: str, k: int) -> int:
        """Days the domain ranked within the Top-``k`` head."""
        if k <= 0:
            raise ValueError("k must be positive")
        return sum(1 for _, rank in self._series(domain, provider) if rank <= k)

    def base_intervals(self, base: str, provider: str
                       ) -> list[tuple[dt.date, Optional[dt.date]]]:
        """Closed presence intervals of a *base domain* in the list.

        Returns ``[(entered, left), ...]`` where ``left`` is the last
        indexed date the base was still present (``None`` while it remains
        listed on the newest indexed day).  Built from the same change
        events the delta engine produces, so membership follows the
        paper's base-domain normalisation (footnote 6), not raw FQDNs.
        """
        state = self._providers.get(provider)
        if state is None:
            raise KeyError(f"provider {provider!r} is not indexed")
        events = state.base_events.get(base, [])
        intervals: list[tuple[dt.date, Optional[dt.date]]] = []
        entered: Optional[int] = None
        for ordinal, present in events:
            if present:
                entered = ordinal
            elif entered is not None:
                # The base left on `ordinal`: last present day is the
                # provider's previous indexed date.
                position = bisect_left(state.dates, ordinal)
                last_present = state.dates[position - 1]
                intervals.append((dt.date.fromordinal(entered),
                                  dt.date.fromordinal(last_present)))
                entered = None
        if entered is not None:
            intervals.append((dt.date.fromordinal(entered), None))
        return intervals
